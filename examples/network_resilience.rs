//! Network resilience study: the MPLS-restoration scenario that motivates replacement paths.
//!
//! A metro network carries traffic from a handful of ingress gateways to every node. Links fail
//! one at a time; the operator wants to know, *before* any failure happens, how much longer
//! every route becomes under every possible single failure — exactly the multi-source
//! replacement path problem. This example builds the fault-tolerant oracle, injects failures,
//! and reports recovery statistics per graph family.
//!
//! Run with: `cargo run --release --example network_resilience`

use msrp::core::MsrpParams;
use msrp::graph::generators::{barabasi_albert, connected_gnm, grid_graph};
use msrp::graph::Graph;
use msrp::netsim::{run_simulation, SimulationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let scenarios: Vec<(&str, Graph)> = vec![
        ("metro grid 12x12", grid_graph(12, 12)),
        ("sparse ISP mesh", connected_gnm(144, 360, &mut rng).expect("valid parameters")),
        ("scale-free backbone", barabasi_albert(144, 3, &mut rng).expect("valid parameters")),
    ];

    println!(
        "{:<22} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "scenario", "queries", "mismatch", "disconnected", "avg stretch", "query speedup"
    );
    for (name, graph) in scenarios {
        let n = graph.vertex_count();
        let config = SimulationConfig {
            gateways: vec![0, n / 3, 2 * n / 3, n - 1],
            failures: 150,
            queries_per_failure: 25,
            seed: 4,
            params: MsrpParams::scaled_for_benchmarks(),
        };
        let report = run_simulation(&graph, &config);
        println!(
            "{:<22} {:>8} {:>10} {:>12} {:>12.2} {:>13.1}x",
            name,
            report.total_queries,
            report.mismatches,
            report.disconnected_queries,
            report.average_stretch(),
            report.query_speedup(),
        );
        assert_eq!(report.mismatches, 0, "oracle answers must match recomputation");
    }

    println!(
        "\nEvery oracle answer was cross-checked against a from-scratch BFS under the failure; \
         the speedup column is the wall-clock ratio between the two ways of answering the same \
         queries (higher is better for the precomputed oracle)."
    );
}
