//! Quickstart: solve the single-source and multi-source replacement path problems on a small
//! network and print the answers.
//!
//! Run with: `cargo run --example quickstart`

use msrp::core::{solve_msrp, solve_ssrp, MsrpParams};
use msrp::graph::generators::connected_gnm;
use msrp::graph::{Graph, INFINITE_DISTANCE};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A reproducible sparse random network with 64 routers and 160 links.
    let mut rng = StdRng::seed_from_u64(2020);
    let g: Graph = connected_gnm(64, 160, &mut rng).expect("valid generator parameters");
    println!(
        "network: {} vertices, {} edges, average degree {:.2}",
        g.vertex_count(),
        g.edge_count(),
        g.average_degree()
    );

    // --- Single source (Theorem 14). ---
    let params = MsrpParams::default();
    let ssrp = solve_ssrp(&g, 0, &params);
    println!("\nSSRP from vertex 0 (paper constants):\n{}", ssrp.stats);

    // Print the replacement distances for one interesting target: the farthest vertex.
    let farthest = (0..g.vertex_count())
        .max_by_key(|&v| ssrp.tree.distance(v).unwrap_or(0))
        .expect("non-empty graph");
    let path = ssrp.tree.path_from_source(farthest).expect("connected");
    println!("\ncanonical path 0 -> {farthest}: {path:?}");
    for (i, e) in ssrp.tree.path_edges(farthest).iter().enumerate() {
        let d = ssrp.distances.get(farthest, i).expect("entry exists");
        if d == INFINITE_DISTANCE {
            println!("  losing edge {e}: {farthest} becomes unreachable");
        } else {
            println!(
                "  losing edge {e}: distance {} -> {} (+{})",
                path.len() - 1,
                d,
                d - (path.len() as u32 - 1)
            );
        }
    }

    // --- Multiple sources (Theorem 1 / 26). ---
    let sources = [0, 21, 42, 63];
    let msrp = solve_msrp(&g, &sources, &params);
    println!("\nMSRP from {:?}:\n{}", sources, msrp.stats);
    let total_entries: usize = msrp.per_source.iter().map(|d| d.entry_count()).sum();
    let critical: usize = msrp.per_source.iter().map(|d| d.infinite_entry_count()).sum();
    println!(
        "\ncomputed {total_entries} replacement distances; {critical} of them are critical \
         (no replacement path exists)"
    );
}
