//! A miniature scaling study printed as a table: how the paper's algorithm compares against the
//! classical baselines as `n` and `σ` grow (a quick, self-contained version of experiments E1
//! and E2 — see `EXPERIMENTS.md` and the `msrp-bench` crate for the full versions).
//!
//! Run with: `cargo run --release --example scaling_study`

use std::time::Instant;

use msrp::core::{solve_msrp, solve_ssrp, MsrpParams};
use msrp::graph::generators::connected_gnm;
use msrp::graph::ShortestPathTree;
use msrp::rpath::{single_source_brute_force, single_source_via_single_pair};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seconds(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn main() {
    let params = MsrpParams::scaled_for_benchmarks();

    println!("--- single source, m = 4n ---");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>14}",
        "n", "m", "brute (s)", "classical (s)", "paper (s)"
    );
    for &n in &[128usize, 256, 512, 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = connected_gnm(n, 4 * n, &mut rng).expect("valid parameters");
        let tree = ShortestPathTree::build(&g, 0);
        let t_brute = seconds(|| {
            let _ = single_source_brute_force(&g, &tree);
        });
        let t_classical = seconds(|| {
            let _ = single_source_via_single_pair(&g, &tree);
        });
        let t_paper = seconds(|| {
            let _ = solve_ssrp(&g, 0, &params);
        });
        println!(
            "{:>6} {:>8} {:>14.3} {:>14.3} {:>14.3}",
            n,
            g.edge_count(),
            t_brute,
            t_classical,
            t_paper
        );
    }

    println!("\n--- multiple sources, n = 256, m = 1024 ---");
    println!("{:>6} {:>18} {:>22}", "sigma", "paper MSRP (s)", "per-source brute (s)");
    let mut rng = StdRng::seed_from_u64(7);
    let g = connected_gnm(256, 1024, &mut rng).expect("valid parameters");
    for &sigma in &[1usize, 2, 4, 8, 16] {
        let sources: Vec<usize> = (0..sigma).map(|i| i * 256 / sigma).collect();
        let t_paper = seconds(|| {
            let _ = solve_msrp(&g, &sources, &params);
        });
        let t_brute = seconds(|| {
            for &s in &sources {
                let tree = ShortestPathTree::build(&g, s);
                let _ = single_source_brute_force(&g, &tree);
            }
        });
        println!("{sigma:>6} {t_paper:>18.3} {t_brute:>22.3}");
    }

    println!(
        "\nThe brute-force column grows linearly in sigma while the paper's algorithm amortizes \
         its preprocessing across sources — the sqrt(nσ) interpolation of Theorem 1."
    );
}
