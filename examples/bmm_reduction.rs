//! The conditional lower bound in action: multiplying boolean matrices with the MSRP solver
//! (Theorem 2 / Theorem 28 of the paper).
//!
//! The reduction splits the rows of `A` into batches, builds one gadget graph per batch with σ
//! source spines, runs the MSRP algorithm, and reads the product off the replacement distances.
//! It is (of course) far slower than multiplying directly — that is the point: if MSRP could be
//! solved combinatorially much faster than `m·sqrt(nσ)`, combinatorial BMM would beat `n³`.
//!
//! Run with: `cargo run --release --example bmm_reduction`

use msrp::bmm::{multiply_via_msrp, BoolMatrix, ReductionPlan};
use msrp::core::MsrpParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);
    for &(n, sigma, density) in &[(16usize, 1usize, 0.2), (24, 2, 0.15), (32, 4, 0.1)] {
        let a = BoolMatrix::random(n, density, &mut rng);
        let b = BoolMatrix::random(n, density, &mut rng);
        let plan = ReductionPlan::for_size(n, sigma);

        let start = Instant::now();
        let expected = a.multiply_naive(&b);
        let naive_time = start.elapsed();

        let start = Instant::now();
        let via_msrp = multiply_via_msrp(&a, &b, sigma, &MsrpParams::default());
        let reduction_time = start.elapsed();

        println!(
            "n = {n:>3}, sigma = {sigma}: {} gadget graphs of spine length {}, \
             naive {:>8.3?} vs reduction {:>8.3?} — products {}",
            plan.batches,
            plan.rows_per_source,
            naive_time,
            reduction_time,
            if via_msrp == expected { "AGREE" } else { "DIFFER (bug!)" },
        );
        assert_eq!(via_msrp, expected);
    }

    println!(
        "\nEvery product computed through the replacement-path gadgets matches the naive \
         combinatorial product, exercising the construction behind the paper's \
         Ω(m·sqrt(nσ)) conditional lower bound."
    );
}
