//! The TCP front end of the replacement-path query service: the sharded oracle behind a real
//! socket, speaking the newline-delimited text protocol of `msrp::serve::protocol`.
//!
//! Three modes:
//!
//! ```text
//! cargo run --release --example serve_tcp                      # self-contained smoke run
//! cargo run --release --example serve_tcp -- --serve ADDR      # serve until the process dies
//! cargo run --release --example serve_tcp -- --client ADDR     # drive an external server
//! ```
//!
//! The default mode is what CI runs: it starts the server on an OS-assigned localhost port,
//! connects a client over the real socket, issues single and batched queries, cross-checks
//! every answer against a single-threaded in-process oracle, and shuts down cleanly. The
//! `--serve` / `--client` pair runs the same code split across two processes.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

use msrp::core::MsrpParams;
use msrp::graph::generators::connected_gnm;
use msrp::graph::Graph;
use msrp::oracle::ReplacementPathOracle;
use msrp::serve::{
    format_answer, format_query, parse_answer, parse_request, random_queries, QueryService,
    Request, ServiceConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The demo workload is pinned so server and client (possibly separate processes) agree on
/// the graph and sources without exchanging them.
const GRAPH_SEED: u64 = 99;
const N: usize = 96;
const M: usize = 240;
const SOURCES: [usize; 4] = [0, 24, 48, 72];
const SHARDS: usize = 2;
const WORKERS: usize = 2;
/// Largest batch a client may request in one `B k` header; anything bigger is refused
/// before any allocation happens (the header size comes straight off the wire).
const MAX_BATCH: usize = 4096;

fn demo_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(GRAPH_SEED);
    connected_gnm(N, M, &mut rng).expect("valid demo parameters")
}

/// Answers one connection's requests until `QUIT` or EOF.
fn handle_connection(stream: TcpStream, service: &QueryService) -> std::io::Result<()> {
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        match parse_request(line.trim_end()) {
            Ok(Request::Query(q)) => {
                let answers = service.answer_batch(&[q]);
                writeln!(writer, "{}", format_answer(answers[0]))?;
            }
            Ok(Request::Batch(k)) if k > MAX_BATCH => {
                writeln!(writer, "ERR batch size {k} exceeds the limit of {MAX_BATCH}")?;
            }
            Ok(Request::Batch(k)) => {
                // Length-delimited batch: exactly k query lines follow the header.
                let mut batch = Vec::with_capacity(k);
                for _ in 0..k {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        return Ok(());
                    }
                    match parse_request(line.trim_end()) {
                        Ok(Request::Query(q)) => batch.push(q),
                        _ => {
                            writeln!(writer, "ERR batch lines must be Q queries")?;
                            writer.flush()?;
                            return Ok(());
                        }
                    }
                }
                for answer in service.answer_batch(&batch) {
                    writeln!(writer, "{}", format_answer(answer))?;
                }
            }
            Ok(Request::Stats) => {
                let m = service.metrics();
                writeln!(
                    writer,
                    "STATS queries={} unroutable={} shards={:?} batch_latency[{}]",
                    m.queries_total,
                    m.unroutable_total,
                    m.shard_queries,
                    m.batch_latency.summary()
                )?;
            }
            Ok(Request::Quit) => return Ok(()),
            Err(e) => writeln!(writer, "ERR {e}")?,
        }
        // One flush per request keeps replies prompt without a syscall per answer line.
        writer.flush()?;
    }
}

fn start_service() -> QueryService {
    let g = demo_graph();
    QueryService::build_and_start(
        &g,
        &SOURCES,
        &MsrpParams::default(),
        SHARDS,
        &ServiceConfig { workers: WORKERS },
    )
}

/// `--serve`: accept connections forever (or `max_conns` of them), one thread each.
fn serve(listener: TcpListener, service: &QueryService, max_conns: Option<usize>) {
    std::thread::scope(|scope| {
        for (accepted, stream) in listener.incoming().enumerate() {
            let stream = stream.expect("accept failed");
            scope.spawn(move || {
                if let Err(e) = handle_connection(stream, service) {
                    eprintln!("connection error: {e}");
                }
            });
            if max_conns.is_some_and(|max| accepted + 1 >= max) {
                break;
            }
        }
    });
}

/// `--client`: issue a seed-pinned workload over the socket, verify every answer against a
/// local single-threaded oracle, and print what happened.
fn run_client(addr: &str) {
    let g = demo_graph();
    let reference = ReplacementPathOracle::build(&g, &SOURCES, &MsrpParams::default());
    let mut rng = StdRng::seed_from_u64(7);
    let queries = random_queries(&g, &SOURCES, 64, &mut rng);

    let stream = TcpStream::connect(addr).expect("connect to the serve_tcp server");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let read_answer = |reader: &mut BufReader<TcpStream>, line: &mut String| {
        line.clear();
        reader.read_line(line).expect("server replied");
        parse_answer(line).expect("well-formed answer")
    };

    // Single queries.
    for q in &queries[..16] {
        writeln!(writer, "{}", format_query(q)).expect("send query");
        let answer = read_answer(&mut reader, &mut line);
        assert_eq!(
            answer,
            reference.replacement_distance(q.source, q.target, q.avoid),
            "socket answer for {q:?} must match the in-process oracle"
        );
    }
    // One length-delimited batch for the rest.
    let batch = &queries[16..];
    writeln!(writer, "B {}", batch.len()).expect("send batch header");
    for q in batch {
        writeln!(writer, "{}", format_query(q)).expect("send batch line");
    }
    for q in batch {
        let answer = read_answer(&mut reader, &mut line);
        assert_eq!(
            answer,
            reference.replacement_distance(q.source, q.target, q.avoid),
            "batched socket answer for {q:?} must match the in-process oracle"
        );
    }
    // Metrics over the wire, then hang up.
    writeln!(writer, "STATS").expect("send stats");
    line.clear();
    reader.read_line(&mut line).expect("stats reply");
    println!("server reports: {}", line.trim_end());
    writeln!(writer, "QUIT").expect("send quit");

    println!(
        "client verified {} answers ({} single + {} batched) against the in-process oracle",
        queries.len(),
        16,
        batch.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7411");
            let service = start_service();
            let listener = TcpListener::bind(addr).expect("bind server address");
            println!("serving replacement-path queries on {addr} (Ctrl-C to stop)");
            serve(listener, &service, None);
        }
        Some("--client") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7411");
            run_client(addr);
        }
        Some(other) => {
            eprintln!("unknown mode `{other}` (expected --serve or --client)");
            std::process::exit(2);
        }
        None => {
            // Self-contained smoke run: server thread + client, one real localhost socket.
            let service = start_service();
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
            let addr = listener.local_addr().expect("local addr").to_string();
            println!(
                "demo server on {addr}: σ={} sources, {SHARDS} shards, {WORKERS} workers",
                SOURCES.len()
            );
            std::thread::scope(|scope| {
                let service = &service;
                let server = scope.spawn(move || serve(listener, service, Some(1)));
                run_client(&addr);
                server.join().expect("server thread");
            });
            let metrics = service.shutdown();
            println!(
                "served {} queries over TCP; batch latency [{}]",
                metrics.queries_total,
                metrics.batch_latency.summary()
            );
        }
    }
}
