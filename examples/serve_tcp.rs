//! The TCP front end of the replacement-path query service: the sharded oracle behind a real
//! socket, speaking the newline-delimited text protocol of `msrp::serve::protocol`.
//!
//! Four modes:
//!
//! ```text
//! cargo run --release --example serve_tcp                      # self-contained smoke run
//! cargo run --release --example serve_tcp -- --metrics         # smoke run with tracing on
//! cargo run --release --example serve_tcp -- --serve ADDR      # serve until the process dies
//! cargo run --release --example serve_tcp -- --client ADDR     # drive an external server
//! ```
//!
//! The default mode is what CI runs: it starts the server on an OS-assigned localhost port,
//! connects a client over the real socket, issues single and batched queries — hop-metric
//! `Q`/`B` lines served from Bernstein–Karger-built shards and weighted `QW`/`BW` lines
//! served from the weighted oracle — cross-checks every answer against single-threaded
//! in-process oracles, exercises the `STATS` and `METRICS` metrics plane, and shuts down
//! cleanly. The `--serve` / `--client` pair runs the same code split across two processes.
//! `--metrics` is the same smoke run with the full observability plane on — span journal,
//! slow-query log, seed-stable trace ids — and dumps the per-stage span accounting, the
//! slow-query replay lines, and the complete text exposition before exiting.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use msrp::core::MsrpParams;
use msrp::graph::generators::{connected_gnm, weighted_connected_gnm};
use msrp::graph::{Graph, WeightedCsrGraph};
use msrp::obs::is_well_formed;
use msrp::oracle::{ReplacementPathOracle, WeightedReplacementOracle};
use msrp::serve::{
    format_answer, format_metrics_header, format_query, format_stats, format_weighted_answer,
    format_weighted_query, parse_answer, parse_metrics_header, parse_request, parse_stats,
    parse_weighted_answer, random_queries, read_line_bounded, validate_query, BatchStage,
    LineOutcome, ObsConfig, QueryService, Request, ServiceConfig, ShardedOracle,
    WeightedShardedOracle, MAX_LINE_BYTES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The demo workload is pinned so server and client (possibly separate processes) agree on
/// the graph and sources without exchanging them.
const GRAPH_SEED: u64 = 99;
const N: usize = 96;
const M: usize = 240;
const SOURCES: [usize; 4] = [0, 24, 48, 72];
const SHARDS: usize = 2;
const WORKERS: usize = 2;
/// The weighted demo graph served behind the `QW`/`BW` verbs (its own seed stream, its own
/// dimensions, so a confused client cannot mistake one metric's ids for the other's).
const WEIGHTED_SEED: u64 = 977;
const WN: usize = 64;
const WM: usize = 160;
const W_MAX_WEIGHT: u64 = 1000;
const WSOURCES: [usize; 3] = [0, 21, 42];
/// Largest batch a client may request in one `B k` / `BW k` header; anything bigger is
/// refused before any allocation happens (the header size comes straight off the wire).
const MAX_BATCH: usize = 4096;

fn demo_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(GRAPH_SEED);
    connected_gnm(N, M, &mut rng).expect("valid demo parameters")
}

fn weighted_demo_graph() -> WeightedCsrGraph {
    let mut rng = StdRng::seed_from_u64(WEIGHTED_SEED);
    weighted_connected_gnm(WN, WM, W_MAX_WEIGHT, &mut rng).expect("valid demo parameters").freeze()
}

/// A batch line is either the index of a validated query or an error to report in place.
enum BatchSlot {
    Query(usize),
    Invalid(String),
}

/// What became of reading a batch's query lines.
enum BatchOutcome {
    /// All `k` lines read; slots and the validated queries to answer.
    Complete(Vec<BatchSlot>, Vec<msrp::serve::Query>),
    /// A grammatically broken or wrong-verb line: fatal for the connection.
    Broken,
    /// The client hung up mid-batch.
    Eof,
    /// A line blew the byte cap: fatal for the connection (the rest of the oversized
    /// line is still on the wire, so resynchronizing is impossible).
    TooLong,
}

/// Reads the `k` query lines of a length-delimited batch (`B` expects `Q` lines, `BW`
/// expects `QW` lines), validating every id against `vertex_count`. Lines that fail id
/// validation become in-place `ERR` slots; a grammatically broken or wrong-verb line is
/// [`BatchOutcome::Broken`] (the caller errs and closes the connection).
fn read_batch(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    k: usize,
    weighted: bool,
    vertex_count: usize,
) -> std::io::Result<BatchOutcome> {
    let mut slots = Vec::with_capacity(k);
    let mut batch = Vec::with_capacity(k);
    for _ in 0..k {
        match read_line_bounded(reader, line, MAX_LINE_BYTES)? {
            LineOutcome::Line => {}
            LineOutcome::Eof => return Ok(BatchOutcome::Eof),
            LineOutcome::TooLong => return Ok(BatchOutcome::TooLong),
        }
        let parsed = match (parse_request(line.trim_end()), weighted) {
            (Ok(Request::Query(q)), false) | (Ok(Request::WeightedQuery(q)), true) => Some(q),
            _ => None,
        };
        match parsed {
            Some(q) => match validate_query(&q, vertex_count) {
                Ok(()) => {
                    slots.push(BatchSlot::Query(batch.len()));
                    batch.push(q);
                }
                Err(e) => slots.push(BatchSlot::Invalid(e.to_string())),
            },
            None => return Ok(BatchOutcome::Broken),
        }
    }
    Ok(BatchOutcome::Complete(slots, batch))
}

/// Writes one reply line per batch slot, in order.
fn write_batch_replies<A: Copy>(
    writer: &mut BufWriter<TcpStream>,
    slots: Vec<BatchSlot>,
    answers: &[Option<A>],
    format: impl Fn(Option<A>) -> String,
) -> std::io::Result<()> {
    for slot in slots {
        match slot {
            BatchSlot::Query(i) => writeln!(writer, "{}", format(answers[i]))?,
            BatchSlot::Invalid(e) => writeln!(writer, "ERR {e}")?,
        }
    }
    Ok(())
}

/// Answers one connection's requests until `QUIT` or EOF. `Q`/`B` lines are served by the
/// hop-metric service (Bernstein–Karger-built shards), `QW`/`BW` lines by the weighted
/// service; both metrics share the connection, the `ERR` validation, and the batch limit.
///
/// Every parsed query is validated against its graph's vertex count *before* it is
/// enqueued; an out-of-range id draws an `ERR` reply instead of reaching the oracle's
/// panicking array accesses (the regression exercised by the client below: a line like
/// `Q 0 999999999 0 1` used to kill the worker thread that dequeued it). The weighted verbs
/// get the identical treatment — `hostile_input.rs` fuzzes both.
fn handle_connection(
    stream: TcpStream,
    service: &QueryService,
    wservice: &QueryService<WeightedShardedOracle>,
) -> std::io::Result<()> {
    let vertex_count = service.oracle().vertex_count();
    let weighted_vertex_count = wservice.oracle().vertex_count();
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // Bounded: a hostile connection streaming newline-free bytes used to grow this
        // buffer without limit (`read_line` only stops at `\n` or EOF). Now it draws an
        // ERR at 64 KiB and the connection closes — memory stays capped per connection.
        match read_line_bounded(&mut reader, &mut line, MAX_LINE_BYTES)? {
            LineOutcome::Line => {}
            LineOutcome::Eof => return Ok(()), // client hung up
            LineOutcome::TooLong => {
                writeln!(writer, "ERR line too long")?;
                writer.flush()?;
                return Ok(());
            }
        }
        match parse_request(line.trim_end()) {
            Ok(Request::Query(q)) => match validate_query(&q, vertex_count) {
                Ok(()) => {
                    let answers = service.answer_batch(&[q]);
                    writeln!(writer, "{}", format_answer(answers[0]))?;
                }
                Err(e) => writeln!(writer, "ERR {e}")?,
            },
            Ok(Request::WeightedQuery(q)) => match validate_query(&q, weighted_vertex_count) {
                Ok(()) => {
                    let answers = wservice.answer_batch(&[q]);
                    writeln!(writer, "{}", format_weighted_answer(answers[0]))?;
                }
                Err(e) => writeln!(writer, "ERR {e}")?,
            },
            Ok(Request::Batch(k)) | Ok(Request::WeightedBatch(k)) if k > MAX_BATCH => {
                // The client may already have pipelined its k query lines; answering them
                // as top-level requests would desynchronize every later reply. An
                // over-limit header is therefore fatal for the connection, like a
                // malformed batch line below.
                writeln!(writer, "ERR batch size {k} exceeds the limit of {MAX_BATCH}")?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Request::Batch(k)) => {
                // Length-delimited batch: exactly k query lines follow the header. Lines
                // that fail id validation get an in-place ERR reply (still one reply line
                // per batch line); only a grammatically broken line aborts the connection.
                match read_batch(&mut reader, &mut line, k, false, vertex_count)? {
                    BatchOutcome::Complete(slots, batch) => {
                        let answers = service.answer_batch(&batch);
                        write_batch_replies(&mut writer, slots, &answers, format_answer)?;
                    }
                    BatchOutcome::Eof => return Ok(()),
                    BatchOutcome::Broken => {
                        writeln!(writer, "ERR batch lines must be Q queries")?;
                        writer.flush()?;
                        return Ok(());
                    }
                    BatchOutcome::TooLong => {
                        writeln!(writer, "ERR line too long")?;
                        writer.flush()?;
                        return Ok(());
                    }
                }
            }
            Ok(Request::WeightedBatch(k)) => {
                match read_batch(&mut reader, &mut line, k, true, weighted_vertex_count)? {
                    BatchOutcome::Complete(slots, batch) => {
                        let answers = wservice.answer_batch(&batch);
                        write_batch_replies(&mut writer, slots, &answers, format_weighted_answer)?;
                    }
                    BatchOutcome::Eof => return Ok(()),
                    BatchOutcome::Broken => {
                        writeln!(writer, "ERR batch lines must be QW queries")?;
                        writer.flush()?;
                        return Ok(());
                    }
                    BatchOutcome::TooLong => {
                        writeln!(writer, "ERR line too long")?;
                        writer.flush()?;
                        return Ok(());
                    }
                }
            }
            Ok(Request::Stats) => {
                writeln!(writer, "{}", format_stats(&service.metrics()))?;
            }
            Ok(Request::Metrics) => {
                // Length-delimited like batches: a `METRICS <k>` header, then exactly k
                // lines of Prometheus-style exposition (the hop-metric service's plane —
                // the weighted service's counters live in its own process-internal
                // snapshot and stay off the demo wire).
                let text = service.render_metrics();
                writeln!(writer, "{}", format_metrics_header(text.lines().count()))?;
                writer.write_all(text.as_bytes())?;
            }
            Ok(Request::Quit) => return Ok(()),
            Err(e) => writeln!(writer, "ERR {e}")?,
        }
        // One flush per request keeps replies prompt without a syscall per answer line.
        writer.flush()?;
    }
}

/// Starts both metric services: the hop metric from Bernstein–Karger-built shards (the real
/// BK preprocessing, serving bit-for-bit what `build`/`build_exact` shards would), and the
/// weighted metric from Dijkstra-tree shards.
fn start_services(obs: &ObsConfig) -> (QueryService, QueryService<WeightedShardedOracle>) {
    let g = demo_graph().freeze();
    let config = ServiceConfig { workers: WORKERS };
    let service = QueryService::start_observed(
        ShardedOracle::build_bk_csr(&g, &SOURCES, SHARDS),
        &config,
        obs,
    );
    let wservice = QueryService::start_observed(
        WeightedShardedOracle::build(&weighted_demo_graph(), &WSOURCES, SHARDS),
        &config,
        obs,
    );
    (service, wservice)
}

/// The observability plane the `--metrics` mode turns on: span journal, slow-query log (a
/// zero threshold captures every batch — this is a demo, and it proves the replay payloads
/// flow end to end), and seed-stable trace ids.
fn metrics_obs_config() -> ObsConfig {
    ObsConfig {
        journal_capacity: 4096,
        slow_query_threshold: Some(Duration::ZERO),
        slow_log_capacity: 8,
        trace_seed: GRAPH_SEED,
    }
}

/// `--serve`: accept connections forever (or `max_conns` of them), one thread each.
fn serve(
    listener: TcpListener,
    service: &QueryService,
    wservice: &QueryService<WeightedShardedOracle>,
    max_conns: Option<usize>,
) {
    std::thread::scope(|scope| {
        for (accepted, stream) in listener.incoming().enumerate() {
            let stream = stream.expect("accept failed");
            scope.spawn(move || {
                if let Err(e) = handle_connection(stream, service, wservice) {
                    eprintln!("connection error: {e}");
                }
            });
            if max_conns.is_some_and(|max| accepted + 1 >= max) {
                break;
            }
        }
    });
}

/// `--client`: issue a seed-pinned workload over the socket, verify every answer against a
/// local single-threaded oracle, and print what happened.
fn run_client(addr: &str) {
    let g = demo_graph();
    let reference = ReplacementPathOracle::build(&g, &SOURCES, &MsrpParams::default());
    let mut rng = StdRng::seed_from_u64(7);
    let queries = random_queries(&g, &SOURCES, 64, &mut rng);

    let stream = TcpStream::connect(addr).expect("connect to the serve_tcp server");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let read_answer = |reader: &mut BufReader<TcpStream>, line: &mut String| {
        line.clear();
        reader.read_line(line).expect("server replied");
        parse_answer(line).expect("well-formed answer")
    };

    // Single queries.
    for q in &queries[..16] {
        writeln!(writer, "{}", format_query(q)).expect("send query");
        let answer = read_answer(&mut reader, &mut line);
        assert_eq!(
            answer,
            reference.replacement_distance(q.source, q.target, q.avoid),
            "socket answer for {q:?} must match the in-process oracle"
        );
    }
    // Regression: out-of-range ids in `Q` lines used to panic the serving worker. Each must
    // draw an `ERR` reply over the real socket — and the server must keep answering
    // afterwards (the follow-up valid queries below prove the worker survived).
    let read_raw = |reader: &mut BufReader<TcpStream>, line: &mut String| -> String {
        line.clear();
        reader.read_line(line).expect("server replied");
        line.trim_end().to_string()
    };
    let hostile_lines = [
        "Q 0 999999999 0 1".to_string(),            // target out of range
        format!("Q 0 1 0 {N}"),                     // edge endpoint just past the boundary
        "Q 18446744073709551615 1 0 1".to_string(), // u64::MAX source
    ];
    for hostile in &hostile_lines {
        writeln!(writer, "{hostile}").expect("send hostile line");
        let reply = read_raw(&mut reader, &mut line);
        assert!(reply.starts_with("ERR"), "hostile line {hostile:?} must draw ERR, got {reply:?}");
    }
    // A batch mixing valid and out-of-range lines: one reply per line, in order.
    writeln!(writer, "B 3").expect("send batch header");
    writeln!(writer, "{}", format_query(&queries[0])).expect("send valid batch line");
    writeln!(writer, "Q 0 999999999 0 1").expect("send hostile batch line");
    writeln!(writer, "{}", format_query(&queries[1])).expect("send valid batch line");
    let first = read_answer(&mut reader, &mut line);
    assert_eq!(
        first,
        reference.replacement_distance(queries[0].source, queries[0].target, queries[0].avoid)
    );
    let second = read_raw(&mut reader, &mut line);
    assert!(second.starts_with("ERR"), "hostile batch line must draw ERR, got {second:?}");
    let third = read_answer(&mut reader, &mut line);
    assert_eq!(
        third,
        reference.replacement_distance(queries[1].source, queries[1].target, queries[1].avoid)
    );
    // One length-delimited batch for the rest.
    let batch = &queries[16..];
    writeln!(writer, "B {}", batch.len()).expect("send batch header");
    for q in batch {
        writeln!(writer, "{}", format_query(q)).expect("send batch line");
    }
    for q in batch {
        let answer = read_answer(&mut reader, &mut line);
        assert_eq!(
            answer,
            reference.replacement_distance(q.source, q.target, q.avoid),
            "batched socket answer for {q:?} must match the in-process oracle"
        );
    }
    // --- The weighted wire protocol: QW/BW lines served by the weighted oracle. ---
    let wg = weighted_demo_graph();
    let wreference = WeightedReplacementOracle::build(&wg, &WSOURCES);
    let wedges: Vec<_> = wg.edge_vec().iter().map(|&(e, _)| e).collect();
    let mut wrng = StdRng::seed_from_u64(8);
    let wqueries: Vec<msrp::serve::Query> = (0..24)
        .map(|_| {
            msrp::serve::Query::new(
                WSOURCES[wrng.gen_range(0..WSOURCES.len())],
                wrng.gen_range(0..WN),
                wedges[wrng.gen_range(0..wedges.len())],
            )
        })
        .collect();
    let read_weighted_answer = |reader: &mut BufReader<TcpStream>, line: &mut String| {
        line.clear();
        reader.read_line(line).expect("server replied");
        parse_weighted_answer(line).expect("well-formed weighted answer")
    };
    // Single weighted queries.
    for q in &wqueries[..8] {
        writeln!(writer, "{}", format_weighted_query(q)).expect("send weighted query");
        let answer = read_weighted_answer(&mut reader, &mut line);
        assert_eq!(
            answer,
            wreference.replacement_distance(q.source, q.target, q.avoid),
            "weighted socket answer for {q:?} must match the in-process oracle"
        );
    }
    // Hostile weighted lines draw per-line ERR replies — the same validation boundary the
    // hop-metric verbs get, exercised over the real socket.
    let hostile_weighted = [
        "QW 0 999999999 0 1".to_string(),            // target out of range
        format!("QW 0 1 0 {WN}"),                    // endpoint just past the weighted bound
        "QW 18446744073709551615 1 0 1".to_string(), // u64::MAX source
        "QW 0 1 7 7".to_string(),                    // self-loop edge key, rejected at parse
    ];
    for hostile in &hostile_weighted {
        writeln!(writer, "{hostile}").expect("send hostile weighted line");
        let reply = read_raw(&mut reader, &mut line);
        assert!(reply.starts_with("ERR"), "line {hostile:?} must draw ERR, got {reply:?}");
    }
    // A weighted batch mixing valid and out-of-range lines: one reply per line, in order.
    writeln!(writer, "BW 3").expect("send weighted batch header");
    writeln!(writer, "{}", format_weighted_query(&wqueries[0])).expect("send valid BW line");
    writeln!(writer, "QW 0 999999999 0 1").expect("send hostile BW line");
    writeln!(writer, "{}", format_weighted_query(&wqueries[1])).expect("send valid BW line");
    let first = read_weighted_answer(&mut reader, &mut line);
    assert_eq!(
        first,
        wreference.replacement_distance(wqueries[0].source, wqueries[0].target, wqueries[0].avoid)
    );
    let second = read_raw(&mut reader, &mut line);
    assert!(second.starts_with("ERR"), "hostile BW line must draw ERR, got {second:?}");
    let third = read_weighted_answer(&mut reader, &mut line);
    assert_eq!(
        third,
        wreference.replacement_distance(wqueries[1].source, wqueries[1].target, wqueries[1].avoid)
    );
    // One length-delimited weighted batch for the rest.
    let wbatch = &wqueries[8..];
    writeln!(writer, "BW {}", wbatch.len()).expect("send weighted batch header");
    for q in wbatch {
        writeln!(writer, "{}", format_weighted_query(q)).expect("send weighted batch line");
    }
    for q in wbatch {
        let answer = read_weighted_answer(&mut reader, &mut line);
        assert_eq!(
            answer,
            wreference.replacement_distance(q.source, q.target, q.avoid),
            "batched weighted socket answer for {q:?} must match the in-process oracle"
        );
    }
    // Metrics over the wire, part 1: the one-line machine-parseable STATS probe. The reply
    // must parse under the pinned format and round-trip exactly.
    writeln!(writer, "STATS").expect("send stats");
    let stats_line = read_raw(&mut reader, &mut line);
    let stats = parse_stats(&stats_line).expect("STATS reply parses under the pinned format");
    assert_eq!(stats.to_string(), stats_line, "STATS reply must round-trip");
    assert!(
        stats.queries >= queries.len() as u64,
        "server counted {} queries, client sent at least {}",
        stats.queries,
        queries.len()
    );
    println!("server reports: {stats_line}");
    // Part 2: the full Prometheus-style exposition behind the METRICS verb, length-delimited
    // by its header line.
    writeln!(writer, "METRICS").expect("send metrics");
    let header = read_raw(&mut reader, &mut line);
    let k = parse_metrics_header(&header).expect("METRICS header parses");
    let mut exposition = String::new();
    for _ in 0..k {
        line.clear();
        assert!(reader.read_line(&mut line).expect("metrics line") > 0, "short METRICS reply");
        exposition.push_str(&line);
    }
    assert!(
        is_well_formed(&exposition),
        "exposition over the socket must be well-formed:\n{exposition}"
    );
    assert!(exposition.contains("msrp_queries_total"), "core families must be present");
    assert!(exposition.contains("msrp_batch_latency_seconds_count"));
    println!("client fetched a {k}-line well-formed METRICS exposition");
    // Last on this connection: a batch header over the server's limit draws an ERR and
    // closes the connection (the client might already have pipelined the batch lines, so
    // continuing would desynchronize replies). EOF doubles as the QUIT.
    writeln!(writer, "B 999999999").expect("send oversized batch header");
    let reply = read_raw(&mut reader, &mut line);
    assert!(reply.starts_with("ERR"), "oversized batch header must draw ERR, got {reply:?}");
    line.clear();
    let eof = reader.read_line(&mut line).expect("read after oversized header");
    assert_eq!(eof, 0, "the server must close the connection after an over-limit header");

    // Regression, on its own connection (the previous one is closed): a newline-free line
    // past the byte cap must draw `ERR line too long` and a close — `read_line` used to
    // buffer such a line without bound, handing any client a memory-exhaustion primitive.
    // Exactly cap+1 bytes then a write shutdown: the server provably consumes every byte
    // before replying, so the close is a clean FIN and the ERR cannot be lost to a reset.
    let stream = TcpStream::connect(addr).expect("reconnect for the over-long-line check");
    let mut storm_writer = stream.try_clone().expect("clone stream");
    let mut storm_reader = BufReader::new(stream);
    let oversized = vec![b'x'; msrp::serve::MAX_LINE_BYTES + 1];
    storm_writer.write_all(&oversized).expect("send newline-free storm");
    storm_writer.flush().expect("flush storm");
    storm_writer.shutdown(std::net::Shutdown::Write).expect("half-close");
    line.clear();
    storm_reader.read_line(&mut line).expect("read storm reply");
    assert!(
        line.starts_with("ERR line too long"),
        "newline-free storm must draw `ERR line too long`, got {line:?}"
    );
    line.clear();
    let eof = storm_reader.read_line(&mut line).expect("read after storm reply");
    assert_eq!(eof, 0, "the server must close the connection after an over-long line");
    println!(
        "a {}-byte newline-free line drew `ERR line too long` and a clean close",
        oversized.len()
    );

    println!(
        "client verified {} hop-metric answers ({} single + {} batched) and {} weighted \
         answers against the in-process oracles, and {} hostile lines drew ERR replies \
         without killing a worker",
        queries.len(),
        16,
        batch.len(),
        wqueries.len(),
        hostile_lines.len() + hostile_weighted.len() + 4
    );
}

/// The self-contained smoke run: server thread + client, one real localhost socket. With an
/// enabled [`ObsConfig`] (the `--metrics` mode) it additionally dumps and checks the whole
/// observability plane after the client is done.
fn smoke_run(obs: &ObsConfig) {
    let (service, wservice) = start_services(obs);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    println!(
        "demo server on {addr}: σ={} hop-metric sources (BK-built shards) + σ={} \
         weighted sources, {SHARDS} shards, {WORKERS} workers, tracing {}",
        SOURCES.len(),
        WSOURCES.len(),
        if obs.enabled() { "on" } else { "off" }
    );
    std::thread::scope(|scope| {
        let service = &service;
        let wservice = &wservice;
        // Two connections: the main protocol conversation, then the over-long-line check
        // (which needs a fresh connection because the first one ends closed).
        let server = scope.spawn(move || serve(listener, service, wservice, Some(2)));
        run_client(&addr);
        server.join().expect("server thread");
    });
    if obs.enabled() {
        dump_observability(&service, obs);
    }
    let metrics = service.shutdown();
    let wmetrics = wservice.shutdown();
    println!(
        "served {} hop-metric + {} weighted queries over TCP; batch latency [{}]",
        metrics.queries_total,
        wmetrics.queries_total,
        metrics.batch_latency.summary()
    );
}

/// Prints (and sanity-checks) the span-journal stage accounting, the slow-query replay
/// lines, and the full text exposition of an observed service.
fn dump_observability(service: &QueryService, obs: &ObsConfig) {
    let journal = service.journal_snapshot().expect("tracing is on in this mode");
    assert!(journal.total > 0, "the client's batches must have journaled spans");
    assert_eq!(journal.total % 3, 0, "every batch journals exactly three spans");
    println!("\nspan journal: {} events recorded, {} dropped", journal.total, journal.dropped);
    for (code, total, count) in journal.totals_by_stage() {
        let stage = BatchStage::from_code(code).map_or("unknown", BatchStage::name);
        println!("  {stage:<10} {count:>5} spans  {total:>12.1?} total");
    }
    let slow = service.slow_queries();
    assert!(!slow.is_empty(), "a zero threshold must capture batches");
    println!(
        "slow-query log: {} batches over {:?} (showing the latest replayable entries):",
        service.slow_queries_total(),
        obs.slow_query_threshold.expect("threshold set in this mode")
    );
    for entry in slow.iter().rev().take(3) {
        let head = entry.payload.first().map(format_query).unwrap_or_default();
        println!(
            "  trace={:#018x} latency={:>9.1?} batch of {:>2}: {head} …",
            entry.trace_id,
            entry.latency,
            entry.payload.len()
        );
    }
    let exposition = service.render_metrics();
    assert!(is_well_formed(&exposition), "server-side exposition must be well-formed");
    assert!(exposition.contains("msrp_journal_events_total"));
    assert!(exposition.contains("msrp_span_seconds_total"));
    assert!(exposition.contains("msrp_slow_queries_total"));
    println!("\nfull text exposition (what the METRICS verb serves):\n{exposition}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7411");
            let (service, wservice) = start_services(&ObsConfig::default());
            let listener = TcpListener::bind(addr).expect("bind server address");
            println!("serving replacement-path queries on {addr} (Ctrl-C to stop)");
            serve(listener, &service, &wservice, None);
        }
        Some("--client") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7411");
            run_client(addr);
        }
        Some("--metrics") => smoke_run(&metrics_obs_config()),
        Some(other) => {
            eprintln!("unknown mode `{other}` (expected --serve, --client, or --metrics)");
            std::process::exit(2);
        }
        None => smoke_run(&ObsConfig::default()),
    }
}
