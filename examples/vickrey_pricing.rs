//! Vickrey pricing of shortest-path edges — the auction-theoretic motivation of the
//! replacement-path problem (Nisan–Ronen 2001; Hershberger–Suri, FOCS 2001).
//!
//! Every link of the network is owned by a selfish agent with a unit cost. A buyer wants to
//! route traffic from a gateway `s` to a destination `t` along a shortest path and pays each
//! chosen edge its VCG price `|st ⋄ e| − |st| + 1`: the cheaper the best detour around an edge,
//! the less market power its owner has. Critical edges (bridges) have unbounded price.
//!
//! Run with: `cargo run --example vickrey_pricing`

use msrp::core::MsrpParams;
use msrp::graph::generators::connected_gnm;
use msrp::netsim::vickrey_prices;
use msrp::oracle::ReplacementPathOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = connected_gnm(80, 140, &mut rng).expect("valid generator parameters");
    let gateways = [0usize, 40];
    let oracle = ReplacementPathOracle::build(&g, &gateways, &MsrpParams::default());

    for &s in &gateways {
        // Price the route to the three farthest destinations.
        let mut targets: Vec<usize> = (0..g.vertex_count()).filter(|&t| t != s).collect();
        targets.sort_by_key(|&t| std::cmp::Reverse(oracle.distance(s, t).unwrap_or(0)));
        println!("\n=== gateway {s} ===");
        for &t in targets.iter().take(3) {
            let path = oracle.canonical_path(s, t).expect("connected");
            let prices = vickrey_prices(&oracle, s, t).expect("source known");
            let total: u64 = prices.iter().map(|p| p.payment.map(u64::from).unwrap_or(0)).sum();
            let critical = prices.iter().filter(|p| p.is_critical()).count();
            println!(
                "route {s} -> {t} (length {}): total VCG payment {}, {} critical edge(s)",
                path.len() - 1,
                total,
                critical
            );
            for p in &prices {
                match p.payment {
                    Some(pay) => println!(
                        "    edge {:<9} payment {:>3}   (detour +{})",
                        p.edge.to_string(),
                        pay,
                        p.premium().unwrap()
                    ),
                    None => println!(
                        "    edge {:<9} CRITICAL (no replacement path)",
                        p.edge.to_string()
                    ),
                }
            }
        }
    }

    println!(
        "\nInterpretation: an edge priced 1 has a zero-cost detour (perfect competition); prices \
         above 1 quantify the owner's market power, and critical edges are monopolies — exactly \
         the quantities the replacement-path problem was introduced to compute."
    );
}
