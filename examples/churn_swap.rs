//! Live churn: serving replacement-path queries while the network changes under the service.
//!
//! An operator's links fail and come back; queries must keep flowing the whole time. This
//! example runs the epoch-swap pipeline end to end: a `QueryService` answers from an
//! immutable `Arc`-shared shard set, each failure/repair event triggers an *incremental*
//! Bernstein–Karger rebuild on a background thread, and an atomic epoch publish makes the
//! post-event oracle live without ever pausing the workers. Every batch is validated
//! against per-epoch ground truth, and every incremental rebuild against a from-scratch
//! build — the run prints the measured incremental win.
//!
//! Run with: `cargo run --release --example churn_swap`

use msrp::graph::generators::{connected_gnm, grid_graph};
use msrp::graph::Graph;
use msrp::netsim::{run_churn, ChurnConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let scenarios: Vec<(&str, Graph)> = vec![
        ("metro grid 8x8", grid_graph(8, 8)),
        ("sparse ISP mesh", connected_gnm(96, 260, &mut rng).expect("valid parameters")),
    ];
    println!(
        "{:<18} {:>7} {:>9} {:>11} {:>22} {:>16} {:>11} {:>11}",
        "scenario",
        "events",
        "queries",
        "mismatches",
        "src reuse/patch/rebuild",
        "cuts redone",
        "stale p99",
        "rebuild p50"
    );
    for (name, graph) in scenarios {
        let n = graph.vertex_count();
        let config = ChurnConfig {
            gateways: vec![0, n / 4, n / 2, 3 * n / 4],
            events: 12,
            batches_in_flight: 3,
            batches_settled: 2,
            batch_size: 16,
            shards: 2,
            workers: 2,
            seed: 7,
            verify_full: true,
        };
        let report = run_churn(&graph, &config);
        assert_eq!(report.mismatched_batches, 0, "every batch must match one epoch exactly");
        assert!(report.incremental_win(), "incremental rebuild must beat from-scratch");
        let inc = &report.incremental;
        println!(
            "{:<18} {:>7} {:>9} {:>11} {:>22} {:>16} {:>11} {:>11}",
            name,
            format!("{}+{}r", report.events - report.repairs, report.repairs),
            report.total_queries,
            report.mismatched_batches,
            format!("{}/{}/{}", inc.sources_reused, inc.sources_patched, inc.sources_rebuilt),
            format!("{}/{}", inc.cuts_recomputed, inc.cuts_total),
            format!("{:.1?}", report.staleness.p99()),
            format!("{:.1?}", report.rebuild_latency.p50()),
        );
    }
    println!("\nEvery batch matched a single epoch; incremental rebuilds beat full rebuilds.");
}
