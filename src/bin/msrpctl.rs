//! `msrpctl`: fleet lifecycle CLI for snapshot-backed replacement-path servers.
//!
//! A *state directory* (default `./.msrpctl`) holds named snapshots (`NAME.snap`, the
//! `msrp-snap` binary format) and, for running servers, their address files
//! (`NAME.addr`). The subcommands walk a snapshot through its whole life:
//!
//! ```text
//! msrpctl create demo --n 512 --sources 4 --shards 2     # build + persist a snapshot
//! msrpctl list                                           # table of snapshots + status
//! msrpctl serve demo 127.0.0.1:7412                      # boot a server FROM the snapshot
//! msrpctl stats demo                                     # one-line STATS probe
//! msrpctl query demo 0 17 3 9                            # one replacement-path query
//! msrpctl stop demo                                      # graceful remote shutdown
//! ```
//!
//! `serve` never runs the solver: it validates the snapshot's checksums, adopts the
//! frozen graph and oracle shards (`ShardedOracle::from_snapshot`), and starts answering
//! — that boot-vs-rebuild gap is measured by the `oracle_snapshot` bench and experiment
//! E15. The wire loop speaks the `msrp-serve` text protocol with bounded line reads
//! (`read_line_bounded`), plus one `msrpctl`-level admin verb: `STOP`, which drains the
//! service and exits the `serve` process.
//!
//! Everything is deterministic: `create` builds from a seeded generator, so two hosts
//! running the same `create` line produce byte-identical snapshots.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use msrp::graph::generators::{connected_gnm, weighted_connected_gnm};
use msrp::serve::{
    format_answer, format_metrics_header, format_stats, format_weighted_answer, parse_request,
    read_line_bounded, validate_query, LineOutcome, QueryService, Request, ServiceConfig,
    ShardedOracle, WeightedShardedOracle, MAX_LINE_BYTES,
};
use msrp::snap::{inspect, SnapInfo, SnapKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEFAULT_STATE_DIR: &str = ".msrpctl";
const DEFAULT_WEIGHT_MAX: u64 = 1000;

fn usage() -> ExitCode {
    eprintln!(
        "msrpctl — fleet lifecycle for snapshot-backed replacement-path servers

USAGE:
  msrpctl create NAME [--n N] [--m M] [--sources K] [--shards S] [--seed SEED] [--weighted]
  msrpctl list
  msrpctl serve NAME ADDR [--workers W]
  msrpctl stats NAME
  msrpctl query NAME SOURCE TARGET AVOID_U AVOID_V
  msrpctl stop NAME

Every subcommand also accepts --state-dir DIR (default ./{DEFAULT_STATE_DIR}).
`create` defaults: --n 256, --m 4·n, --sources 4, --shards 2, --seed 42, hop metric."
    );
    ExitCode::from(2)
}

/// Minimal flag parser: positionals in order, `--flag value` pairs, `--weighted` bare.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let takes_value = name != "weighted";
                if takes_value {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.push((name.to_string(), Some(v.clone())));
                } else {
                    flags.push((name.to_string(), None));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} {v}: not a valid number")),
        }
    }

    fn state_dir(&self) -> PathBuf {
        PathBuf::from(self.flag("state-dir").unwrap_or(DEFAULT_STATE_DIR))
    }
}

/// Snapshot names become file names; keep them path-safe.
fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)) {
        return Err(format!("invalid snapshot name {name:?} (use [A-Za-z0-9._-])"));
    }
    Ok(())
}

fn snap_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.snap"))
}

fn addr_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.addr"))
}

fn evenly_spread(n: usize, sigma: usize) -> Vec<usize> {
    (0..sigma).map(|i| i * n / sigma).collect()
}

fn cmd_create(args: &Args) -> Result<(), String> {
    let name = args.positional.first().ok_or("create needs a NAME")?;
    validate_name(name)?;
    let n: usize = args.num("n", 256)?;
    let m: usize = args.num("m", 4 * n)?;
    let sigma: usize = args.num("sources", 4)?;
    let shards: usize = args.num("shards", 2)?;
    let seed: u64 = args.num("seed", 42)?;
    if n < 2 || sigma == 0 || sigma > n || shards == 0 {
        return Err("need n ≥ 2 and 0 < sources ≤ n and shards ≥ 1".into());
    }
    let dir = args.state_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create state dir: {e}"))?;
    let sources = evenly_spread(n, sigma);
    let mut rng = StdRng::seed_from_u64(seed);
    let bytes = if args.has("weighted") {
        let g = weighted_connected_gnm(n, m, DEFAULT_WEIGHT_MAX, &mut rng)
            .map_err(|e| format!("generator rejected the parameters: {e}"))?
            .freeze();
        WeightedShardedOracle::build(&g, &sources, shards).to_snapshot(&g)
    } else {
        let g = connected_gnm(n, m, &mut rng)
            .map_err(|e| format!("generator rejected the parameters: {e}"))?
            .freeze();
        ShardedOracle::build_bk_csr(&g, &sources, shards).to_snapshot(&g)
    };
    let path = snap_path(&dir, name);
    std::fs::write(&path, &bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "created {} ({} bytes): n={n} m={m} σ={sigma} shards={shards} seed={seed} kind={}",
        path.display(),
        bytes.len(),
        if args.has("weighted") { SnapKind::Weighted } else { SnapKind::HopMetric },
    );
    Ok(())
}

/// Renders rows as a fixed-width table (header + one line per row).
fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    println!("{}", line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", line(row));
    }
}

fn cmd_list(args: &Args) -> Result<(), String> {
    let dir = args.state_dir();
    let mut rows = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(_) => {
            println!("no state dir at {} (run `msrpctl create` first)", dir.display());
            return Ok(());
        }
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            e.file_name().to_str().and_then(|f| f.strip_suffix(".snap")).map(String::from)
        })
        .collect();
    names.sort();
    for name in names {
        let path = snap_path(&dir, &name);
        let bytes = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let status = std::fs::read_to_string(addr_path(&dir, &name))
            .map(|a| format!("serving {}", a.trim()))
            .unwrap_or_else(|_| "-".to_string());
        match inspect(&bytes) {
            Ok(SnapInfo { kind, vertex_count, edge_count, source_count, shard_count, .. }) => {
                rows.push(vec![
                    name,
                    kind.to_string(),
                    vertex_count.to_string(),
                    edge_count.to_string(),
                    source_count.to_string(),
                    shard_count.to_string(),
                    bytes.len().to_string(),
                    status,
                ]);
            }
            // A corrupt snapshot is listed, not hidden: the operator should see it.
            Err(e) => rows.push(vec![
                name,
                "CORRUPT".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                bytes.len().to_string(),
                e.to_string(),
            ]),
        }
    }
    if rows.is_empty() {
        println!("no snapshots in {}", dir.display());
    } else {
        print_table(
            &["NAME", "KIND", "VERTICES", "EDGES", "SOURCES", "SHARDS", "BYTES", "STATUS"],
            &rows,
        );
    }
    Ok(())
}

/// The two bootable service flavours, dispatched on the snapshot's kind.
enum Booted {
    Hop(QueryService),
    Weighted(QueryService<WeightedShardedOracle>),
}

fn boot(bytes: &[u8], workers: usize) -> Result<Booted, String> {
    let config = ServiceConfig { workers };
    let info = inspect(bytes).map_err(|e| format!("snapshot rejected: {e}"))?;
    match info.kind {
        SnapKind::HopMetric => {
            let (_g, oracle) = ShardedOracle::from_snapshot(bytes)
                .map_err(|e| format!("snapshot rejected: {e}"))?;
            Ok(Booted::Hop(QueryService::start(oracle, &config)))
        }
        SnapKind::Weighted => {
            let (_g, oracle) = WeightedShardedOracle::from_snapshot(bytes)
                .map_err(|e| format!("snapshot rejected: {e}"))?;
            Ok(Booted::Weighted(QueryService::start(oracle, &config)))
        }
    }
}

/// One connection of the serve loop. Returns `true` when the client issued `STOP` (the
/// admin verb that shuts the whole server down, not just the connection).
fn handle_connection(stream: TcpStream, service: &Booted) -> std::io::Result<bool> {
    let vertex_count = match service {
        Booted::Hop(s) => s.oracle().vertex_count(),
        Booted::Weighted(s) => s.oracle().vertex_count(),
    };
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_line_bounded(&mut reader, &mut line, MAX_LINE_BYTES)? {
            LineOutcome::Line => {}
            LineOutcome::Eof => return Ok(false),
            LineOutcome::TooLong => {
                writeln!(writer, "ERR line too long")?;
                writer.flush()?;
                return Ok(false);
            }
        }
        let trimmed = line.trim_end();
        // STOP is msrpctl's admin verb, above the query protocol.
        if trimmed == "STOP" {
            writeln!(writer, "OK stopping")?;
            writer.flush()?;
            return Ok(true);
        }
        match (parse_request(trimmed), service) {
            (Ok(Request::Query(q)), Booted::Hop(s)) => match validate_query(&q, vertex_count) {
                Ok(()) => writeln!(writer, "{}", format_answer(s.answer_batch(&[q])[0]))?,
                Err(e) => writeln!(writer, "ERR {e}")?,
            },
            (Ok(Request::WeightedQuery(q)), Booted::Weighted(s)) => {
                match validate_query(&q, vertex_count) {
                    Ok(()) => {
                        writeln!(writer, "{}", format_weighted_answer(s.answer_batch(&[q])[0]))?
                    }
                    Err(e) => writeln!(writer, "ERR {e}")?,
                }
            }
            (Ok(Request::Query(_)), Booted::Weighted(_)) => {
                writeln!(writer, "ERR this server is weighted: use QW")?
            }
            (Ok(Request::WeightedQuery(_)), Booted::Hop(_)) => {
                writeln!(writer, "ERR this server is hop-metric: use Q")?
            }
            (Ok(Request::Stats), _) => {
                let metrics = match service {
                    Booted::Hop(s) => s.metrics(),
                    Booted::Weighted(s) => s.metrics(),
                };
                writeln!(writer, "{}", format_stats(&metrics))?;
            }
            (Ok(Request::Metrics), _) => {
                let text = match service {
                    Booted::Hop(s) => s.render_metrics(),
                    Booted::Weighted(s) => s.render_metrics(),
                };
                writeln!(writer, "{}", format_metrics_header(text.lines().count()))?;
                writer.write_all(text.as_bytes())?;
            }
            (Ok(Request::Quit), _) => return Ok(false),
            (Ok(Request::Batch(_)) | Ok(Request::WeightedBatch(_)), _) => {
                // Batches are a serve_tcp feature; the fleet CLI keeps its loop minimal.
                writeln!(writer, "ERR batches are not supported by msrpctl serve")?;
                writer.flush()?;
                return Ok(false);
            }
            (Err(e), _) => writeln!(writer, "ERR {e}")?,
        }
        writer.flush()?;
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let name = args.positional.first().ok_or("serve needs a NAME")?;
    validate_name(name)?;
    let addr = args.positional.get(1).ok_or("serve needs an ADDR (e.g. 127.0.0.1:7412)")?;
    let workers: usize = args.num("workers", 2)?;
    let dir = args.state_dir();
    let path = snap_path(&dir, name);
    let bytes = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let service = boot(&bytes, workers.max(1))?;
    let listener = TcpListener::bind(addr.as_str()).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("local addr: {e}"))?;
    let addr_file = addr_path(&dir, name);
    std::fs::write(&addr_file, format!("{local}\n"))
        .map_err(|e| format!("write {}: {e}", addr_file.display()))?;
    println!("serving snapshot {name} on {local} (adopted, not rebuilt); STOP to shut down");
    // Sequential accept loop: the fleet CLI serves one connection at a time, which keeps
    // the STOP semantics trivial (no cross-thread shutdown signalling to get wrong).
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| format!("accept: {e}"))?;
        match handle_connection(stream, &service) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => eprintln!("connection error: {e}"),
        }
    }
    let _ = std::fs::remove_file(&addr_file);
    let metrics = match service {
        Booted::Hop(s) => s.shutdown(),
        Booted::Weighted(s) => s.shutdown(),
    };
    println!("stopped after {} queries", metrics.queries_total);
    Ok(())
}

/// Connects to the server recorded in `NAME.addr`.
fn connect(dir: &Path, name: &str) -> Result<TcpStream, String> {
    let addr_file = addr_path(dir, name);
    let addr = std::fs::read_to_string(&addr_file)
        .map_err(|_| format!("{name} is not serving (no {})", addr_file.display()))?;
    let addr = addr.trim();
    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

/// Sends one line and reads one reply line.
fn round_trip(stream: TcpStream, request: &str) -> Result<String, String> {
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{request}").map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("flush: {e}"))?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read reply: {e}"))?;
    if line.is_empty() {
        return Err("server closed the connection without replying".into());
    }
    Ok(line.trim_end().to_string())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let name = args.positional.first().ok_or("stats needs a NAME")?;
    validate_name(name)?;
    let reply = round_trip(connect(&args.state_dir(), name)?, "STATS")?;
    println!("{reply}");
    Ok(())
}

fn cmd_stop(args: &Args) -> Result<(), String> {
    let name = args.positional.first().ok_or("stop needs a NAME")?;
    validate_name(name)?;
    let reply = round_trip(connect(&args.state_dir(), name)?, "STOP")?;
    println!("{reply}");
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let name = args.positional.first().ok_or("query needs a NAME")?;
    validate_name(name)?;
    let ids: Vec<&String> = args.positional.iter().skip(1).collect();
    if ids.len() != 4 {
        return Err("query needs SOURCE TARGET AVOID_U AVOID_V".into());
    }
    for id in &ids {
        if id.parse::<u64>().is_err() {
            return Err(format!("{id:?} is not a vertex id"));
        }
    }
    let dir = args.state_dir();
    // The verb depends on the snapshot's metric; inspect() tells us which.
    let path = snap_path(&dir, name);
    let bytes = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let info = inspect(&bytes).map_err(|e| format!("snapshot rejected: {e}"))?;
    let verb = match info.kind {
        SnapKind::HopMetric => "Q",
        SnapKind::Weighted => "QW",
    };
    let request = format!("{verb} {} {} {} {}", ids[0], ids[1], ids[2], ids[3]);
    let reply = round_trip(connect(&dir, name)?, &request)?;
    println!("{reply}");
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        return usage();
    };
    let args = match Args::parse(&raw[1..]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "create" => cmd_create(&args),
        "list" => cmd_list(&args),
        "serve" => cmd_serve(&args),
        "stats" => cmd_stats(&args),
        "query" => cmd_query(&args),
        "stop" => cmd_stop(&args),
        _ => {
            eprintln!("unknown command {command:?}");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
