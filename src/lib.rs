//! Umbrella crate for the *Multiple Source Replacement Path* (MSRP) reproduction.
//!
//! This crate simply re-exports the workspace members so that examples and downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — graph substrate (graphs, BFS trees, LCA, Dijkstra, cuckoo hashing, generators).
//! * [`rpath`] — classical replacement-path building blocks and ground-truth baselines.
//! * [`core`] — the paper's SSRP (Theorem 14) and MSRP (Theorem 1/26) algorithms.
//! * [`oracle`] — single-fault distance oracles with `O(1)` queries.
//! * [`bmm`] — Boolean matrix multiplication and the Theorem 2 reduction.
//! * [`netsim`] — link-failure simulation and Vickrey pricing applications.
//! * [`obs`] — observability plane: span journal, stage profiler, metrics exposition.
//! * [`snap`] — versioned, checksummed binary snapshots of frozen graphs and oracles.
//! * [`serve`] — the concurrent, sharded replacement-path query service.
//!
//! # Quickstart
//!
//! ```
//! use msrp::core::{solve_ssrp, MsrpParams};
//! use msrp::graph::generators::cycle_graph;
//!
//! let g = cycle_graph(8);
//! let out = solve_ssrp(&g, 0, &MsrpParams::default());
//! // Avoiding the first edge of the canonical path from 0 to 2 forces the long way round.
//! assert_eq!(out.distances.get(2, 0), Some(6));
//! ```

pub use msrp_bmm as bmm;
pub use msrp_core as core;
pub use msrp_graph as graph;
pub use msrp_netsim as netsim;
pub use msrp_obs as obs;
pub use msrp_oracle as oracle;
pub use msrp_rpath as rpath;
pub use msrp_serve as serve;
pub use msrp_snap as snap;
