//! Hostile-protocol-input property suite: seed-pinned fuzz of `parse_request`,
//! `validate_query`, and the service loop. The invariant under test is the headline bugfix
//! of the weighted-MSRP PR — *no input a client can send may kill a serving worker*: every
//! line either parses (and then either validates or is answered as unroutable) or is
//! rejected with an error value; nothing panics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::sync::{Arc, Mutex};
use std::time::Duration;

use msrp_core::MsrpParams;
use msrp_graph::generators::{connected_gnm, weighted_connected_gnm};
use msrp_graph::{Edge, Graph};
use msrp_obs::is_well_formed;
use msrp_serve::{
    format_stats, parse_request, parse_stats, validate_query, Epoch, EpochOracle, ObsConfig, Query,
    QueryService, Request, ServiceConfig, ShardedOracle,
};

const N: usize = 48;
const SOURCES: [usize; 3] = [0, 16, 32];

fn service_under_test() -> QueryService {
    let mut rng = StdRng::seed_from_u64(71);
    let g = connected_gnm(N, 120, &mut rng).unwrap();
    QueryService::start(
        ShardedOracle::build(&g, &SOURCES, &MsrpParams::default(), 2),
        &ServiceConfig { workers: 3 },
    )
}

/// A seed-pinned stream of hostile lines: random verbs, wrong arities, giant and boundary
/// numbers, non-numeric tokens, u == v edges, trailing garbage, and — deliberately often —
/// a grammatically valid `Q` line whose ids may still be wildly out of range (the shape the
/// headline bug was triggered by).
fn hostile_line(rng: &mut StdRng) -> String {
    let verb = match rng.gen_range(0..15usize) {
        0..=4 => "Q",
        5..=6 => "QW",
        7 => "B",
        8 => "BW",
        9 => "STATS",
        10 => "METRICS",
        11 => "QUIT",
        12 => "q",
        13 => "FLY",
        _ => "",
    };
    let token = |rng: &mut StdRng| -> String {
        match rng.gen_range(0..10usize) {
            0..=4 => rng.gen_range(0..2 * N).to_string(),
            5 => u64::MAX.to_string(),
            6 => "999999999".to_string(),
            7 => "-3".to_string(),
            8 => "x9".to_string(),
            _ => (N - 1).to_string(),
        }
    };
    let arity = if rng.gen_range(0..2usize) == 0 { 4 } else { rng.gen_range(0..6usize) };
    let mut line = verb.to_string();
    for _ in 0..arity {
        line.push(' ');
        line.push_str(&token(rng));
    }
    line
}

#[test]
fn fuzzed_lines_never_kill_a_worker() {
    let service = service_under_test();
    let reference = service.oracle().clone();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mut parsed_queries = 0usize;
    let mut rejected_lines = 0usize;
    let mut rejected_ids = 0usize;
    let mut batch = Vec::new();
    for _ in 0..4000 {
        let line = hostile_line(&mut rng);
        match parse_request(&line) {
            Err(_) => rejected_lines += 1,
            Ok(Request::Stats)
            | Ok(Request::Metrics)
            | Ok(Request::Quit)
            | Ok(Request::Batch(_))
            | Ok(Request::WeightedBatch(_)) => {}
            // The unweighted service under test treats `QW` ids exactly like `Q` ids.
            Ok(Request::Query(q)) | Ok(Request::WeightedQuery(q)) => {
                parsed_queries += 1;
                if validate_query(&q, N).is_err() {
                    rejected_ids += 1;
                }
                // Defense in depth: even UNvalidated queries go straight to the workers.
                batch.push(q);
            }
        }
        if batch.len() >= 64 {
            let answers = service.answer_batch(&batch);
            for (q, a) in batch.iter().zip(&answers) {
                assert_eq!(*a, reference.query(*q), "q={q:?}");
            }
            batch.clear();
        }
    }
    let answers = service.answer_batch(&batch);
    assert_eq!(answers.len(), batch.len());
    // The workload actually exercised all three rejection layers.
    assert!(rejected_lines > 100, "rejected_lines = {rejected_lines}");
    assert!(parsed_queries > 100, "parsed_queries = {parsed_queries}");
    assert!(rejected_ids > 10, "rejected_ids = {rejected_ids}");
    // Every worker is still alive and exact after the storm.
    let good = Query::new(0, N - 1, Edge::new(0, 1));
    for _ in 0..service.worker_count() * 2 {
        assert_eq!(service.answer_batch(&[good])[0], reference.query(good));
    }
    let metrics = service.shutdown();
    assert!(metrics.queries_total >= parsed_queries as u64);
}

#[test]
fn boundary_queries_answer_without_panicking() {
    let service = service_under_test();
    // Exactly-at-the-boundary and far-out ids, in one batch.
    let hostile = [
        Query::new(0, N, Edge::new(0, 1)), // first out-of-range target
        Query::new(0, N - 1, Edge::new(N - 1, N)), // first out-of-range endpoint
        Query::new(N, 0, Edge::new(0, 1)), // out-of-range source
        Query::new(0, usize::MAX, Edge::new(0, 1)),
        Query::new(0, 0, Edge::new(usize::MAX - 1, usize::MAX)),
    ];
    assert_eq!(service.answer_batch(&hostile), vec![None; hostile.len()]);
    // In-range but pointless (u == v is unrepresentable as an Edge, so the closest legal
    // hostile shape is a non-existent edge) still answers exactly.
    let absent_edge = Query::new(0, 5, Edge::new(0, N - 1));
    let direct = service.oracle().query(absent_edge);
    assert_eq!(service.answer_batch(&[absent_edge])[0], direct);
    service.shutdown();
}

#[test]
fn giant_batch_headers_parse_without_allocation() {
    // `B <k>` is length-delimited; parsing the header must not allocate k of anything
    // (the front end enforces its own MAX_BATCH before reserving). u64::MAX parses as a
    // legal usize on 64-bit targets; anything larger is rejected as malformed.
    assert_eq!(parse_request("B 18446744073709551615"), Ok(Request::Batch(usize::MAX)));
    assert!(parse_request("B 18446744073709551616").is_err());
    assert!(parse_request("B -1").is_err());
}

#[test]
fn weighted_service_survives_the_same_hostility() {
    let mut rng = StdRng::seed_from_u64(72);
    let g = weighted_connected_gnm(N, 120, 1000, &mut rng).unwrap().freeze();
    let service =
        QueryService::build_and_start_weighted(&g, &SOURCES, 2, &ServiceConfig { workers: 2 });
    let mut fuzz_rng = StdRng::seed_from_u64(0xBEEF);
    let mut batch = Vec::new();
    for _ in 0..1500 {
        // The weighted service serves the `QW` verb, but any parsed query shape must be
        // equally survivable — both verbs feed the same Query ids.
        match parse_request(&hostile_line(&mut fuzz_rng)) {
            Ok(Request::WeightedQuery(q)) | Ok(Request::Query(q)) => batch.push(q),
            _ => {}
        }
    }
    let reference: Vec<_> = batch.iter().map(|&q| service.oracle().query(q)).collect();
    assert_eq!(service.answer_batch(&batch), reference);
    let good = Query::new(0, N - 1, Edge::new(0, 1));
    assert_eq!(service.answer_batch(&[good])[0], service.oracle().query(good));
    service.shutdown();
}

/// The churn storm: hostile lines and valid queries fired at an epoch-swapping service
/// *while* rebuild-and-publish cycles are in flight. Two invariants:
///
/// 1. **No worker dies** — every fuzzed batch is answered, and the pool still answers
///    exactly after the storm.
/// 2. **No batch mixes epochs** — every batch's answers equal, query for query, the answer
///    set of a *single* published epoch (old or new; which one depends on timing, but never
///    a blend).
#[test]
fn churn_storm_never_mixes_epochs_within_a_batch() {
    let mut rng = StdRng::seed_from_u64(74);
    let g0 = connected_gnm(N, 130, &mut rng).unwrap();
    let oracle0 = ShardedOracle::build_bk_csr(&g0.freeze(), &SOURCES, 2);
    let service = QueryService::start(EpochOracle::new(oracle0), &ServiceConfig { workers: 3 });
    // Every epoch that has ever been current, for the pinning check. Pushes happen inside
    // the same critical section as the publish, so any epoch a batch can possibly have
    // pinned is in this list by the time the storm thread locks it.
    let published: Mutex<Vec<Arc<Epoch>>> = Mutex::new(vec![service.oracle().current()]);
    std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            let mut g = g0.clone();
            let mut churn_rng = StdRng::seed_from_u64(75);
            let mut down: Vec<Edge> = Vec::new();
            for _ in 0..8 {
                let repair = !down.is_empty() && churn_rng.gen_range(0..2usize) == 0;
                let e = if repair {
                    let e = down.swap_remove(churn_rng.gen_range(0..down.len()));
                    let (u, v) = e.endpoints();
                    g.add_edge(u, v).unwrap();
                    e
                } else {
                    let edges = g.edge_vec();
                    let e = edges[churn_rng.gen_range(0..edges.len())];
                    let (u, v) = e.endpoints();
                    g.remove_edge(u, v).unwrap();
                    down.push(e);
                    e
                };
                let event_at = std::time::Instant::now();
                let rebuild_at = std::time::Instant::now();
                let (next, stats) =
                    service.oracle().current().oracle.rebuild_bk_csr(&g.freeze(), e);
                let rebuilt_in = rebuild_at.elapsed();
                let mut log = published.lock().unwrap();
                let epoch = service.oracle().publish(next);
                service.shared_metrics().record_epoch_swap(
                    epoch.id,
                    event_at.elapsed(),
                    rebuilt_in,
                    &stats,
                );
                log.push(epoch);
            }
        });
        // The storm: interleave fuzzed lines (unvalidated, straight at the workers) with
        // well-formed queries, in mixed batches, while the swapper runs.
        let mut fuzz_rng = StdRng::seed_from_u64(0xCAFE);
        for round in 0..60usize {
            let mut batch = Vec::new();
            while batch.len() < 24 {
                match parse_request(&hostile_line(&mut fuzz_rng)) {
                    Ok(Request::Query(q)) | Ok(Request::WeightedQuery(q)) => batch.push(q),
                    _ => {}
                }
                batch.push(Query::new(
                    SOURCES[batch.len() % SOURCES.len()],
                    fuzz_rng.gen_range(0..N),
                    Edge::new(0, 1),
                ));
            }
            let answers = service.answer_batch(&batch);
            let epochs = published.lock().unwrap().clone();
            let consistent = epochs
                .iter()
                .any(|ep| batch.iter().zip(&answers).all(|(q, a)| *a == ep.oracle.query(*q)));
            assert!(
                consistent,
                "round {round}: batch matches no single epoch (epochs seen: {})",
                epochs.len()
            );
        }
        swapper.join().expect("swapper thread panicked");
    });
    // Quiescent now: every answer must come from the final epoch, and every worker lives.
    let last = service.oracle().current();
    assert_eq!(last.id, 8);
    let good = Query::new(SOURCES[1], N - 1, Edge::new(0, 1));
    for _ in 0..service.worker_count() * 2 {
        assert_eq!(service.answer_batch(&[good])[0], last.oracle.query(good));
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.epoch, 8);
    assert_eq!(metrics.staleness_window.count, 8);
    assert_eq!(metrics.rebuild_latency.count, 8);
    assert_eq!(metrics.rebuild.sources_total, 8 * SOURCES.len());
    assert!(metrics.queries_total > 0);
}

/// The metrics plane under the storm: `METRICS` parses strictly however it is mangled, and
/// the exposition rendered *while* epoch swaps and hostile batches are in flight is
/// well-formed on every single scrape — a scraper never sees a torn or malformed page, the
/// pinned `STATS` grammar round-trips mid-storm, and no worker dies serving either verb.
#[test]
fn metrics_scrapes_stay_well_formed_during_epoch_swap_storm() {
    // Parse-boundary hostility first: only the bare verb is the verb.
    assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
    for line in ["METRIC", "METRICSS", "metrics", "METRICS 1", "METRICS x", "METRICS METRICS"] {
        assert!(parse_request(line).is_err(), "line {line:?} must be rejected at parse");
    }
    let mut rng = StdRng::seed_from_u64(76);
    let g0 = connected_gnm(N, 130, &mut rng).unwrap();
    let oracle0 = ShardedOracle::build_bk_csr(&g0.freeze(), &SOURCES, 2);
    let service = QueryService::start_observed(
        EpochOracle::new(oracle0),
        &ServiceConfig { workers: 3 },
        &ObsConfig {
            // Deliberately tiny ring: the storm must wrap it, so scrapes race overwrites.
            journal_capacity: 64,
            slow_query_threshold: Some(Duration::ZERO),
            slow_log_capacity: 4,
            trace_seed: 0xFEED,
        },
    );
    std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            let mut g = g0.clone();
            let mut churn_rng = StdRng::seed_from_u64(77);
            for _ in 0..6 {
                let edges = g.edge_vec();
                let e = edges[churn_rng.gen_range(0..edges.len())];
                let (u, v) = e.endpoints();
                g.remove_edge(u, v).unwrap();
                let event_at = std::time::Instant::now();
                let (next, stats) =
                    service.oracle().current().oracle.rebuild_bk_csr(&g.freeze(), e);
                let rebuilt_in = event_at.elapsed();
                let epoch = service.oracle().publish(next);
                service.shared_metrics().record_epoch_swap(
                    epoch.id,
                    event_at.elapsed(),
                    rebuilt_in,
                    &stats,
                );
            }
        });
        let mut fuzz_rng = StdRng::seed_from_u64(0xD00F);
        for round in 0..50usize {
            let mut batch = Vec::new();
            while batch.len() < 16 {
                if let Ok(Request::Query(q) | Request::WeightedQuery(q)) =
                    parse_request(&hostile_line(&mut fuzz_rng))
                {
                    batch.push(q);
                }
                batch.push(Query::new(
                    SOURCES[batch.len() % SOURCES.len()],
                    fuzz_rng.gen_range(0..N),
                    Edge::new(0, 1),
                ));
            }
            service.answer_batch(&batch);
            // Scrape mid-storm: the pinned STATS grammar round-trips, and the exposition
            // is well-formed even with swaps and journal wraps in flight.
            let stats_line = format_stats(&service.metrics());
            parse_stats(&stats_line).unwrap_or_else(|e| panic!("round {round}: {e:?}"));
            let text = service.render_metrics();
            assert!(is_well_formed(&text), "round {round}: malformed exposition:\n{text}");
            assert!(text.contains("msrp_queries_total"), "round {round}");
            assert!(text.contains("msrp_journal_events_total"), "round {round}");
        }
        swapper.join().expect("swapper thread panicked");
    });
    // The ring wrapped (drops counted, never blocked) and the plane still renders cleanly.
    let journal = service.journal_snapshot().expect("journal armed");
    assert!(journal.total >= 150 && journal.total.is_multiple_of(3), "total = {}", journal.total);
    assert!(journal.dropped > 0, "a 64-slot ring must wrap under 50 batches");
    assert!(service.slow_queries_total() > 0, "zero threshold must capture slow queries");
    // Quiescent: the final epoch serves, the last scrape is well-formed, workers live.
    let last = service.oracle().current();
    assert_eq!(last.id, 6);
    let good = Query::new(SOURCES[1], N - 1, Edge::new(0, 1));
    for _ in 0..service.worker_count() * 2 {
        assert_eq!(service.answer_batch(&[good])[0], last.oracle.query(good));
    }
    assert!(is_well_formed(&service.render_metrics()));
    let metrics = service.shutdown();
    assert_eq!(metrics.epoch, 6);
    assert_eq!(metrics.rebuild_latency.count, 6);
}

/// The BK-built service under the same storm: a graph with isolated vertices and a pendant
/// bridge, served from `ShardedOracle::build_bk_csr` shards. No fuzzed line may kill a
/// worker; unroutable ids answer `(None, None)`; answers stay bit-for-bit equal to the
/// `build_exact` reference throughout.
#[test]
fn bk_built_service_survives_hostility() {
    // 0..40 form a connected gnm component; 40..48 stay isolated (hostile "query an
    // isolated vertex" territory). Sources include an isolated vertex on purpose.
    let mut rng = StdRng::seed_from_u64(73);
    let core = connected_gnm(40, 100, &mut rng).unwrap();
    let mut g = Graph::new(N);
    for e in core.edges() {
        let (u, v) = e.endpoints();
        g.add_edge(u, v).unwrap();
    }
    let sources = [0usize, 16, 32, 44]; // 44 is isolated: every query from it is ∞ or local
    let csr = g.freeze();
    let service = QueryService::start(
        ShardedOracle::build_bk_csr(&csr, &sources, 2),
        &ServiceConfig { workers: 3 },
    );
    let reference = msrp_oracle::ReplacementPathOracle::build_exact_csr(&csr, &sources);

    // Targeted hostile shapes first: out-of-range ids, non-tree edges, absent edges between
    // components, self-loops (rejected at parse), and queries on isolated vertices.
    for line in ["Q 0 5 7 7", "QW 0 5 7 7", "Q 1 2", "BW -9", "QW x 1 2 3"] {
        assert!(parse_request(line).is_err(), "line {line:?} must be rejected at parse");
    }
    let absent_edge = Edge::new(0, 41); // crosses into the isolated block: never a graph edge
    let hostile = [
        Query::new(0, N, Edge::new(0, 1)), // first out-of-range target
        Query::new(0, 999_999_999, Edge::new(0, 1)), // far out-of-range target
        Query::new(usize::MAX, 0, Edge::new(0, 1)), // out-of-range source
        Query::new(0, 0, Edge::new(N - 1, N)), // out-of-range endpoint
        Query::new(0, 0, Edge::new(usize::MAX - 1, usize::MAX)), // both endpoints hostile
    ];
    for q in hostile {
        assert_eq!(service.oracle().query_routed(q), (None, None), "q={q:?}");
    }
    let in_range = [
        Query::new(44, 3, Edge::new(0, 1)), // isolated source: base distance is ∞
        Query::new(0, 45, Edge::new(0, 1)), // isolated target
        Query::new(44, 45, absent_edge),    // isolated to isolated, absent edge
        Query::new(0, 3, absent_edge),      // absent (non-tree, non-graph) edge
        Query::new(16, 39, Edge::new(41, 47)), // edge fully inside the isolated block
    ];
    for q in in_range {
        assert_eq!(
            service.answer_batch(&[q])[0],
            reference.replacement_distance(q.source, q.target, q.avoid),
            "q={q:?}"
        );
    }

    // Then the seeded storm, unvalidated, straight at the workers.
    let mut fuzz_rng = StdRng::seed_from_u64(0xB00C);
    let mut batch = Vec::new();
    for _ in 0..2000 {
        match parse_request(&hostile_line(&mut fuzz_rng)) {
            Ok(Request::Query(q)) | Ok(Request::WeightedQuery(q)) => batch.push(q),
            _ => {}
        }
        if batch.len() >= 64 {
            for (q, a) in batch.iter().zip(service.answer_batch(&batch)) {
                let expected = if q.target >= N || q.avoid.hi() >= N {
                    None
                } else {
                    reference.replacement_distance(q.source, q.target, q.avoid)
                };
                assert_eq!(a, expected, "q={q:?}");
            }
            batch.clear();
        }
    }
    // Every worker survived and still answers exactly.
    let good = Query::new(0, 39, Edge::new(0, 1));
    for _ in 0..service.worker_count() * 2 {
        assert_eq!(
            service.answer_batch(&[good])[0],
            reference.replacement_distance(0, 39, Edge::new(0, 1))
        );
    }
    service.shutdown();
}

/// The memory-exhaustion regression: a client streaming megabytes of newline-free bytes.
/// `read_line` would buffer the whole storm (the line buffer grows until the allocator
/// gives out); `read_line_bounded` must terminate at the cap with `TooLong` and never
/// let the line buffer grow past it — resident memory per connection stays bounded no
/// matter how much the client sends.
#[test]
fn newline_free_storm_never_grows_the_line_buffer_past_the_cap() {
    use msrp_serve::{read_line_bounded, LineOutcome, MAX_LINE_BYTES};
    use std::io::{BufReader, Read};

    /// 8 MiB of newline-free hostility, delivered in awkward chunk sizes.
    struct Storm {
        remaining: usize,
        chunk: usize,
    }
    impl Read for Storm {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let take = self.remaining.min(self.chunk).min(buf.len());
            for b in &mut buf[..take] {
                *b = b'x';
            }
            self.remaining -= take;
            // Vary the chunk size so cap boundaries land mid-chunk, on-chunk, and
            // one-past-chunk across iterations.
            self.chunk = (self.chunk % 7777) + 1;
            Ok(take)
        }
    }

    let storm_bytes = 8 * 1024 * 1024;
    let mut reader = BufReader::new(Storm { remaining: storm_bytes, chunk: 4096 });
    let mut line = String::new();
    let outcome = read_line_bounded(&mut reader, &mut line, MAX_LINE_BYTES).unwrap();
    assert_eq!(outcome, LineOutcome::TooLong, "a newline-free storm must be cut off");
    assert_eq!(line.len(), MAX_LINE_BYTES, "the reported prefix is exactly the cap");
    assert!(
        line.capacity() <= 2 * MAX_LINE_BYTES,
        "the line buffer must stay near the cap, not grow toward the {storm_bytes}-byte storm \
         (capacity = {})",
        line.capacity()
    );
    // The untouched remainder proves the reader stopped at the cap instead of draining
    // (and therefore buffering) the storm: at most the cap plus one BufReader refill was
    // ever pulled off the wire.
    let mut drained = 0usize;
    let mut sink = [0u8; 65536];
    loop {
        let got = reader.read(&mut sink).unwrap();
        if got == 0 {
            break;
        }
        drained += got;
    }
    assert!(
        drained >= storm_bytes - MAX_LINE_BYTES - 2 * 8192,
        "almost all of the storm must still be on the wire, only {drained} bytes were left"
    );
}

/// Pins the `METRICS` wire-framing invariant: the header announces
/// `text.lines().count()` lines and the body is then written raw, so the rendered text
/// must end in exactly one `\n` — a missing final newline would make the client's k-line
/// read swallow the next reply, a doubled one would desynchronize it a line early.
#[test]
fn metrics_body_matches_its_own_line_count_header() {
    use std::io::{BufRead, BufReader, Write};

    let service = service_under_test();
    // Exercise the service so the histograms have buckets (more exposition lines).
    service.answer_batch(&[Query::new(0, 5, Edge::new(0, 1))]);

    for _ in 0..3 {
        let text = service.render_metrics();
        assert!(text.ends_with('\n'), "rendered metrics must end with a newline");
        assert!(!text.ends_with("\n\n"), "rendered metrics must not end with a blank line");
        assert_eq!(
            text.lines().count(),
            text.bytes().filter(|&b| b == b'\n').count(),
            "every line is newline-terminated, so the header count equals the wire count"
        );

        // Round-trip the exact framing `examples/serve_tcp.rs` uses: write header + raw
        // body, then read the announced number of lines back and require byte equality.
        let mut wire = Vec::new();
        writeln!(wire, "{}", msrp_serve::format_metrics_header(text.lines().count())).unwrap();
        wire.write_all(text.as_bytes()).unwrap();
        // The next reply on the connection must start exactly after the body.
        writeln!(wire, "STATS_SENTINEL").unwrap();

        let mut reader = BufReader::new(&wire[..]);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let k = msrp_serve::parse_metrics_header(line.trim_end()).unwrap();
        let mut body = String::new();
        for _ in 0..k {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "body shorter than its header");
            body.push_str(&line);
        }
        assert_eq!(body, text, "k header lines must reassemble the exact rendered text");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "STATS_SENTINEL", "framing must not eat the next reply");
        assert!(is_well_formed(&body), "reassembled exposition must be well-formed");
    }
    service.shutdown();
}
