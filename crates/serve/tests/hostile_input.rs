//! Hostile-protocol-input property suite: seed-pinned fuzz of `parse_request`,
//! `validate_query`, and the service loop. The invariant under test is the headline bugfix
//! of the weighted-MSRP PR — *no input a client can send may kill a serving worker*: every
//! line either parses (and then either validates or is answered as unroutable) or is
//! rejected with an error value; nothing panics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_core::MsrpParams;
use msrp_graph::generators::{connected_gnm, weighted_connected_gnm};
use msrp_graph::Edge;
use msrp_serve::{
    parse_request, validate_query, Query, QueryService, Request, ServiceConfig, ShardedOracle,
};

const N: usize = 48;
const SOURCES: [usize; 3] = [0, 16, 32];

fn service_under_test() -> QueryService {
    let mut rng = StdRng::seed_from_u64(71);
    let g = connected_gnm(N, 120, &mut rng).unwrap();
    QueryService::start(
        ShardedOracle::build(&g, &SOURCES, &MsrpParams::default(), 2),
        &ServiceConfig { workers: 3 },
    )
}

/// A seed-pinned stream of hostile lines: random verbs, wrong arities, giant and boundary
/// numbers, non-numeric tokens, u == v edges, trailing garbage, and — deliberately often —
/// a grammatically valid `Q` line whose ids may still be wildly out of range (the shape the
/// headline bug was triggered by).
fn hostile_line(rng: &mut StdRng) -> String {
    let verb = match rng.gen_range(0..12usize) {
        0..=5 => "Q",
        6 => "B",
        7 => "STATS",
        8 => "QUIT",
        9 => "q",
        10 => "FLY",
        _ => "",
    };
    let token = |rng: &mut StdRng| -> String {
        match rng.gen_range(0..10usize) {
            0..=4 => rng.gen_range(0..2 * N).to_string(),
            5 => u64::MAX.to_string(),
            6 => "999999999".to_string(),
            7 => "-3".to_string(),
            8 => "x9".to_string(),
            _ => (N - 1).to_string(),
        }
    };
    let arity = if rng.gen_range(0..2usize) == 0 { 4 } else { rng.gen_range(0..6usize) };
    let mut line = verb.to_string();
    for _ in 0..arity {
        line.push(' ');
        line.push_str(&token(rng));
    }
    line
}

#[test]
fn fuzzed_lines_never_kill_a_worker() {
    let service = service_under_test();
    let reference = service.oracle().clone();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mut parsed_queries = 0usize;
    let mut rejected_lines = 0usize;
    let mut rejected_ids = 0usize;
    let mut batch = Vec::new();
    for _ in 0..4000 {
        let line = hostile_line(&mut rng);
        match parse_request(&line) {
            Err(_) => rejected_lines += 1,
            Ok(Request::Stats) | Ok(Request::Quit) | Ok(Request::Batch(_)) => {}
            Ok(Request::Query(q)) => {
                parsed_queries += 1;
                if validate_query(&q, N).is_err() {
                    rejected_ids += 1;
                }
                // Defense in depth: even UNvalidated queries go straight to the workers.
                batch.push(q);
            }
        }
        if batch.len() >= 64 {
            let answers = service.answer_batch(&batch);
            for (q, a) in batch.iter().zip(&answers) {
                assert_eq!(*a, reference.query(*q), "q={q:?}");
            }
            batch.clear();
        }
    }
    let answers = service.answer_batch(&batch);
    assert_eq!(answers.len(), batch.len());
    // The workload actually exercised all three rejection layers.
    assert!(rejected_lines > 100, "rejected_lines = {rejected_lines}");
    assert!(parsed_queries > 100, "parsed_queries = {parsed_queries}");
    assert!(rejected_ids > 10, "rejected_ids = {rejected_ids}");
    // Every worker is still alive and exact after the storm.
    let good = Query::new(0, N - 1, Edge::new(0, 1));
    for _ in 0..service.worker_count() * 2 {
        assert_eq!(service.answer_batch(&[good])[0], reference.query(good));
    }
    let metrics = service.shutdown();
    assert!(metrics.queries_total >= parsed_queries as u64);
}

#[test]
fn boundary_queries_answer_without_panicking() {
    let service = service_under_test();
    // Exactly-at-the-boundary and far-out ids, in one batch.
    let hostile = [
        Query::new(0, N, Edge::new(0, 1)), // first out-of-range target
        Query::new(0, N - 1, Edge::new(N - 1, N)), // first out-of-range endpoint
        Query::new(N, 0, Edge::new(0, 1)), // out-of-range source
        Query::new(0, usize::MAX, Edge::new(0, 1)),
        Query::new(0, 0, Edge::new(usize::MAX - 1, usize::MAX)),
    ];
    assert_eq!(service.answer_batch(&hostile), vec![None; hostile.len()]);
    // In-range but pointless (u == v is unrepresentable as an Edge, so the closest legal
    // hostile shape is a non-existent edge) still answers exactly.
    let absent_edge = Query::new(0, 5, Edge::new(0, N - 1));
    let direct = service.oracle().query(absent_edge);
    assert_eq!(service.answer_batch(&[absent_edge])[0], direct);
    service.shutdown();
}

#[test]
fn giant_batch_headers_parse_without_allocation() {
    // `B <k>` is length-delimited; parsing the header must not allocate k of anything
    // (the front end enforces its own MAX_BATCH before reserving). u64::MAX parses as a
    // legal usize on 64-bit targets; anything larger is rejected as malformed.
    assert_eq!(parse_request("B 18446744073709551615"), Ok(Request::Batch(usize::MAX)));
    assert!(parse_request("B 18446744073709551616").is_err());
    assert!(parse_request("B -1").is_err());
}

#[test]
fn weighted_service_survives_the_same_hostility() {
    let mut rng = StdRng::seed_from_u64(72);
    let g = weighted_connected_gnm(N, 120, 1000, &mut rng).unwrap().freeze();
    let service =
        QueryService::build_and_start_weighted(&g, &SOURCES, 2, &ServiceConfig { workers: 2 });
    let mut fuzz_rng = StdRng::seed_from_u64(0xBEEF);
    let mut batch = Vec::new();
    for _ in 0..1500 {
        if let Ok(Request::Query(q)) = parse_request(&hostile_line(&mut fuzz_rng)) {
            batch.push(q);
        }
    }
    let reference: Vec<_> = batch.iter().map(|&q| service.oracle().query(q)).collect();
    assert_eq!(service.answer_batch(&batch), reference);
    let good = Query::new(0, N - 1, Edge::new(0, 1));
    assert_eq!(service.answer_batch(&[good])[0], service.oracle().query(good));
    service.shutdown();
}
