//! Concurrency-correctness property suite (seed-pinned, see `DESIGN.md`).
//!
//! The service must be an *invisible* layer: answers routed through sharded oracles, worker
//! pools, and mpsc queues must agree bit-for-bit with the single-threaded
//! `ReplacementPathOracle` and with `single_source_brute_force` ground truth, for every pinned
//! seed and every worker/shard combination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_core::MsrpParams;
use msrp_graph::generators::connected_gnm;
use msrp_graph::{Graph, ShortestPathTree, Vertex, INFINITE_DISTANCE};
use msrp_oracle::ReplacementPathOracle;
use msrp_rpath::single_source_brute_force;
use msrp_serve::{random_queries, run_closed_loop, LoadConfig, Query, QueryService, ServiceConfig};

/// A random connected instance plus a distinct source set, pinned by `seed`.
fn random_case(seed: u64) -> (Graph, Vec<Vertex>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(16..40);
    let m = rng.gen_range(2 * n..4 * n);
    let g = connected_gnm(n, m, &mut rng).expect("valid instance parameters");
    let sigma = rng.gen_range(2..6);
    let mut sources: Vec<Vertex> = Vec::new();
    while sources.len() < sigma {
        let s = rng.gen_range(0..n);
        if !sources.contains(&s) {
            sources.push(s);
        }
    }
    (g, sources)
}

#[test]
fn service_agrees_with_oracle_and_brute_force_on_pinned_seeds() {
    for case in 0..5u64 {
        let (g, sources) = random_case(0xC0FFEE + case);
        let params = MsrpParams::default().with_seed(case);
        let single = ReplacementPathOracle::build(&g, &sources, &params);
        let brute: Vec<_> = sources
            .iter()
            .map(|&s| {
                let tree = ShortestPathTree::build(&g, s);
                let distances = single_source_brute_force(&g, &tree);
                (tree, distances)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let workload = random_queries(&g, &sources, 300, &mut rng);

        for (workers, shards) in [(1usize, 1usize), (2, 2), (4, 3)] {
            let service = QueryService::build_and_start(
                &g,
                &sources,
                &params,
                shards,
                &ServiceConfig { workers },
            );
            // Split the workload into batches so several jobs are in flight.
            let pending: Vec<_> = workload.chunks(32).map(|b| service.submit(b)).collect();
            let answers: Vec<_> = pending.into_iter().flat_map(|p| p.wait()).collect();
            assert_eq!(answers.len(), workload.len());
            for (q, &answer) in workload.iter().zip(&answers) {
                let expected = single.replacement_distance(q.source, q.target, q.avoid);
                assert_eq!(
                    answer, expected,
                    "case={case} workers={workers} shards={shards} q={q:?} \
                     disagrees with the single-threaded oracle"
                );
                let src_idx = sources.iter().position(|&s| s == q.source).unwrap();
                let (tree, distances) = &brute[src_idx];
                let truth = if tree.is_reachable(q.target) {
                    distances.distance_avoiding(tree, q.target, q.avoid)
                } else {
                    INFINITE_DISTANCE
                };
                assert_eq!(
                    answer,
                    Some(truth),
                    "case={case} workers={workers} shards={shards} q={q:?} \
                     disagrees with single_source_brute_force ground truth"
                );
            }
            service.shutdown();
        }
    }
}

#[test]
fn answers_and_checksums_are_invariant_across_worker_and_shard_counts() {
    let (g, sources) = random_case(0xDEADBEEF);
    let params = MsrpParams::default();
    let load = LoadConfig { clients: 3, batches_per_client: 6, batch_size: 16, seed: 99 };
    let mut checksums = Vec::new();
    for (workers, shards) in [(1usize, 1usize), (1, 3), (3, 1), (4, 2)] {
        let service = QueryService::build_and_start(
            &g,
            &sources,
            &params,
            shards,
            &ServiceConfig { workers },
        );
        let report = run_closed_loop(&service, &g, &load);
        checksums.push(report.checksum);
        let metrics = service.shutdown();
        assert_eq!(metrics.queries_total, report.total_queries);
        assert_eq!(metrics.shard_queries.iter().sum::<u64>(), report.total_queries);
        assert_eq!(metrics.unroutable_total, 0);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "checksums {checksums:?} must not depend on worker or shard count"
    );
}

#[test]
fn non_source_queries_are_unroutable_everywhere() {
    let (g, sources) = random_case(0xBADCAFE);
    let non_source = (0..g.vertex_count()).find(|v| !sources.contains(v)).unwrap();
    let service = QueryService::build_and_start(
        &g,
        &sources,
        &MsrpParams::default(),
        2,
        &ServiceConfig { workers: 2 },
    );
    let e = g.edge_vec()[0];
    let answers = service.answer_batch(&[Query::new(non_source, 0, e)]);
    assert_eq!(answers, vec![None]);
    let metrics = service.shutdown();
    assert_eq!(metrics.unroutable_total, 1);
}
