//! Seed-pinned property tests of the histogram snapshot algebra the metrics plane is built
//! on: quantiles must be monotone in `q`, and snapshot merging must behave exactly like
//! recording every sample into a single histogram — associative, commutative, with the
//! empty snapshot as identity — so per-worker or per-shard histograms can be folded in any
//! order without changing a single reported number.

use std::time::Duration;

use msrp_serve::{HistogramSnapshot, LatencyHistogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one latency whose magnitude is exponent-distributed, so samples land across the
/// whole log-bucket range instead of clustering in two or three buckets.
fn draw_ns(rng: &mut StdRng) -> u64 {
    let exponent = rng.gen_range(0..40u32);
    rng.gen_range(0..(1u64 << exponent).max(2))
}

fn random_snapshot(rng: &mut StdRng, samples: usize) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for _ in 0..samples {
        h.record(Duration::from_nanos(draw_ns(rng)));
    }
    h.snapshot()
}

#[test]
fn quantiles_are_monotone_on_every_seed() {
    for seed in [1u64, 7, 42, 99, 123] {
        let mut rng = StdRng::seed_from_u64(seed);
        let snap = random_snapshot(&mut rng, 500);
        // A dense grid first…
        let mut prev = Duration::ZERO;
        for i in 1..=1000 {
            let q = i as f64 / 1000.0;
            let v = snap.quantile(q);
            assert!(v >= prev, "seed {seed}: quantile({q}) = {v:?} < quantile before = {prev:?}");
            prev = v;
        }
        // …then random pairs, ordered after the draw.
        for _ in 0..200 {
            let a = rng.gen_range(1..=1000u32);
            let b = rng.gen_range(1..=1000u32);
            let (lo, hi) = (a.min(b), a.max(b));
            assert!(
                snap.quantile(lo as f64 / 1000.0) <= snap.quantile(hi as f64 / 1000.0),
                "seed {seed}: quantile({lo}/1000) > quantile({hi}/1000)"
            );
        }
        // The exact max never exceeds the top quantile's bucket upper bound.
        assert!(snap.max() <= snap.quantile(1.0), "seed {seed}");
        assert!(snap.p50() <= snap.p99(), "seed {seed}");
    }
}

#[test]
fn snapshot_merge_is_associative_commutative_with_identity() {
    for seed in [3u64, 17, 2024] {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_snapshot(&mut rng, 200);
        let b = random_snapshot(&mut rng, 150);
        let c = random_snapshot(&mut rng, 75);
        assert_eq!(a.merge(&b), b.merge(&a), "seed {seed}: merge must commute");
        assert_eq!(
            a.merge(&b).merge(&c),
            a.merge(&b.merge(&c)),
            "seed {seed}: merge must associate"
        );
        let empty = LatencyHistogram::new().snapshot();
        assert_eq!(a.merge(&empty), a, "seed {seed}: empty is the identity");
        assert_eq!(empty.merge(&a), a, "seed {seed}: on either side");
        // Totals add exactly; the max is the max of maxes; quantiles stay monotone.
        let m = a.merge(&b).merge(&c);
        assert_eq!(m.count, a.count + b.count + c.count);
        assert_eq!(m.sum_ns, a.sum_ns + b.sum_ns + c.sum_ns);
        assert_eq!(m.max_ns, a.max_ns.max(b.max_ns).max(c.max_ns));
        assert!(m.p50() <= m.p99());
    }
}

#[test]
fn merging_worker_histograms_equals_recording_into_one() {
    // The deployment shape: each worker records into its own histogram, a reporter folds
    // the snapshots. The fold must be indistinguishable from one shared histogram.
    for seed in [5u64, 55, 555] {
        let mut rng = StdRng::seed_from_u64(seed);
        let workers: Vec<LatencyHistogram> = (0..4).map(|_| LatencyHistogram::new()).collect();
        let shared = LatencyHistogram::new();
        for _ in 0..400 {
            let ns = draw_ns(&mut rng);
            let worker = rng.gen_range(0..workers.len());
            workers[worker].record(Duration::from_nanos(ns));
            shared.record(Duration::from_nanos(ns));
        }
        let folded = workers
            .iter()
            .map(|h| h.snapshot())
            .reduce(|acc, s| acc.merge(&s))
            .expect("non-empty worker set");
        assert_eq!(folded, shared.snapshot(), "seed {seed}");
    }
}
