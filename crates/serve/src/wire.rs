//! Bounded line reading for the TCP front end.
//!
//! `BufRead::read_line` grows its `String` until a `\n` arrives — which hands any client
//! that simply never sends a newline a remote memory-exhaustion primitive: a hostile
//! socket streaming megabytes of newline-free bytes makes the per-connection line buffer
//! grow without bound until the allocator gives out. [`read_line_bounded`] is the
//! drop-in replacement every wire loop must use instead: it accumulates at most
//! `max_bytes` bytes of line, reports [`LineOutcome::TooLong`] the moment a line
//! exceeds the cap, and leaves the connection in a well-defined (albeit mid-line) state
//! so the caller can answer `ERR line too long` and hang up.
//!
//! No legitimate client is near the cap: the longest legal protocol line is a `B`/`BW`
//! batch header plus digits, tens of bytes. [`MAX_LINE_BYTES`] (64 KiB) is three orders
//! of magnitude of headroom, not a tuning knob.

use std::io::{self, BufRead};

/// Upper bound on one protocol line, in bytes (newline included). Generous for every
/// legal verb, small enough that a hostile connection can pin at most this much.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// What [`read_line_bounded`] found on the wire.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LineOutcome {
    /// A complete line (or the final unterminated line before EOF) is in the buffer,
    /// newline stripped.
    Line,
    /// The stream ended with no pending bytes.
    Eof,
    /// The line exceeded the byte cap before any `\n` arrived. The buffer holds the
    /// (truncated) prefix; the rest of the line is still on the wire, so the only sane
    /// continuation is to report the error and close the connection.
    TooLong,
}

/// Reads one `\n`-terminated line into `line` (cleared first, newline and any `\r`
/// stripped), accumulating at most `max_bytes` bytes.
///
/// Mirrors `read_line`'s contract otherwise: EOF with a non-empty partial line yields
/// [`LineOutcome::Line`], EOF with nothing pending yields [`LineOutcome::Eof`]. Hostile
/// non-UTF-8 bytes are replaced lossily rather than surfaced as an I/O error — a binary
/// blob then draws an ordinary `ERR` from the parser instead of killing the worker.
///
/// On [`LineOutcome::TooLong`] the offending bytes up to the cap have been consumed from
/// `reader` and everything past them is left unread; callers are expected to close the
/// connection, not resynchronize.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    max_bytes: usize,
) -> io::Result<LineOutcome> {
    enum Step {
        Complete,
        TooLong,
        More,
    }

    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consumed, step) = {
            let available = match reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF: hand back whatever is pending, mirroring read_line.
                if buf.is_empty() {
                    return Ok(LineOutcome::Eof);
                }
                (0, Step::Complete)
            } else {
                match available.iter().position(|&b| b == b'\n') {
                    // A newline is in sight, but the line it terminates is over the cap.
                    Some(pos) if buf.len() + pos > max_bytes => {
                        let take = max_bytes - buf.len();
                        buf.extend_from_slice(&available[..take]);
                        (take, Step::TooLong)
                    }
                    Some(pos) => {
                        buf.extend_from_slice(&available[..pos]);
                        (pos + 1, Step::Complete) // consume the newline too
                    }
                    // No newline yet and the cap is already blown: take exactly up to
                    // the cap (so `line` shows the prefix) and stop reading — the rest
                    // of the oversized line stays on the wire.
                    None if buf.len() + available.len() > max_bytes => {
                        let take = max_bytes - buf.len();
                        buf.extend_from_slice(&available[..take]);
                        (take, Step::TooLong)
                    }
                    None => {
                        let take = available.len();
                        buf.extend_from_slice(available);
                        (take, Step::More)
                    }
                }
            }
        };
        reader.consume(consumed);
        match step {
            Step::More => {}
            Step::Complete => {
                finish_line(line, &buf);
                return Ok(LineOutcome::Line);
            }
            Step::TooLong => {
                finish_line(line, &buf);
                return Ok(LineOutcome::TooLong);
            }
        }
    }
}

fn finish_line(line: &mut String, buf: &[u8]) {
    let text = String::from_utf8_lossy(buf);
    let text = text.strip_suffix('\r').unwrap_or(&text);
    line.push_str(text);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    /// A reader that never ends: an unbounded stream of `b'x'`. If the bounded reader
    /// ever tried to "read until newline or EOF" it would spin (and allocate) forever —
    /// terminating against this stream IS the memory-exhaustion regression test.
    struct NewlineFreeStorm;

    impl Read for NewlineFreeStorm {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            for b in buf.iter_mut() {
                *b = b'x';
            }
            Ok(buf.len())
        }
    }

    #[test]
    fn plain_lines_round_trip() {
        let mut reader = BufReader::new(&b"Q 0 1 2 3\nSTATS\r\n\nlast"[..]);
        let mut line = String::new();
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), LineOutcome::Line);
        assert_eq!(line, "Q 0 1 2 3");
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), LineOutcome::Line);
        assert_eq!(line, "STATS");
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), LineOutcome::Line);
        assert_eq!(line, "");
        // Final unterminated line before EOF still comes through, like read_line.
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), LineOutcome::Line);
        assert_eq!(line, "last");
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), LineOutcome::Eof);
    }

    #[test]
    fn exactly_at_the_cap_is_fine_one_past_is_not() {
        let at_cap = vec![b'a'; 16];
        let mut input = at_cap.clone();
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        let mut line = String::new();
        assert_eq!(read_line_bounded(&mut reader, &mut line, 16).unwrap(), LineOutcome::Line);
        assert_eq!(line.len(), 16);

        let mut input = vec![b'a'; 17];
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        assert_eq!(read_line_bounded(&mut reader, &mut line, 16).unwrap(), LineOutcome::TooLong);
    }

    #[test]
    fn infinite_newline_free_stream_terminates_within_the_cap() {
        let mut reader = BufReader::new(NewlineFreeStorm);
        let mut line = String::new();
        let outcome = read_line_bounded(&mut reader, &mut line, MAX_LINE_BYTES).unwrap();
        assert_eq!(outcome, LineOutcome::TooLong);
        // The accumulated prefix is capped: this is the bound that the unbounded
        // read_line lacked.
        assert!(line.len() <= MAX_LINE_BYTES);
    }

    #[test]
    fn hostile_binary_is_lossily_decoded_not_an_error() {
        let mut reader = BufReader::new(&b"\xff\xfe\x00garbage\n"[..]);
        let mut line = String::new();
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), LineOutcome::Line);
        assert!(line.contains("garbage"));
    }

    #[test]
    fn crlf_is_stripped() {
        let mut reader = BufReader::new(&b"STATS\r\n"[..]);
        let mut line = String::new();
        assert_eq!(read_line_bounded(&mut reader, &mut line, 64).unwrap(), LineOutcome::Line);
        assert_eq!(line, "STATS");
    }
}
