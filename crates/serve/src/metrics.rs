//! Service observability: log-bucketed latency histograms and throughput counters.
//!
//! Latencies are recorded into power-of-two buckets (`bucket i` holds samples with
//! `2^(i-1) ns < latency ≤ 2^i ns`), so a histogram is 64 atomic counters regardless of how
//! many samples it absorbs, and quantiles are read off the cumulative bucket counts with at
//! most 2× relative error — the standard trade-off for serving-side p50/p99 tracking. All
//! counters are atomics: recording is lock-free and safe from any worker or client thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log buckets; `2^63 ns` is centuries, so 64 buckets cover every `Duration`.
const BUCKET_COUNT: usize = 64;

/// A lock-free latency histogram with logarithmic buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding a sample of `ns` nanoseconds: `ceil(log2(ns))`, with 0 ns
    /// mapping to bucket 0.
    fn bucket_index(ns: u64) -> usize {
        (64 - ns.leading_zeros() as usize)
            .saturating_sub(usize::from(ns.is_power_of_two()))
            .min(BUCKET_COUNT - 1)
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting (individual counters are read
    /// atomically; the histogram keeps absorbing samples while a snapshot is taken).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], with quantile accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`buckets[i]` holds samples in `(2^(i-1), 2^i]` ns).
    pub buckets: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample in nanoseconds (exact, not bucketed).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile sample (`0 < q ≤ 1`), or zero
    /// when the histogram is empty. Bucketing makes this an over-estimate by at most 2×.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(if i >= 63 { u64::MAX } else { 1u64 << i });
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (bucket upper bound).
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Largest recorded latency (exact).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.checked_div(self.count).unwrap_or(0))
    }

    /// One-line human-readable summary (`n=… p50=… p99=… max=…`).
    pub fn summary(&self) -> String {
        format!(
            "n={} p50={:.1?} p99={:.1?} max={:.1?}",
            self.count,
            self.p50(),
            self.p99(),
            self.max()
        )
    }
}

/// Shared counters of a running [`QueryService`](crate::QueryService).
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Latency of whole batches, recorded by the worker that executed the batch.
    pub batch_latency: LatencyHistogram,
    queries_total: AtomicU64,
    unroutable_total: AtomicU64,
    shard_queries: Vec<AtomicU64>,
    worker_batches: Vec<AtomicU64>,
}

impl ServiceMetrics {
    /// Creates zeroed metrics for a service with the given shard and worker counts.
    pub fn new(shards: usize, workers: usize) -> Self {
        ServiceMetrics {
            batch_latency: LatencyHistogram::new(),
            queries_total: AtomicU64::new(0),
            unroutable_total: AtomicU64::new(0),
            shard_queries: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            worker_batches: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Flushes one batch's worth of routing counts: `shard_counts[i]` queries were routed to
    /// shard `i`, plus `unroutable` queries whose source no shard serves.
    ///
    /// Workers tally locally and flush once per batch — per-query atomic increments from
    /// every worker would contend on the shared cache lines and serialize the pool (measured
    /// in the `service_throughput` bench).
    pub fn record_batch_queries(&self, shard_counts: &[u64], unroutable: u64) {
        let mut total = unroutable;
        for (counter, &count) in self.shard_queries.iter().zip(shard_counts) {
            if count > 0 {
                counter.fetch_add(count, Ordering::Relaxed);
            }
            total += count;
        }
        self.queries_total.fetch_add(total, Ordering::Relaxed);
        if unroutable > 0 {
            self.unroutable_total.fetch_add(unroutable, Ordering::Relaxed);
        }
    }

    /// Records one completed batch for `worker`.
    pub fn record_batch(&self, worker: usize, latency: Duration) {
        self.worker_batches[worker].fetch_add(1, Ordering::Relaxed);
        self.batch_latency.record(latency);
    }

    /// Takes a reporting snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            batch_latency: self.batch_latency.snapshot(),
            queries_total: self.queries_total.load(Ordering::Relaxed),
            unroutable_total: self.unroutable_total.load(Ordering::Relaxed),
            shard_queries: self.shard_queries.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            worker_batches: self.worker_batches.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A point-in-time copy of [`ServiceMetrics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Batch latency histogram.
    pub batch_latency: HistogramSnapshot,
    /// Total queries answered (including unroutable ones).
    pub queries_total: u64,
    /// Queries whose source belonged to no shard.
    pub unroutable_total: u64,
    /// Queries routed to each shard.
    pub shard_queries: Vec<u64>,
    /// Batches executed by each worker.
    pub worker_batches: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(5), 3);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_index(1025), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn quantiles_come_from_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket 7, upper bound 128
        }
        h.record(Duration::from_nanos(1 << 20)); // bucket 20
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50(), Duration::from_nanos(128));
        assert_eq!(snap.p99(), Duration::from_nanos(128));
        assert_eq!(snap.quantile(1.0), Duration::from_nanos(1 << 20));
        assert_eq!(snap.max(), Duration::from_nanos(1 << 20));
        assert!(snap.mean() >= Duration::from_nanos(100));
        assert!(snap.summary().contains("n=100"));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), Duration::ZERO);
        assert_eq!(snap.mean(), Duration::ZERO);
    }

    #[test]
    fn service_metrics_count_per_shard_and_worker() {
        let m = ServiceMetrics::new(2, 3);
        m.record_batch_queries(&[1, 2], 1);
        m.record_batch(2, Duration::from_micros(5));
        let snap = m.snapshot();
        assert_eq!(snap.queries_total, 4);
        assert_eq!(snap.unroutable_total, 1);
        assert_eq!(snap.shard_queries, vec![1, 2]);
        assert_eq!(snap.worker_batches, vec![0, 0, 1]);
        assert_eq!(snap.batch_latency.count, 1);
    }
}
