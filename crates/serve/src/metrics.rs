//! Service observability: log-bucketed latency histograms and throughput counters.
//!
//! Latencies are recorded into power-of-two buckets (`bucket i` holds samples with
//! `2^(i-1) ns < latency ≤ 2^i ns`; bucket 0 also absorbs 0 ns samples), so a histogram is
//! 64 atomic counters regardless of how
//! many samples it absorbs, and quantiles are read off the cumulative bucket counts with at
//! most 2× relative error — the standard trade-off for serving-side p50/p99 tracking. All
//! counters are atomics: recording is lock-free and safe from any worker or client thread.
//!
//! Atomics go through [`msrp_check::sync`] (plain `std` re-exports in normal builds),
//! so `crates/check/tests/model_metrics.rs` can run `record`/`snapshot` under the
//! bounded model checker and pin the snapshot-tearing contract documented on
//! [`HistogramSnapshot::quantile`].

use msrp_check::sync::{AtomicU64, Ordering};
use std::time::Duration;

use msrp_oracle::RebuildStats;

/// Number of log buckets; `2^63 ns` is centuries, so 64 buckets cover every `Duration`.
const BUCKET_COUNT: usize = 64;

/// A lock-free latency histogram with logarithmic buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    /// Low word of the 128-bit nanosecond sum. A single `u64` of nanoseconds wraps after
    /// ~21 months of accumulated latency — reachable at sustained load — and a wrapped sum
    /// silently corrupts the mean, so the accumulator is widened instead: `sum_lo` wraps
    /// freely and `sum_hi` counts the wraps.
    sum_lo: AtomicU64,
    /// High word of the nanosecond sum: incremented once per `sum_lo` wrap. `fetch_add` is
    /// linearizable, so exactly one recorder observes each 2^64 crossing (its pre-add value
    /// plus its addend overflows) and carries.
    sum_hi: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_lo: AtomicU64::new(0),
            sum_hi: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding a sample of `ns` nanoseconds: `ceil(log2(ns))`, with 0 ns
    /// mapping to bucket 0.
    fn bucket_index(ns: u64) -> usize {
        (64 - ns.leading_zeros() as usize)
            .saturating_sub(usize::from(ns.is_power_of_two()))
            .min(BUCKET_COUNT - 1)
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        // ordering: Relaxed — histogram counters are deliberately unsynchronized with
        // each other; snapshots are statistical, and `quantile` is written to tolerate
        // counters that run ahead of the buckets (see `HistogramSnapshot::quantile` and
        // crates/check/tests/model_metrics.rs). Each counter only needs atomicity.
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same statistical-counter contract as the bucket add above.
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping fetch_add plus carry detection: the recorder whose addend crossed the
        // 2^64 boundary (pre-add value + addend overflows) bumps the high word, and
        // linearizability of fetch_add guarantees every crossing has exactly one such
        // recorder — the sum stays exact for centuries of accumulated latency.
        // ordering: Relaxed — the carry protocol needs only RMW atomicity (exactly one
        // recorder observes each wrap), not any cross-location ordering.
        let prev = self.sum_lo.fetch_add(ns, Ordering::Relaxed);
        if prev.checked_add(ns).is_none() {
            // ordering: Relaxed — carry increment; monotonic, readers tolerate lag.
            self.sum_hi.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: Relaxed — running max; fetch_max atomicity alone keeps it exact.
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting (individual counters are read
    /// atomically; the histogram keeps absorbing samples while a snapshot is taken).
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ordering: Relaxed (all loads below) — a reporting snapshot is allowed to tear
        // across counters; every consumer (quantile, mean, merge) is written against
        // that weaker contract, and the model test pins it.
        let hi = self.sum_hi.load(Ordering::Relaxed);
        let lo = self.sum_lo.load(Ordering::Relaxed); // ordering: Relaxed — see above
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(), // ordering: Relaxed — see above
            count: self.count.load(Ordering::Relaxed), // ordering: Relaxed — see above
            sum_ns: (u128::from(hi) << 64) | u128::from(lo),
            max_ns: self.max_ns.load(Ordering::Relaxed), // ordering: Relaxed — see above
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], with quantile accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`buckets[i]` holds samples in `(2^(i-1), 2^i]` ns; bucket 0
    /// additionally absorbs 0 ns, so the quantile over-estimate bound of "at most the bucket
    /// upper bound, within 2×" holds for every recordable sample).
    pub buckets: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds. 128-bit: the histogram's accumulator carries
    /// across `u64` wraps, so the sum (and hence the mean) stays exact at any load.
    pub sum_ns: u128,
    /// Largest sample in nanoseconds (exact, not bucketed).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile sample (`0 < q ≤ 1`), or zero
    /// when the histogram is empty. Bucketing makes this an over-estimate by at most 2×.
    ///
    /// The rank is derived from the *bucket sum*, not the snapshot's `count` field: the two
    /// are loaded by separate atomic reads while workers keep recording, so `count` can run
    /// ahead of the buckets. A rank computed from the larger `count` may exceed every
    /// cumulative bucket total, silently turning p50 into `max_ns` under load; within the
    /// buckets alone the snapshot is always self-consistent.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = (q * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(if i >= 63 { u64::MAX } else { 1u64 << i });
            }
        }
        unreachable!("rank {rank} ≤ bucket sum {total} is always reached in the scan")
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (bucket upper bound).
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Largest recorded latency (exact).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Mean latency (exact: the 128-bit sum never wraps).
    pub fn mean(&self) -> Duration {
        let mean_ns = self.sum_ns.checked_div(u128::from(self.count)).unwrap_or(0);
        Duration::from_nanos(mean_ns.min(u128::from(u64::MAX)) as u64)
    }

    /// Combines two snapshots into one as if every sample had been recorded into a single
    /// histogram: bucket-wise sums, summed counts and sums, max of maxes. Associative and
    /// commutative (pinned by `tests/metrics_properties.rs`), so shard- or worker-local
    /// histograms can be folded in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(other.buckets.len());
        let bucket = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..len)
                .map(|i| bucket(&self.buckets, i) + bucket(&other.buckets, i))
                .collect(),
            count: self.count + other.count,
            sum_ns: self.sum_ns + other.sum_ns,
            max_ns: self.max_ns.max(other.max_ns),
        }
    }

    /// One-line human-readable summary (`n=… p50=… p99=… max=…`).
    pub fn summary(&self) -> String {
        format!(
            "n={} p50={:.1?} p99={:.1?} max={:.1?}",
            self.count,
            self.p50(),
            self.p99(),
            self.max()
        )
    }
}

/// Shared counters of a running [`QueryService`](crate::QueryService).
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Latency of whole batches, recorded by the worker that executed the batch.
    pub batch_latency: LatencyHistogram,
    /// Staleness window of each epoch swap: churn-event arrival → new epoch published.
    /// Queries answered inside this window legitimately see the pre-event graph.
    pub staleness_window: LatencyHistogram,
    /// Oracle reconstruction time of each epoch swap (the rebuild alone, excluding the
    /// publish itself).
    pub rebuild_latency: LatencyHistogram,
    /// Currently served epoch id (0 until the first swap).
    epoch: AtomicU64,
    queries_total: AtomicU64,
    unroutable_total: AtomicU64,
    shard_queries: Vec<AtomicU64>,
    worker_batches: Vec<AtomicU64>,
    sources_total: AtomicU64,
    sources_reused_total: AtomicU64,
    sources_patched_total: AtomicU64,
    sources_rebuilt_total: AtomicU64,
    cuts_recomputed_total: AtomicU64,
    cuts_total: AtomicU64,
    reuse_time_ns: AtomicU64,
    patch_time_ns: AtomicU64,
    rebuild_time_ns: AtomicU64,
}

impl ServiceMetrics {
    /// Creates zeroed metrics for a service with the given shard and worker counts.
    pub fn new(shards: usize, workers: usize) -> Self {
        ServiceMetrics {
            batch_latency: LatencyHistogram::new(),
            staleness_window: LatencyHistogram::new(),
            rebuild_latency: LatencyHistogram::new(),
            epoch: AtomicU64::new(0),
            queries_total: AtomicU64::new(0),
            unroutable_total: AtomicU64::new(0),
            shard_queries: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            worker_batches: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            sources_total: AtomicU64::new(0),
            sources_reused_total: AtomicU64::new(0),
            sources_patched_total: AtomicU64::new(0),
            sources_rebuilt_total: AtomicU64::new(0),
            cuts_recomputed_total: AtomicU64::new(0),
            cuts_total: AtomicU64::new(0),
            reuse_time_ns: AtomicU64::new(0),
            patch_time_ns: AtomicU64::new(0),
            rebuild_time_ns: AtomicU64::new(0),
        }
    }

    /// Records one epoch swap: the new epoch id, the staleness window (event arrival →
    /// publish), the rebuild latency, and the incremental-rebuild work accounting.
    pub fn record_epoch_swap(
        &self,
        epoch: u64,
        staleness: Duration,
        rebuild: Duration,
        stats: &RebuildStats,
    ) {
        // ordering: Relaxed — published epoch id is advisory for dashboards; the
        // authoritative epoch travels through `EpochOracle`'s lock. fetch_max keeps it
        // monotonic under out-of-order swap recording.
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
        self.staleness_window.record(staleness);
        self.rebuild_latency.record(rebuild);
        // ordering: Relaxed — independent statistical accumulators; atomicity per
        // counter is all a reporting snapshot relies on.
        let add = |counter: &AtomicU64, v: u64| counter.fetch_add(v, Ordering::Relaxed);
        add(&self.sources_total, stats.sources_total as u64);
        add(&self.sources_reused_total, stats.sources_reused as u64);
        add(&self.sources_patched_total, stats.sources_patched as u64);
        add(&self.sources_rebuilt_total, stats.sources_rebuilt as u64);
        add(&self.cuts_recomputed_total, stats.cuts_recomputed as u64);
        add(&self.cuts_total, stats.cuts_total as u64);
        let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        add(&self.reuse_time_ns, ns(stats.reuse_time));
        add(&self.patch_time_ns, ns(stats.patch_time));
        add(&self.rebuild_time_ns, ns(stats.rebuild_time));
    }

    /// Flushes one batch's worth of routing counts: `shard_counts[i]` queries were routed to
    /// shard `i`, plus `unroutable` queries whose source no shard serves.
    ///
    /// Workers tally locally and flush once per batch — per-query atomic increments from
    /// every worker would contend on the shared cache lines and serialize the pool (measured
    /// in the `service_throughput` bench).
    pub fn record_batch_queries(&self, shard_counts: &[u64], unroutable: u64) {
        let mut total = unroutable;
        for (counter, &count) in self.shard_queries.iter().zip(shard_counts) {
            if count > 0 {
                // ordering: Relaxed — per-shard tallies; statistical-counter contract.
                counter.fetch_add(count, Ordering::Relaxed);
            }
            total += count;
        }
        // ordering: Relaxed — totals may momentarily disagree with the per-shard split
        // in a snapshot; consumers treat the counters as independent.
        self.queries_total.fetch_add(total, Ordering::Relaxed);
        if unroutable > 0 {
            // ordering: Relaxed — same statistical-counter contract.
            self.unroutable_total.fetch_add(unroutable, Ordering::Relaxed);
        }
    }

    /// Records one completed batch for `worker`.
    pub fn record_batch(&self, worker: usize, latency: Duration) {
        // ordering: Relaxed — per-worker batch tally; statistical-counter contract.
        self.worker_batches[worker].fetch_add(1, Ordering::Relaxed);
        self.batch_latency.record(latency);
    }

    /// Takes a reporting snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // ordering: Relaxed — reporting loads of independent statistical counters; the
        // snapshot is allowed to tear across them (see `LatencyHistogram::snapshot`).
        let ld = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        MetricsSnapshot {
            batch_latency: self.batch_latency.snapshot(),
            staleness_window: self.staleness_window.snapshot(),
            rebuild_latency: self.rebuild_latency.snapshot(),
            epoch: ld(&self.epoch),
            queries_total: ld(&self.queries_total),
            unroutable_total: ld(&self.unroutable_total),
            shard_queries: self.shard_queries.iter().map(&ld).collect(),
            worker_batches: self.worker_batches.iter().map(&ld).collect(),
            rebuild: RebuildStats {
                sources_total: ld(&self.sources_total) as usize,
                sources_reused: ld(&self.sources_reused_total) as usize,
                sources_patched: ld(&self.sources_patched_total) as usize,
                sources_rebuilt: ld(&self.sources_rebuilt_total) as usize,
                cuts_total: ld(&self.cuts_total) as usize,
                cuts_recomputed: ld(&self.cuts_recomputed_total) as usize,
                reuse_time: Duration::from_nanos(ld(&self.reuse_time_ns)),
                patch_time: Duration::from_nanos(ld(&self.patch_time_ns)),
                rebuild_time: Duration::from_nanos(ld(&self.rebuild_time_ns)),
            },
        }
    }
}

/// A point-in-time copy of [`ServiceMetrics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Batch latency histogram.
    pub batch_latency: HistogramSnapshot,
    /// Staleness-window histogram of epoch swaps (empty until the first swap).
    pub staleness_window: HistogramSnapshot,
    /// Rebuild-latency histogram of epoch swaps (empty until the first swap).
    pub rebuild_latency: HistogramSnapshot,
    /// Currently served epoch id (0 until the first swap).
    pub epoch: u64,
    /// Total queries answered (including unroutable ones).
    pub queries_total: u64,
    /// Queries whose source belonged to no shard.
    pub unroutable_total: u64,
    /// Queries routed to each shard.
    pub shard_queries: Vec<u64>,
    /// Batches executed by each worker.
    pub worker_batches: Vec<u64>,
    /// Incremental-rebuild work accounting, merged over every recorded swap (so
    /// `sources_total`/`cuts_total` are the work a from-scratch rebuild per event would
    /// have done, and the reuse/patch/rebuild split is the measured saving).
    pub rebuild: RebuildStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(5), 3);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_index(1025), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn quantiles_come_from_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket 7, upper bound 128
        }
        h.record(Duration::from_nanos(1 << 20)); // bucket 20
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50(), Duration::from_nanos(128));
        assert_eq!(snap.p99(), Duration::from_nanos(128));
        assert_eq!(snap.quantile(1.0), Duration::from_nanos(1 << 20));
        assert_eq!(snap.max(), Duration::from_nanos(1 << 20));
        assert!(snap.mean() >= Duration::from_nanos(100));
        assert!(snap.summary().contains("n=100"));
    }

    #[test]
    fn quantile_survives_count_running_ahead_of_buckets() {
        // Regression: `snapshot()` loads `count` after the buckets, so a racing `record`
        // can leave `count` larger than the bucket sum. A rank derived from `count` was
        // then never reached and p50 silently fell through to `max_ns`. The rank must come
        // from the buckets themselves.
        let racy = HistogramSnapshot {
            buckets: {
                let mut b = vec![0u64; 64];
                b[7] = 10; // ten samples ≤ 128 ns actually visible in the buckets
                b
            },
            count: 25, // 15 records landed between the two loads
            sum_ns: 10 * 100,
            max_ns: 1 << 30, // and one of them was huge
        };
        assert_eq!(racy.p50(), Duration::from_nanos(128));
        assert_eq!(racy.p99(), Duration::from_nanos(128));
        assert_eq!(racy.quantile(1.0), Duration::from_nanos(128));
    }

    #[test]
    fn epoch_swaps_are_recorded_and_merged() {
        let m = ServiceMetrics::new(1, 1);
        assert_eq!(m.snapshot().epoch, 0);
        let stats = RebuildStats {
            sources_total: 4,
            sources_reused: 1,
            sources_patched: 2,
            sources_rebuilt: 1,
            cuts_total: 40,
            cuts_recomputed: 9,
            reuse_time: Duration::from_nanos(300),
            patch_time: Duration::from_micros(4),
            rebuild_time: Duration::from_micros(20),
        };
        m.record_epoch_swap(1, Duration::from_micros(80), Duration::from_micros(50), &stats);
        m.record_epoch_swap(2, Duration::from_micros(120), Duration::from_micros(60), &stats);
        let snap = m.snapshot();
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.staleness_window.count, 2);
        assert_eq!(snap.rebuild_latency.count, 2);
        let mut expected = stats;
        expected.merge(&stats);
        assert_eq!(snap.rebuild, expected);
        assert!(snap.rebuild.strictly_less_than_full());
    }

    #[test]
    fn sum_survives_the_u64_wrap_boundary() {
        // Regression: the old accumulator was a single wrapping u64 of nanoseconds, so two
        // maximal samples wrapped it to u64::MAX - 1 and the mean silently collapsed. The
        // widened accumulator must carry across the boundary and keep the mean exact.
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(u64::MAX));
        h.record(Duration::from_nanos(u64::MAX));
        h.record(Duration::from_nanos(2));
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        let true_sum = 2 * u128::from(u64::MAX) + 2;
        assert_eq!(snap.sum_ns, true_sum, "sum must not wrap");
        assert!(snap.sum_ns > u128::from(u64::MAX), "the boundary was actually crossed");
        assert_eq!(snap.mean(), Duration::from_nanos((true_sum / 3) as u64));
    }

    #[test]
    fn merge_combines_like_a_single_histogram() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for (h, ns) in [(&a, 100u64), (&a, 5000), (&b, 70), (&b, 1 << 30)] {
            h.record(Duration::from_nanos(ns));
            both.record(Duration::from_nanos(ns));
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        // Merging with an empty snapshot is the identity.
        assert_eq!(merged.merge(&LatencyHistogram::new().snapshot()), merged);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), Duration::ZERO);
        assert_eq!(snap.mean(), Duration::ZERO);
    }

    #[test]
    fn service_metrics_count_per_shard_and_worker() {
        let m = ServiceMetrics::new(2, 3);
        m.record_batch_queries(&[1, 2], 1);
        m.record_batch(2, Duration::from_micros(5));
        let snap = m.snapshot();
        assert_eq!(snap.queries_total, 4);
        assert_eq!(snap.unroutable_total, 1);
        assert_eq!(snap.shard_queries, vec![1, 2]);
        assert_eq!(snap.worker_batches, vec![0, 0, 1]);
        assert_eq!(snap.batch_latency.count, 1);
    }
}
