//! A deterministic, seed-pinned, closed-loop load generator for [`QueryService`].
//!
//! *Closed loop* means every client thread keeps exactly one batch outstanding: it submits a
//! batch, blocks for the answers, records the client-observed latency, and only then builds
//! the next batch. Offered load therefore adapts to service capacity instead of overrunning
//! the queue, and the measured throughput is the service's sustainable rate at the configured
//! concurrency.
//!
//! Determinism: client `i` draws its workload from `StdRng::seed_from_u64(mix(seed, i))`, so
//! the multiset of issued queries — and, because answers come from immutable state, the
//! per-client answer checksums — depend only on `(graph, sources, config)`, never on thread
//! scheduling or worker count. The property suite relies on this to compare runs.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_graph::{Distance, Graph, Vertex};

use crate::metrics::{HistogramSnapshot, LatencyHistogram};
use crate::service::{Query, QueryService, RouteOracle};

/// Configuration of a load-generation run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Number of concurrent client threads (clamped to at least 1).
    pub clients: usize,
    /// Batches each client issues.
    pub batches_per_client: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Workload seed; client `i` uses a sub-seed derived from it.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig { clients: 2, batches_per_client: 20, batch_size: 16, seed: 1 }
    }
}

/// Results of a load-generation run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Total queries issued across all clients.
    pub total_queries: u64,
    /// Wall-clock duration of the whole run.
    pub wall_secs: f64,
    /// Client-observed batch latency (submit → answers).
    pub latency: HistogramSnapshot,
    /// Order-independent digest of every answer, for determinism assertions: the wrapping sum
    /// of per-client checksums, each a wrapping sum of encoded answers.
    pub checksum: u64,
}

impl LoadReport {
    /// Sustained throughput in queries per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_secs == 0.0 {
            0.0
        } else {
            self.total_queries as f64 / self.wall_secs
        }
    }
}

/// Draws `count` random queries over `g`: a uniform source from `sources`, a uniform target,
/// and a uniform edge of the graph to avoid.
///
/// # Panics
///
/// Panics if `sources` is empty or `g` has no edges.
pub fn random_queries(g: &Graph, sources: &[Vertex], count: usize, rng: &mut StdRng) -> Vec<Query> {
    assert!(!sources.is_empty(), "at least one source is required");
    let edges = g.edge_vec();
    assert!(!edges.is_empty(), "the graph must have edges");
    let n = g.vertex_count();
    (0..count)
        .map(|_| {
            Query::new(
                sources[rng.gen_range(0..sources.len())],
                rng.gen_range(0..n),
                edges[rng.gen_range(0..edges.len())],
            )
        })
        .collect()
}

/// Encodes one answer into the checksum domain (distinguishes "unroutable" from every
/// distance, including the infinite one).
fn encode_answer(a: Option<msrp_graph::Distance>) -> u64 {
    match a {
        None => u64::MAX,
        Some(d) => d as u64,
    }
}

/// Per-client sub-seed: splitmix-style mixing keeps client streams well separated even for
/// adjacent seeds.
fn client_seed(seed: u64, client: u64) -> u64 {
    let mut z = seed ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives `service` with `config.clients` closed-loop clients issuing seed-pinned workloads
/// over `g` and the service's own source set.
pub fn run_closed_loop(service: &QueryService, g: &Graph, config: &LoadConfig) -> LoadReport {
    run_closed_loop_on(service, g, &service.oracle().sources(), config)
}

/// Generic entry point of [`run_closed_loop`]: drives any service answering in [`Distance`]s
/// — including an epoch-swapping [`QueryService<EpochOracle>`](crate::EpochOracle), whose
/// source set is stable across epochs and therefore passed in by the caller. This is the
/// churn mode of the load generator: the caller owns the event/rebuild/publish loop and runs
/// this concurrently to keep closed-loop load on the service while epochs swap under it.
///
/// Note the determinism caveat under churn: the issued query multiset is still a pure
/// function of `(g, sources, config)`, but answers — and hence `checksum` — depend on which
/// epoch each batch lands in. Against an immutable oracle the checksum stays reproducible
/// exactly as before.
pub fn run_closed_loop_on<O: RouteOracle<Answer = Distance>>(
    service: &QueryService<O>,
    g: &Graph,
    sources: &[Vertex],
    config: &LoadConfig,
) -> LoadReport {
    let clients = config.clients.max(1);
    let latency = LatencyHistogram::new();
    let start = Instant::now();
    let client_checksums: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let sources = &sources;
                let latency = &latency;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(client_seed(config.seed, client as u64));
                    let mut checksum = 0u64;
                    for _ in 0..config.batches_per_client {
                        let batch = random_queries(g, sources, config.batch_size, &mut rng);
                        let submitted = Instant::now();
                        let answers = service.answer_batch(&batch);
                        latency.record(submitted.elapsed());
                        for a in answers {
                            checksum = checksum.wrapping_add(encode_answer(a));
                        }
                    }
                    checksum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    LoadReport {
        total_queries: (clients * config.batches_per_client * config.batch_size) as u64,
        wall_secs,
        latency: latency.snapshot(),
        checksum: client_checksums.iter().fold(0u64, |acc, &c| acc.wrapping_add(c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use msrp_core::MsrpParams;
    use msrp_graph::generators::grid_graph;

    #[test]
    fn random_queries_are_deterministic_per_seed() {
        let g = grid_graph(4, 4);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            random_queries(&g, &[0, 5], 50, &mut a),
            random_queries(&g, &[0, 5], 50, &mut b)
        );
    }

    #[test]
    fn closed_loop_reports_are_complete_and_deterministic() {
        let g = grid_graph(5, 5);
        let sources = [0usize, 12, 24];
        let config = LoadConfig { clients: 3, batches_per_client: 5, batch_size: 8, seed: 42 };
        let mut checksums = Vec::new();
        for workers in [1usize, 4] {
            let service = QueryService::build_and_start(
                &g,
                &sources,
                &MsrpParams::default(),
                2,
                &ServiceConfig { workers },
            );
            let report = run_closed_loop(&service, &g, &config);
            assert_eq!(report.total_queries, 3 * 5 * 8);
            assert_eq!(report.latency.count, 3 * 5);
            assert!(report.throughput_qps() > 0.0);
            checksums.push(report.checksum);
            let metrics = service.shutdown();
            assert_eq!(metrics.queries_total, report.total_queries);
        }
        assert_eq!(checksums[0], checksums[1], "answers must not depend on worker count");
    }

    #[test]
    fn closed_loop_drives_an_epoch_service_through_a_live_swap() {
        use crate::epoch::EpochOracle;
        use crate::service::ShardedOracle;
        let g = grid_graph(5, 5);
        let sources = [0usize, 12, 24];
        let oracle0 = ShardedOracle::build_bk_csr(&g.freeze(), &sources, 2);
        let service = QueryService::start(EpochOracle::new(oracle0), &ServiceConfig { workers: 2 });
        let config = LoadConfig { clients: 2, batches_per_client: 6, batch_size: 8, seed: 5 };
        let report = std::thread::scope(|scope| {
            let swapper = scope.spawn(|| {
                // Rebuild for a removed edge and publish while the clients are running.
                let mut g2 = g.clone();
                g2.remove_edge(0, 1).unwrap();
                let (next, stats) = service
                    .oracle()
                    .current()
                    .oracle
                    .rebuild_bk_csr(&g2.freeze(), msrp_graph::Edge::new(0, 1));
                assert_eq!(stats.sources_total, 3, "{stats:?}");
                service.oracle().publish(next).id
            });
            let report = run_closed_loop_on(&service, &g, &sources, &config);
            assert_eq!(swapper.join().expect("swapper"), 1);
            report
        });
        assert_eq!(report.total_queries, 2 * 6 * 8);
        assert_eq!(service.oracle().epoch_id(), 1);
        let metrics = service.shutdown();
        assert!(metrics.queries_total >= report.total_queries);
    }

    #[test]
    fn client_seeds_are_well_separated() {
        let s: Vec<u64> = (0..8).map(|i| client_seed(7, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }
}
