//! Boot-from-snapshot paths: adopting a persisted [`msrp_snap`] snapshot as a live
//! sharded oracle instead of re-running oracle construction.
//!
//! The division of labour: `msrp-snap` owns the byte format and its fail-closed
//! validation; this module owns the serving-side adoption — turning decoded shards back
//! into a routed [`ShardedOracle`] / [`WeightedShardedOracle`] (and the reverse, freezing
//! a live one into bytes). `msrpctl create`/`serve` and the `oracle_snapshot` bench are
//! the two callers.

use msrp_graph::{CsrGraph, WeightedCsrGraph};
use msrp_snap::{
    decode_snapshot, decode_weighted_snapshot, encode_snapshot, encode_weighted_snapshot, SnapError,
};

use crate::service::{ShardedOracle, WeightedShardedOracle};

impl ShardedOracle {
    /// Freezes this oracle (and the graph it was built over) into a snapshot buffer.
    /// The shard partition is preserved, so the booted twin routes identically.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not the graph the shards were built over (vertex-count
    /// mismatch) — encoding is trusted and in-process; only decoding is hostile-input
    /// territory.
    pub fn to_snapshot(&self, g: &CsrGraph) -> Vec<u8> {
        encode_snapshot(g, self.shards())
    }

    /// Boots a sharded oracle from a snapshot buffer, returning the frozen graph
    /// alongside it. Fails closed with a typed [`SnapError`] on any corruption,
    /// truncation, or version/kind skew; on success the oracle answers bit-for-bit what
    /// the encoded one answered.
    pub fn from_snapshot(bytes: &[u8]) -> Result<(CsrGraph, Self), SnapError> {
        let snap = decode_snapshot(bytes)?;
        // The decoder already proved the shards non-empty with globally distinct
        // sources, so the routing-table construction cannot panic here.
        Ok((snap.graph, ShardedOracle::from_shards(snap.shards)))
    }
}

impl WeightedShardedOracle {
    /// Freezes this weighted oracle into a snapshot buffer — the weighted mirror of
    /// [`ShardedOracle::to_snapshot`].
    ///
    /// # Panics
    ///
    /// Same trusted-input contract as [`ShardedOracle::to_snapshot`].
    pub fn to_snapshot(&self, g: &WeightedCsrGraph) -> Vec<u8> {
        encode_weighted_snapshot(g, self.shards())
    }

    /// Boots a weighted sharded oracle from a snapshot buffer — the weighted mirror of
    /// [`ShardedOracle::from_snapshot`].
    pub fn from_snapshot(bytes: &[u8]) -> Result<(WeightedCsrGraph, Self), SnapError> {
        let snap = decode_weighted_snapshot(bytes)?;
        Ok((snap.graph, WeightedShardedOracle::from_shards(snap.shards)))
    }
}

#[cfg(test)]
mod tests {
    use msrp_graph::generators::{connected_gnm, weighted_connected_gnm};
    use msrp_snap::SnapError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::service::{Query, ShardedOracle, WeightedShardedOracle};

    #[test]
    fn booted_oracle_routes_and_answers_like_the_original() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = connected_gnm(40, 90, &mut rng).unwrap().freeze();
        let oracle = ShardedOracle::build_bk_csr(&g, &[0, 9, 18, 27], 2);
        let bytes = oracle.to_snapshot(&g);
        let (g2, booted) = ShardedOracle::from_snapshot(&bytes).expect("boot");
        assert_eq!(g2, g);
        assert_eq!(booted.shard_count(), oracle.shard_count());
        assert_eq!(booted.sources(), oracle.sources());
        for s in oracle.sources() {
            for t in 0..40 {
                for u in g.neighbors(t) {
                    let q = Query { source: s, target: t, avoid: msrp_graph::Edge::new(t, u) };
                    assert_eq!(booted.query_routed(q), oracle.query_routed(q));
                }
            }
        }
    }

    #[test]
    fn weighted_boot_round_trips() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = weighted_connected_gnm(30, 70, 1000, &mut rng).unwrap().freeze();
        let oracle = WeightedShardedOracle::build(&g, &[0, 10, 20], 2);
        let bytes = oracle.to_snapshot(&g);
        let (g2, booted) = WeightedShardedOracle::from_snapshot(&bytes).expect("boot");
        assert_eq!(g2, g);
        assert_eq!(booted.sources(), oracle.sources());
        for s in oracle.sources() {
            for t in 0..30 {
                assert_eq!(booted.distance(s, t), oracle.distance(s, t));
            }
        }
    }

    #[test]
    fn kind_confusion_is_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(47);
        let g = connected_gnm(16, 30, &mut rng).unwrap().freeze();
        let bytes = ShardedOracle::build_bk_csr(&g, &[0, 8], 1).to_snapshot(&g);
        assert!(matches!(
            WeightedShardedOracle::from_snapshot(&bytes),
            Err(SnapError::WrongKind { .. })
        ));
    }
}
