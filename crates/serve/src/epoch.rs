//! Epoch-swap serving: keep answering queries from an immutable shard set while a
//! background rebuild prepares the next one, then publish atomically.
//!
//! The whole serving stack is built on *immutable* oracles — that is what makes the worker
//! pool coordination-free. Churn must not break that: instead of mutating shards in place,
//! each network change produces a brand-new [`ShardedOracle`] (usually through the
//! incremental path, [`ShardedOracle::rebuild_bk_csr`]) wrapped in an [`Epoch`], and
//! [`EpochOracle::publish`] swaps one `Arc` pointer. Workers never block on a rebuild and a
//! rebuild never blocks on workers.
//!
//! # The epoch invariant
//!
//! Every batch is answered **entirely by one epoch**. [`EpochOracle`] overrides
//! [`RouteOracle::query_batch_routed`] to resolve the current epoch once per batch and route
//! every query of the batch through that pinned `Arc` — so a swap landing mid-batch changes
//! which epoch *later* batches see, never the consistency of the one in flight. Between the
//! event arriving and `publish` returning, answers legitimately describe the pre-event
//! graph; that interval is the *staleness window* the churn metrics record.
//!
//! The slot's `RwLock` comes from [`msrp_check::sync`] (a plain `std::sync::RwLock`
//! re-export in normal builds), so `crates/check/tests/model_epoch.rs` can exhaustively
//! interleave `publish` against pinned batches and prove the epoch invariant.

use msrp_check::sync::{Arc, RwLock};

use msrp_graph::Distance;

use crate::service::{Query, RouteOracle, ShardedOracle};

/// One immutable generation of the serving state: an id (monotonically increasing from 0)
/// and the shard set every batch pinned to this epoch is answered from.
#[derive(Debug)]
pub struct Epoch {
    /// Epoch id; 0 is the initially built oracle, each publish increments by 1.
    pub id: u64,
    /// The immutable shard set of this epoch.
    pub oracle: ShardedOracle,
}

/// A [`RouteOracle`] whose shard set can be atomically replaced while a
/// [`QueryService`](crate::QueryService) serves from it.
///
/// Readers clone an `Arc<Epoch>` out of the slot (one `RwLock` read acquisition per batch);
/// [`publish`](Self::publish) write-locks only for the pointer swap. Old epochs stay alive
/// exactly as long as some batch still holds their `Arc` — there is no epoch reclamation
/// protocol to get wrong.
#[derive(Debug)]
pub struct EpochOracle {
    current: RwLock<Arc<Epoch>>,
}

impl EpochOracle {
    /// Wraps an initially built shard set as epoch 0.
    pub fn new(oracle: ShardedOracle) -> Self {
        EpochOracle { current: RwLock::new(Arc::new(Epoch { id: 0, oracle })) }
    }

    /// The currently served epoch (a cheap `Arc` clone; the epoch stays valid for as long
    /// as the caller holds it, across any number of later publishes).
    pub fn current(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.read().expect("epoch slot poisoned"))
    }

    /// Id of the currently served epoch.
    pub fn epoch_id(&self) -> u64 {
        self.current.read().expect("epoch slot poisoned").id
    }

    /// Atomically publishes `oracle` as the next epoch and returns it. Batches pinned
    /// before the swap finish against the old epoch; every batch pinned after sees the new
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if the new shard set changes the shard count or vertex count — routing, the
    /// per-shard metrics, and protocol-level id validation all assume those are stable
    /// across epochs (churn toggles edges, never vertices or sources).
    pub fn publish(&self, oracle: ShardedOracle) -> Arc<Epoch> {
        let mut slot = self.current.write().expect("epoch slot poisoned");
        assert_eq!(
            oracle.shard_count(),
            slot.oracle.shard_count(),
            "epochs must keep the shard count stable"
        );
        assert_eq!(
            oracle.vertex_count(),
            slot.oracle.vertex_count(),
            "epochs must keep the vertex set stable"
        );
        let next = Arc::new(Epoch { id: slot.id + 1, oracle });
        *slot = Arc::clone(&next);
        next
    }
}

impl RouteOracle for EpochOracle {
    type Answer = Distance;

    fn shard_count(&self) -> usize {
        self.current.read().expect("epoch slot poisoned").oracle.shard_count()
    }

    fn vertex_count(&self) -> usize {
        self.current.read().expect("epoch slot poisoned").oracle.vertex_count()
    }

    fn query_routed(&self, q: Query) -> (Option<usize>, Option<Distance>) {
        self.current().oracle.query_routed(q)
    }

    /// The epoch invariant lives here: one `current()` resolution pins the whole batch to a
    /// single epoch, no matter how many publishes land while it is being answered.
    fn query_batch_routed(&self, queries: &[Query]) -> Vec<(Option<usize>, Option<Distance>)> {
        let epoch = self.current();
        queries.iter().map(|&q| epoch.oracle.query_routed(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{QueryService, ServiceConfig};
    use msrp_graph::generators::connected_gnm;
    use msrp_graph::Edge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_epochs() -> (EpochOracle, ShardedOracle, Edge) {
        let mut rng = StdRng::seed_from_u64(91);
        let mut g = connected_gnm(20, 50, &mut rng).unwrap();
        let sources = [0usize, 7, 14];
        let epochs = EpochOracle::new(ShardedOracle::build_bk_csr(&g.freeze(), &sources, 2));
        let e = g.edge_vec()[3];
        let (u, v) = e.endpoints();
        g.remove_edge(u, v).unwrap();
        let (next, _) = epochs.current().oracle.rebuild_bk_csr(&g.freeze(), e);
        (epochs, next, e)
    }

    #[test]
    fn publish_advances_the_epoch_and_keeps_old_handles_valid() {
        let (epochs, next, _) = two_epochs();
        let old = epochs.current();
        assert_eq!(old.id, 0);
        assert_eq!(epochs.epoch_id(), 0);
        let published = epochs.publish(next);
        assert_eq!(published.id, 1);
        assert_eq!(epochs.epoch_id(), 1);
        // The old handle still answers from the pre-swap shard set.
        assert_eq!(old.id, 0);
        let q = Query::new(0, 13, Edge::new(0, 1));
        let _ = old.oracle.query(q); // must not have been torn down
    }

    #[test]
    fn batches_are_pinned_to_one_epoch() {
        let (epochs, next, _) = two_epochs();
        let old = epochs.current();
        let new = epochs.publish(next);
        // After the swap, the batch hook answers from the new epoch — and bit-for-bit so.
        let queries: Vec<Query> = (0..20).map(|t| Query::new(0, t, Edge::new(0, 1))).collect();
        let batch = epochs.query_batch_routed(&queries);
        for (q, (_, a)) in queries.iter().zip(&batch) {
            assert_eq!(*a, new.oracle.query(*q), "q={q:?}");
        }
        // Both epochs are internally consistent answer sets a batch may legally equal.
        let old_batch: Vec<_> = queries.iter().map(|&q| old.oracle.query(q)).collect();
        assert_eq!(old_batch.len(), batch.len());
    }

    #[test]
    fn a_service_over_an_epoch_oracle_swaps_live() {
        let (epochs, next, _) = two_epochs();
        let service = QueryService::start(epochs, &ServiceConfig { workers: 2 });
        let queries: Vec<Query> = (0..20).map(|t| Query::new(7, t, Edge::new(0, 1))).collect();
        let before = service.answer_batch(&queries);
        let old = service.oracle().current();
        for (q, a) in queries.iter().zip(&before) {
            assert_eq!(*a, old.oracle.query(*q));
        }
        // Publish through the service's own handle: the oracle accessor is enough, no
        // service restart, no worker coordination.
        let new = service.oracle().publish(next);
        let after = service.answer_batch(&queries);
        for (q, a) in queries.iter().zip(&after) {
            assert_eq!(*a, new.oracle.query(*q));
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.queries_total, 2 * queries.len() as u64);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn publishing_a_different_shard_count_is_rejected() {
        let mut rng = StdRng::seed_from_u64(92);
        let g = connected_gnm(12, 24, &mut rng).unwrap().freeze();
        let epochs = EpochOracle::new(ShardedOracle::build_bk_csr(&g, &[0, 5, 10], 3));
        let _ = epochs.publish(ShardedOracle::build_bk_csr(&g, &[0, 5, 10], 1));
    }
}
