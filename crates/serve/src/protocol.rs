//! The newline-delimited text protocol spoken by the TCP front end.
//!
//! Every message is one line of whitespace-separated ASCII tokens; a batch is length-delimited
//! by its header line. Requests:
//!
//! ```text
//! Q <source> <target> <u> <v>   one hop-metric query avoiding edge (u, v); one reply line
//! B <k>                         batch header: exactly k `Q` lines follow; k reply lines
//! QW <source> <target> <u> <v>  one *weighted* query, served by the weighted oracle
//! BW <k>                        weighted batch header: exactly k `QW` lines follow
//! STATS                         one reply line summarizing the service metrics
//! METRICS                       length-delimited Prometheus-style text exposition
//! QUIT                          close the connection
//! ```
//!
//! The `STATS` reply is itself machine-parseable (see [`StatsReply`]): a pinned sequence of
//! `key=value` tokens carrying totals, the served epoch, and the p99s of the batch-latency,
//! staleness-window, and rebuild-latency histograms. The `METRICS` reply is multi-line, so
//! it is length-delimited like batches are: a `METRICS <k>` header line followed by exactly
//! `k` lines of exposition text (rendered by
//! [`render_exposition`](crate::exposition::render_exposition)).
//!
//! Answers are a single token per query: a decimal distance (hop count for `Q`/`B`, weight
//! for `QW`/`BW`), `INF` (the failure disconnects the target), or `NOSRC` (the queried
//! source is not served by any shard). The grammar is deliberately tiny — `std::net` plus
//! line buffering is the whole transport — but it is the real serving boundary:
//! `examples/serve_tcp.rs` drives it (both metrics) across a localhost socket in CI.

use std::fmt;
use std::str::FromStr;

use msrp_graph::{Distance, Edge, Weight, INFINITE_DISTANCE, INFINITE_WEIGHT};

use crate::metrics::MetricsSnapshot;
use crate::service::Query;

/// A parsed request line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `Q s t u v` — answer one hop-metric query.
    Query(Query),
    /// `B k` — a batch of `k` queries follows, one `Q` line each.
    Batch(usize),
    /// `QW s t u v` — answer one weighted query (routed to the weighted oracle).
    WeightedQuery(Query),
    /// `BW k` — a weighted batch of `k` queries follows, one `QW` line each.
    WeightedBatch(usize),
    /// `STATS` — report service metrics as one `key=value` line.
    Stats,
    /// `METRICS` — report the full Prometheus-style text exposition (length-delimited).
    Metrics,
    /// `QUIT` — close the connection.
    Quit,
}

/// A malformed protocol line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// What went wrong, for the error reply.
    pub message: String,
}

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        ProtocolError { message: message.into() }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn parse_token<T: FromStr>(token: Option<&str>, what: &str) -> Result<T, ProtocolError> {
    token
        .ok_or_else(|| ProtocolError::new(format!("missing {what}")))?
        .parse()
        .map_err(|_| ProtocolError::new(format!("malformed {what}")))
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or_else(|| ProtocolError::new("empty request line"))?;
    let parse_query = |tokens: &mut std::str::SplitWhitespace<'_>| {
        let source = parse_token(tokens.next(), "source vertex")?;
        let target = parse_token(tokens.next(), "target vertex")?;
        let u = parse_token(tokens.next(), "edge endpoint")?;
        let v: usize = parse_token(tokens.next(), "edge endpoint")?;
        if u == v {
            // A self-loop edge key is unrepresentable (`Edge::new` would panic); reject at
            // the parse boundary so no hostile line can reach that assertion.
            return Err(ProtocolError::new("avoided edge endpoints must differ"));
        }
        Ok(Query::new(source, target, Edge::new(u, v)))
    };
    let request = match verb {
        "Q" => Request::Query(parse_query(&mut tokens)?),
        "QW" => Request::WeightedQuery(parse_query(&mut tokens)?),
        "B" => Request::Batch(parse_token(tokens.next(), "batch size")?),
        "BW" => Request::WeightedBatch(parse_token(tokens.next(), "batch size")?),
        "STATS" => Request::Stats,
        "METRICS" => Request::Metrics,
        "QUIT" => Request::Quit,
        other => return Err(ProtocolError::new(format!("unknown verb `{other}`"))),
    };
    if tokens.next().is_some() {
        return Err(ProtocolError::new("trailing tokens"));
    }
    Ok(request)
}

/// Renders a query as a `Q` request line (without the newline).
pub fn format_query(q: &Query) -> String {
    let (u, v) = q.avoid.endpoints();
    format!("Q {} {} {u} {v}", q.source, q.target)
}

/// Renders a query as a `QW` request line (without the newline): same ids, weighted metric.
pub fn format_weighted_query(q: &Query) -> String {
    let (u, v) = q.avoid.endpoints();
    format!("QW {} {} {u} {v}", q.source, q.target)
}

/// Validates a parsed query's vertex ids against the served graph.
///
/// [`parse_request`] checks the *grammar* of a line; this checks its *semantics*: every id
/// must name a vertex of the graph behind the service. The TCP front end calls it before a
/// query is ever enqueued and turns the error into an `ERR` reply line — the fix for the
/// remotely-triggerable worker panic where `Q 0 999999999 0 1` reached the shortest-path
/// tree's unchecked `dist[t]` indexing (the sharded oracles additionally treat such ids as
/// unroutable, as defense in depth).
///
/// # Errors
///
/// Returns a [`ProtocolError`] naming the first out-of-range id.
pub fn validate_query(q: &Query, vertex_count: usize) -> Result<(), ProtocolError> {
    let check = |what: &str, v: usize| {
        if v >= vertex_count {
            Err(ProtocolError::new(format!(
                "{what} {v} out of range (graph has {vertex_count} vertices)"
            )))
        } else {
            Ok(())
        }
    };
    check("source vertex", q.source)?;
    check("target vertex", q.target)?;
    let (u, v) = q.avoid.endpoints();
    check("edge endpoint", u)?;
    check("edge endpoint", v)
}

/// Renders one answer token: `NOSRC`, `INF`, or the decimal distance.
pub fn format_answer(answer: Option<Distance>) -> String {
    match answer {
        None => "NOSRC".to_string(),
        Some(INFINITE_DISTANCE) => "INF".to_string(),
        Some(d) => d.to_string(),
    }
}

/// Parses one answer token (the inverse of [`format_answer`]).
pub fn parse_answer(line: &str) -> Result<Option<Distance>, ProtocolError> {
    match line.trim() {
        "NOSRC" => Ok(None),
        "INF" => Ok(Some(INFINITE_DISTANCE)),
        token => token
            .parse::<Distance>()
            .ok()
            .filter(|&d| d != INFINITE_DISTANCE)
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("malformed answer `{token}`"))),
    }
}

/// Renders one *weighted* answer token: `NOSRC`, `INF`, or the decimal weight (the `QW`/`BW`
/// mirror of [`format_answer`]).
pub fn format_weighted_answer(answer: Option<Weight>) -> String {
    match answer {
        None => "NOSRC".to_string(),
        Some(INFINITE_WEIGHT) => "INF".to_string(),
        Some(w) => w.to_string(),
    }
}

/// Parses one weighted answer token (the inverse of [`format_weighted_answer`]).
pub fn parse_weighted_answer(line: &str) -> Result<Option<Weight>, ProtocolError> {
    match line.trim() {
        "NOSRC" => Ok(None),
        "INF" => Ok(Some(INFINITE_WEIGHT)),
        token => token
            .parse::<Weight>()
            .ok()
            .filter(|&w| w != INFINITE_WEIGHT)
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("malformed weighted answer `{token}`"))),
    }
}

/// The parsed form of a `STATS` reply line.
///
/// The wire format is pinned (round-trip tested): seven `key=value` tokens, in exactly this
/// order, after the `STATS` prefix:
///
/// ```text
/// STATS queries=<u64> unroutable=<u64> epoch=<u64> batch_p50_ns=<u64> batch_p99_ns=<u64>
///       staleness_p99_ns=<u64> rebuild_p99_ns=<u64>
/// ```
///
/// Quantiles are log₂-bucket upper bounds in nanoseconds (see
/// [`HistogramSnapshot::quantile`](crate::HistogramSnapshot::quantile)); the staleness and
/// rebuild fields are zero until the first epoch swap. Dashboards that need more than seven
/// numbers should speak `METRICS` instead — `STATS` stays a one-line health probe.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StatsReply {
    /// Total queries answered (including unroutable ones).
    pub queries: u64,
    /// Queries no shard could serve.
    pub unroutable: u64,
    /// Currently served epoch id (0 until the first churn swap).
    pub epoch: u64,
    /// Median batch compute latency, in nanoseconds.
    pub batch_p50_ns: u64,
    /// 99th-percentile batch compute latency, in nanoseconds.
    pub batch_p99_ns: u64,
    /// 99th-percentile staleness window of epoch swaps, in nanoseconds.
    pub staleness_p99_ns: u64,
    /// 99th-percentile oracle rebuild latency of epoch swaps, in nanoseconds.
    pub rebuild_p99_ns: u64,
}

/// Key names of the `STATS` reply, in wire order. `parse_stats` enforces this order exactly,
/// so the format cannot drift without the round-trip test noticing.
const STATS_KEYS: [&str; 7] = [
    "queries",
    "unroutable",
    "epoch",
    "batch_p50_ns",
    "batch_p99_ns",
    "staleness_p99_ns",
    "rebuild_p99_ns",
];

impl StatsReply {
    /// Derives the reply from a metrics snapshot.
    pub fn from_snapshot(m: &MetricsSnapshot) -> Self {
        let p99_ns = |h: &crate::HistogramSnapshot| h.p99().as_nanos().min(u64::MAX.into()) as u64;
        StatsReply {
            queries: m.queries_total,
            unroutable: m.unroutable_total,
            epoch: m.epoch,
            batch_p50_ns: m.batch_latency.p50().as_nanos().min(u64::MAX.into()) as u64,
            batch_p99_ns: p99_ns(&m.batch_latency),
            staleness_p99_ns: p99_ns(&m.staleness_window),
            rebuild_p99_ns: p99_ns(&m.rebuild_latency),
        }
    }

    fn values(&self) -> [u64; 7] {
        [
            self.queries,
            self.unroutable,
            self.epoch,
            self.batch_p50_ns,
            self.batch_p99_ns,
            self.staleness_p99_ns,
            self.rebuild_p99_ns,
        ]
    }
}

impl fmt::Display for StatsReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "STATS")?;
        for (key, value) in STATS_KEYS.iter().zip(self.values()) {
            write!(f, " {key}={value}")?;
        }
        Ok(())
    }
}

/// Renders the `STATS` reply line (without the newline) for a metrics snapshot.
pub fn format_stats(m: &MetricsSnapshot) -> String {
    StatsReply::from_snapshot(m).to_string()
}

/// Parses a `STATS` reply line (the inverse of [`format_stats`]).
///
/// Strict by design: the prefix, every key, and the key *order* must match [`StatsReply`]'s
/// pinned format, and no trailing tokens are allowed — a client that parses today keeps
/// parsing tomorrow, or this function's tests fail loudly first.
pub fn parse_stats(line: &str) -> Result<StatsReply, ProtocolError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some("STATS") => {}
        _ => return Err(ProtocolError::new("stats reply must start with STATS")),
    }
    let mut values = [0u64; 7];
    for (key, slot) in STATS_KEYS.iter().zip(values.iter_mut()) {
        let token = tokens
            .next()
            .ok_or_else(|| ProtocolError::new(format!("missing stats field `{key}`")))?;
        let value = token
            .strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| ProtocolError::new(format!("expected `{key}=…`, got `{token}`")))?;
        *slot = value
            .parse()
            .map_err(|_| ProtocolError::new(format!("malformed stats value `{token}`")))?;
    }
    if tokens.next().is_some() {
        return Err(ProtocolError::new("trailing tokens in stats reply"));
    }
    let [queries, unroutable, epoch, batch_p50_ns, batch_p99_ns, staleness_p99_ns, rebuild_p99_ns] =
        values;
    Ok(StatsReply {
        queries,
        unroutable,
        epoch,
        batch_p50_ns,
        batch_p99_ns,
        staleness_p99_ns,
        rebuild_p99_ns,
    })
}

/// Renders the `METRICS` reply header (without the newline): exactly `lines` lines of
/// exposition text follow it.
pub fn format_metrics_header(lines: usize) -> String {
    format!("METRICS {lines}")
}

/// Parses a `METRICS <k>` reply header, returning the number of exposition lines that
/// follow (the inverse of [`format_metrics_header`]).
pub fn parse_metrics_header(line: &str) -> Result<usize, ProtocolError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some("METRICS") => {}
        _ => return Err(ProtocolError::new("metrics reply must start with METRICS")),
    }
    let count = parse_token(tokens.next(), "metrics line count")?;
    if tokens.next().is_some() {
        return Err(ProtocolError::new("trailing tokens in metrics header"));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let q = Query::new(3, 7, Edge::new(9, 2));
        let line = format_query(&q);
        assert_eq!(line, "Q 3 7 2 9"); // Edge::new canonicalizes endpoint order
        assert_eq!(parse_request(&line), Ok(Request::Query(q)));
        assert_eq!(parse_request("B 16"), Ok(Request::Batch(16)));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("QUIT"), Ok(Request::Quit));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in ["", "Q 1 2 3", "Q 1 2 3 x", "Q 1 2 3 3", "B", "B -1", "FLY 1", "QUIT now"] {
            assert!(parse_request(line).is_err(), "line {line:?} must be rejected");
        }
    }

    #[test]
    fn weighted_requests_round_trip() {
        let q = Query::new(4, 1, Edge::new(8, 3));
        let line = format_weighted_query(&q);
        assert_eq!(line, "QW 4 1 3 8");
        assert_eq!(parse_request(&line), Ok(Request::WeightedQuery(q)));
        assert_eq!(parse_request("BW 7"), Ok(Request::WeightedBatch(7)));
        // The weighted verbs reject exactly the malformed shapes the hop-metric verbs do.
        for line in ["QW 1 2 3", "QW 1 2 3 3", "QW 1 2 3 x", "BW", "BW -1", "QW 1 2 3 4 5"] {
            assert!(parse_request(line).is_err(), "line {line:?} must be rejected");
        }
    }

    #[test]
    fn weighted_answers_round_trip() {
        use msrp_graph::INFINITE_WEIGHT;
        for answer in [None, Some(INFINITE_WEIGHT), Some(0), Some(u64::from(u32::MAX))] {
            assert_eq!(parse_weighted_answer(&format_weighted_answer(answer)), Ok(answer));
        }
        assert!(parse_weighted_answer("x").is_err());
        assert!(
            parse_weighted_answer("18446744073709551615").is_err(),
            "INFINITE_WEIGHT must be spelled INF"
        );
    }

    #[test]
    fn answers_round_trip() {
        for answer in [None, Some(INFINITE_DISTANCE), Some(0), Some(41)] {
            assert_eq!(parse_answer(&format_answer(answer)), Ok(answer));
        }
        assert!(parse_answer("x").is_err());
        assert!(parse_answer("4294967295").is_err(), "INFINITE_DISTANCE must be spelled INF");
    }

    #[test]
    fn metrics_verb_parses_strictly() {
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("  METRICS  "), Ok(Request::Metrics));
        for line in ["METRIC", "metrics", "METRICS 3", "METRICS now please", "METRICSX"] {
            assert!(parse_request(line).is_err(), "line {line:?} must be rejected");
        }
    }

    #[test]
    fn stats_reply_round_trips_and_the_format_is_pinned() {
        use crate::metrics::ServiceMetrics;
        use msrp_oracle::RebuildStats;
        use std::time::Duration;
        let m = ServiceMetrics::new(2, 2);
        m.record_batch_queries(&[5, 7], 1);
        m.record_batch(0, Duration::from_nanos(100)); // bucket upper bound 128
        m.record_epoch_swap(
            3,
            Duration::from_nanos(1000), // bucket upper bound 1024
            Duration::from_nanos(500),  // bucket upper bound 512
            &RebuildStats::default(),
        );
        let line = format_stats(&m.snapshot());
        assert_eq!(
            line,
            "STATS queries=13 unroutable=1 epoch=3 batch_p50_ns=128 batch_p99_ns=128 \
             staleness_p99_ns=1024 rebuild_p99_ns=512",
            "the STATS wire format is pinned; update parse_stats and this test together"
        );
        let reply = parse_stats(&line).expect("pinned format must parse");
        assert_eq!(reply, StatsReply::from_snapshot(&m.snapshot()));
        assert_eq!(parse_stats(&reply.to_string()), Ok(reply), "round trip");
    }

    #[test]
    fn stats_reply_of_a_fresh_service_is_all_zeros_and_parses() {
        use crate::metrics::ServiceMetrics;
        let line = format_stats(&ServiceMetrics::new(1, 1).snapshot());
        let reply = parse_stats(&line).unwrap();
        assert_eq!(reply.queries, 0);
        assert_eq!(reply.epoch, 0);
        assert_eq!(reply.staleness_p99_ns, 0, "no swap yet → zero, not garbage");
    }

    #[test]
    fn malformed_stats_replies_are_rejected() {
        let good = "STATS queries=1 unroutable=0 epoch=0 batch_p50_ns=0 batch_p99_ns=0 \
                    staleness_p99_ns=0 rebuild_p99_ns=0";
        assert!(parse_stats(good).is_ok());
        for line in [
            "",
            "STATS",
            "STAT queries=1",
            // Reordered keys: the order is part of the pinned format.
            "STATS unroutable=0 queries=1 epoch=0 batch_p50_ns=0 batch_p99_ns=0 \
             staleness_p99_ns=0 rebuild_p99_ns=0",
            // Malformed value.
            "STATS queries=x unroutable=0 epoch=0 batch_p50_ns=0 batch_p99_ns=0 \
             staleness_p99_ns=0 rebuild_p99_ns=0",
            // Missing last field.
            "STATS queries=1 unroutable=0 epoch=0 batch_p50_ns=0 batch_p99_ns=0 \
             staleness_p99_ns=0",
        ] {
            assert!(parse_stats(line).is_err(), "line {line:?} must be rejected");
        }
        // Trailing tokens are rejected too.
        assert!(parse_stats(&format!("{good} extra=1")).is_err());
    }

    #[test]
    fn metrics_headers_round_trip() {
        for n in [0usize, 1, 57, 4096] {
            assert_eq!(parse_metrics_header(&format_metrics_header(n)), Ok(n));
        }
        for line in ["", "METRICS", "METRICS x", "METRICS -1", "METRICS 3 4", "STATS 3"] {
            assert!(parse_metrics_header(line).is_err(), "line {line:?} must be rejected");
        }
    }

    #[test]
    fn errors_display_their_message() {
        let err = parse_request("FLY").unwrap_err();
        assert!(err.to_string().contains("unknown verb"));
    }

    #[test]
    fn validation_rejects_out_of_range_ids() {
        let n = 10;
        assert!(validate_query(&Query::new(0, 9, Edge::new(3, 4)), n).is_ok());
        for (q, what) in [
            (Query::new(10, 0, Edge::new(0, 1)), "source"),
            (Query::new(0, 999_999_999, Edge::new(0, 1)), "target"),
            (Query::new(0, 1, Edge::new(2, 10)), "endpoint"),
            (Query::new(0, 1, Edge::new(usize::MAX - 1, usize::MAX)), "endpoint"),
        ] {
            let err = validate_query(&q, n).unwrap_err();
            assert!(err.to_string().contains(what), "{q:?}: {err}");
            assert!(err.to_string().contains("out of range"), "{q:?}: {err}");
        }
        // The empty graph rejects everything.
        assert!(validate_query(&Query::new(0, 0, Edge::new(0, 1)), 0).is_err());
    }
}
