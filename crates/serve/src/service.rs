//! The sharded oracle and the worker-pool query service built on top of it.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use msrp_core::MsrpParams;
use msrp_graph::{CsrGraph, Distance, Edge, Graph, Vertex};
use msrp_oracle::{build_shards, build_shards_csr, ReplacementPathOracle};

use crate::metrics::{MetricsSnapshot, ServiceMetrics};

/// One replacement-path query: `QUERY(source, target, avoid)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// The source vertex (must be one of the oracle's sources to be routable).
    pub source: Vertex,
    /// The target vertex.
    pub target: Vertex,
    /// The failed edge to avoid.
    pub avoid: Edge,
}

impl Query {
    /// Builds a query.
    pub fn new(source: Vertex, target: Vertex, avoid: Edge) -> Self {
        Query { source, target, avoid }
    }
}

/// Immutable oracle shards plus a source → shard routing table.
///
/// Each shard is a [`ReplacementPathOracle`] covering a contiguous slice of the sources (the
/// same partition `msrp_oracle::shard_sources` and `build_parallel` use), so shards share
/// nothing and can be queried from any number of threads concurrently — the `Send + Sync`
/// assertions in `msrp-oracle` guarantee this stays true.
#[derive(Clone, Debug)]
pub struct ShardedOracle {
    shards: Vec<ReplacementPathOracle>,
    /// `(source, shard index)` pairs sorted by source, for binary-search routing.
    route: Vec<(Vertex, usize)>,
}

impl ShardedOracle {
    /// Builds `shard_count` shards in parallel (one construction worker per shard) and wires
    /// up the routing table. `shard_count` is clamped to `[1, σ]`.
    ///
    /// # Panics
    ///
    /// Panics on the inputs [`ReplacementPathOracle::build`] rejects (empty, duplicate, or
    /// out-of-range sources) and if a construction worker panics.
    pub fn build(g: &Graph, sources: &[Vertex], params: &MsrpParams, shard_count: usize) -> Self {
        Self::from_shards(build_shards(g, sources, params, shard_count))
    }

    /// Like [`build`](Self::build), but over an already-frozen CSR view: every construction
    /// worker traverses the caller's `CsrGraph` through a shared reference, so the adjacency
    /// structure exists exactly once no matter how many shards are built.
    ///
    /// # Panics
    ///
    /// Same as [`build`](Self::build).
    pub fn build_csr(
        g: &CsrGraph,
        sources: &[Vertex],
        params: &MsrpParams,
        shard_count: usize,
    ) -> Self {
        Self::from_shards(build_shards_csr(g, sources, params, shard_count))
    }

    /// Wraps pre-built shards (which must cover disjoint source sets).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or two shards share a source.
    pub fn from_shards(shards: Vec<ReplacementPathOracle>) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let mut route = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            route.extend(shard.sources().iter().map(|&s| (s, i)));
        }
        route.sort_unstable();
        assert!(route.windows(2).all(|w| w[0].0 != w[1].0), "shards must cover disjoint sources");
        ShardedOracle { shards, route }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All sources, in ascending order.
    pub fn sources(&self) -> Vec<Vertex> {
        self.route.iter().map(|&(s, _)| s).collect()
    }

    /// Index of the shard owning `source`, or `None` when no shard covers it.
    pub fn shard_for(&self, source: Vertex) -> Option<usize> {
        self.route.binary_search_by_key(&source, |&(s, _)| s).ok().map(|i| self.route[i].1)
    }

    /// Answers one query by routing it to its shard (`None` when the source is unroutable;
    /// `Some(INFINITE_DISTANCE)` when the failure disconnects the target).
    pub fn query(&self, q: Query) -> Option<Distance> {
        self.query_routed(q).1
    }

    /// Like [`query`](Self::query), but also reports which shard the query was routed to —
    /// one routing lookup serves both the answer and the per-shard accounting.
    pub fn query_routed(&self, q: Query) -> (Option<usize>, Option<Distance>) {
        match self.shard_for(q.source) {
            Some(shard) => {
                (Some(shard), self.shards[shard].replacement_distance(q.source, q.target, q.avoid))
            }
            None => (None, None),
        }
    }

    /// Fault-free distance from `source` to `target` (`None` when `source` is unroutable or
    /// `target` unreachable).
    pub fn distance(&self, source: Vertex, target: Vertex) -> Option<Distance> {
        let shard = self.shard_for(source)?;
        self.shards[shard].distance(source, target)
    }

    /// Merges the shards back into a single oracle (consumes the sharded view).
    pub fn into_merged(self) -> ReplacementPathOracle {
        ReplacementPathOracle::from_shards(self.shards)
    }
}

/// Configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of worker threads answering batches (clamped to at least 1).
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 2 }
    }
}

/// A batch submitted to the service together with the channel its answers travel back on.
struct Job {
    queries: Vec<Query>,
    reply: Sender<Vec<Option<Distance>>>,
}

/// A handle to a batch in flight; redeem it with [`wait`](PendingBatch::wait).
#[must_use = "a pending batch does nothing until waited on"]
pub struct PendingBatch {
    reply: Receiver<Vec<Option<Distance>>>,
}

impl PendingBatch {
    /// Blocks until the batch's answers arrive (in submission order).
    ///
    /// # Panics
    ///
    /// Panics if the worker processing the batch died (a worker panic).
    pub fn wait(self) -> Vec<Option<Distance>> {
        self.reply.recv().expect("service worker dropped a batch reply")
    }
}

/// A concurrent replacement-path query service: `Arc`-shared immutable shards behind a pool of
/// worker threads fed by an mpsc request queue.
///
/// Submitting a batch enqueues it; an idle worker dequeues it, answers every query against the
/// sharded oracle, records metrics, and sends the answers back on the batch's private reply
/// channel. Batches are independent, so clients on different threads get concurrency without
/// coordination; answers within a batch stay in submission order, keeping results bit-for-bit
/// deterministic regardless of worker count.
///
/// Dropping the service (or calling [`shutdown`](QueryService::shutdown)) closes the queue and
/// joins every worker; batches already queued are drained first.
#[derive(Debug)]
pub struct QueryService {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    oracle: Arc<ShardedOracle>,
    metrics: Arc<ServiceMetrics>,
}

impl QueryService {
    /// Starts the worker pool over the given sharded oracle.
    pub fn start(oracle: ShardedOracle, config: &ServiceConfig) -> Self {
        let worker_count = config.workers.max(1);
        let oracle = Arc::new(oracle);
        let metrics = Arc::new(ServiceMetrics::new(oracle.shard_count(), worker_count));
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..worker_count)
            .map(|worker_id| {
                let receiver = Arc::clone(&receiver);
                let oracle = Arc::clone(&oracle);
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || {
                    loop {
                        // Hold the queue lock only while dequeueing, never while answering.
                        let job = match receiver.lock().expect("queue lock").recv() {
                            Ok(job) => job,
                            Err(_) => break, // queue closed: graceful shutdown
                        };
                        let start = Instant::now();
                        // Tally routing locally and flush once per batch; per-query atomics
                        // would make the workers contend (see ServiceMetrics).
                        let mut shard_counts = vec![0u64; oracle.shard_count()];
                        let mut unroutable = 0u64;
                        let answers: Vec<Option<Distance>> = job
                            .queries
                            .iter()
                            .map(|&q| {
                                let (shard, answer) = oracle.query_routed(q);
                                match shard {
                                    Some(i) => shard_counts[i] += 1,
                                    None => unroutable += 1,
                                }
                                answer
                            })
                            .collect();
                        metrics.record_batch_queries(&shard_counts, unroutable);
                        metrics.record_batch(worker_id, start.elapsed());
                        // The submitter may have given up waiting; that is not an error.
                        let _ = job.reply.send(answers);
                    }
                })
            })
            .collect();
        QueryService { sender: Some(sender), workers, oracle, metrics }
    }

    /// Convenience constructor: builds the shards in parallel and starts the pool.
    pub fn build_and_start(
        g: &Graph,
        sources: &[Vertex],
        params: &MsrpParams,
        shards: usize,
        config: &ServiceConfig,
    ) -> Self {
        Self::start(ShardedOracle::build(g, sources, params, shards), config)
    }

    /// Convenience constructor over an already-frozen CSR view (the graph is shared across
    /// every shard construction worker, never copied).
    pub fn build_and_start_csr(
        g: &CsrGraph,
        sources: &[Vertex],
        params: &MsrpParams,
        shards: usize,
        config: &ServiceConfig,
    ) -> Self {
        Self::start(ShardedOracle::build_csr(g, sources, params, shards), config)
    }

    /// Enqueues a batch without waiting for it; pair with [`PendingBatch::wait`].
    pub fn submit(&self, queries: &[Query]) -> PendingBatch {
        let (reply_tx, reply_rx) = channel();
        self.sender
            .as_ref()
            .expect("service is running")
            .send(Job { queries: queries.to_vec(), reply: reply_tx })
            .expect("service queue is open while the service is alive");
        PendingBatch { reply: reply_rx }
    }

    /// Answers a batch synchronously: answers arrive in submission order, one per query
    /// (`None` for unroutable sources, `Some(INFINITE_DISTANCE)` for disconnections).
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Option<Distance>> {
        self.submit(queries).wait()
    }

    /// The sharded oracle the service answers from.
    pub fn oracle(&self) -> &ShardedOracle {
        &self.oracle
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Live metrics snapshot (the service keeps running).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Gracefully shuts down: closes the queue, drains queued batches, joins every worker,
    /// and returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_workers();
        self.metrics.snapshot()
    }

    fn stop_workers(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{cycle_graph, grid_graph};
    use msrp_graph::INFINITE_DISTANCE;

    fn demo_service(workers: usize, shards: usize) -> (Graph, QueryService) {
        let g = grid_graph(4, 4);
        let service = QueryService::build_and_start(
            &g,
            &[0, 5, 15],
            &MsrpParams::default(),
            shards,
            &ServiceConfig { workers },
        );
        (g, service)
    }

    #[test]
    fn sharded_oracle_routes_to_the_owning_shard() {
        let g = cycle_graph(9);
        let oracle = ShardedOracle::build(&g, &[0, 3, 6], &MsrpParams::default(), 3);
        assert_eq!(oracle.shard_count(), 3);
        assert_eq!(oracle.sources(), vec![0, 3, 6]);
        assert_eq!(oracle.shard_for(3), Some(1));
        assert_eq!(oracle.shard_for(4), None);
        assert_eq!(oracle.query(Query::new(0, 4, Edge::new(0, 1))), Some(5));
        assert_eq!(oracle.query(Query::new(4, 0, Edge::new(0, 1))), None);
        assert_eq!(oracle.distance(6, 0), Some(3));
        assert_eq!(oracle.distance(5, 0), None);
        let merged = oracle.into_merged();
        assert_eq!(merged.sources(), &[0, 3, 6]);
    }

    #[test]
    fn shard_count_is_clamped_to_sigma() {
        let g = cycle_graph(6);
        let oracle = ShardedOracle::build(&g, &[0, 2], &MsrpParams::default(), 64);
        assert_eq!(oracle.shard_count(), 2);
        let oracle = ShardedOracle::build(&g, &[0, 2], &MsrpParams::default(), 0);
        assert_eq!(oracle.shard_count(), 1);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_shards_are_rejected() {
        let g = cycle_graph(6);
        let a = ReplacementPathOracle::build_exact(&g, &[0, 1]);
        let b = ReplacementPathOracle::build_exact(&g, &[1]);
        let _ = ShardedOracle::from_shards(vec![a, b]);
    }

    #[test]
    fn batches_are_answered_in_submission_order() {
        let (g, service) = demo_service(3, 2);
        let queries: Vec<Query> =
            (0..g.vertex_count()).map(|t| Query::new(0, t, Edge::new(0, 1))).collect();
        let answers = service.answer_batch(&queries);
        assert_eq!(answers.len(), queries.len());
        let oracle = service.oracle().clone();
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(*a, oracle.query(*q));
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.queries_total, g.vertex_count() as u64);
        assert_eq!(metrics.batch_latency.count, 1);
    }

    #[test]
    fn pipelined_submission_reassembles_correctly() {
        let (g, service) = demo_service(4, 3);
        let batches: Vec<Vec<Query>> = [0usize, 5, 15]
            .iter()
            .map(|&s| (0..g.vertex_count()).map(|t| Query::new(s, t, Edge::new(1, 2))).collect())
            .collect();
        let pending: Vec<PendingBatch> = batches.iter().map(|b| service.submit(b)).collect();
        for (batch, p) in batches.iter().zip(pending) {
            let answers = p.wait();
            for (q, a) in batch.iter().zip(&answers) {
                assert_eq!(*a, service.oracle().query(*q), "q={q:?}");
            }
        }
        let metrics = service.metrics();
        assert_eq!(metrics.queries_total, 3 * g.vertex_count() as u64);
        assert_eq!(metrics.worker_batches.iter().sum::<u64>(), 3);
        assert_eq!(metrics.shard_queries.len(), 3);
    }

    #[test]
    fn unroutable_and_disconnected_queries_are_distinguished() {
        let g = msrp_graph::generators::path_graph(6);
        let service = QueryService::build_and_start(
            &g,
            &[0],
            &MsrpParams::default(),
            1,
            &ServiceConfig::default(),
        );
        let answers = service.answer_batch(&[
            Query::new(0, 5, Edge::new(2, 3)), // bridge: disconnects
            Query::new(3, 5, Edge::new(2, 3)), // 3 is not a source
        ]);
        assert_eq!(answers, vec![Some(INFINITE_DISTANCE), None]);
        let metrics = service.shutdown();
        assert_eq!(metrics.unroutable_total, 1);
    }

    #[test]
    fn shutdown_drains_queued_batches() {
        let (g, service) = demo_service(1, 1);
        let pending: Vec<PendingBatch> = (0..8)
            .map(|i| service.submit(&[Query::new(0, i % g.vertex_count(), Edge::new(0, 1))]))
            .collect();
        let metrics = service.shutdown();
        for p in pending {
            assert_eq!(p.wait().len(), 1);
        }
        assert_eq!(metrics.queries_total, 8);
    }

    #[test]
    fn empty_batches_are_legal() {
        let (_, service) = demo_service(2, 1);
        assert_eq!(service.answer_batch(&[]), Vec::<Option<Distance>>::new());
    }
}
