//! The sharded oracles (unweighted and weighted) and the worker-pool query service built on
//! top of them.
//!
//! The service is generic over a [`RouteOracle`]: the worker pool, queueing, metrics and
//! batch semantics are written once and serve both the hop-metric [`ShardedOracle`] and the
//! weighted [`WeightedShardedOracle`] (whose answers are [`Weight`]s instead of
//! [`Distance`]s). `QueryService` defaults its oracle parameter to `ShardedOracle`, so
//! existing unweighted callers are unaffected.
//!
//! # Untrusted ids
//!
//! Queries reaching a service may come straight off a socket. Both sharded oracles treat
//! out-of-range `target`/edge ids as *unroutable* (`(None, None)`) instead of letting them
//! reach the panicking deep-layer accessors — a malformed `Q` line must never kill a worker
//! thread (the TCP front end additionally rejects such lines with an `ERR` reply before
//! they are ever enqueued; see [`protocol::validate_query`](crate::protocol::validate_query)).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use msrp_core::MsrpParams;
use msrp_graph::{CsrGraph, Distance, Edge, Graph, Vertex, Weight, WeightedCsrGraph};
use msrp_obs::{JournalSnapshot, SlowEntry, SlowLog, SpanJournal, TraceIdGen};
use msrp_oracle::{
    build_shards, build_shards_csr, build_weighted_shards, RebuildStats, ReplacementPathOracle,
    WeightedReplacementOracle,
};

use crate::exposition::{render_exposition, ObsReport};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};

/// One replacement-path query: `QUERY(source, target, avoid)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// The source vertex (must be one of the oracle's sources to be routable).
    pub source: Vertex,
    /// The target vertex.
    pub target: Vertex,
    /// The failed edge to avoid.
    pub avoid: Edge,
}

impl Query {
    /// Builds a query.
    pub fn new(source: Vertex, target: Vertex, avoid: Edge) -> Self {
        Query { source, target, avoid }
    }
}

/// The oracle interface the worker pool serves from: shard-routed, immutable, and safe
/// under arbitrary (including out-of-range) query ids.
///
/// Implementations answer with their own distance type — `Distance` for the hop metric,
/// [`Weight`] for the weighted metric — and must *never panic* on a hostile [`Query`]:
/// out-of-range ids are reported as unroutable, which is what keeps a serving worker alive
/// when a malformed line slips past the protocol boundary.
pub trait RouteOracle: Send + Sync + 'static {
    /// The distance type answers are reported in.
    type Answer: Copy + Send + std::fmt::Debug + 'static;

    /// Number of shards (sizes the per-shard metrics counters).
    fn shard_count(&self) -> usize;

    /// Number of vertices of the underlying graph (the bound protocol-level validation
    /// checks ids against).
    fn vertex_count(&self) -> usize;

    /// Answers one query and reports the shard it was routed to (`None, None` when the
    /// source is unroutable or any id is out of range).
    fn query_routed(&self, q: Query) -> (Option<usize>, Option<Self::Answer>);

    /// Answers a whole batch, one `(shard, answer)` pair per query in order.
    ///
    /// This is the granularity at which a worker consults the oracle, and the hook that
    /// makes epoch-swap serving coherent: an implementation holding mutable-behind-`Arc`
    /// state (like [`EpochOracle`](crate::EpochOracle)) overrides it to resolve that state
    /// **once per batch**, so every answer in a batch comes from the same oracle snapshot
    /// even while a swap lands mid-batch. The default simply routes query by query, which
    /// is correct for immutable oracles.
    fn query_batch_routed(&self, queries: &[Query]) -> Vec<(Option<usize>, Option<Self::Answer>)> {
        queries.iter().map(|&q| self.query_routed(q)).collect()
    }
}

/// `(source, shard index)` pairs sorted by source: the binary-search routing table shared
/// by both sharded oracles.
fn build_route<'a, S: Iterator<Item = &'a [Vertex]>>(shard_sources: S) -> Vec<(Vertex, usize)> {
    let mut route = Vec::new();
    for (i, sources) in shard_sources.enumerate() {
        route.extend(sources.iter().map(|&s| (s, i)));
    }
    route.sort_unstable();
    assert!(route.windows(2).all(|w| w[0].0 != w[1].0), "shards must cover disjoint sources");
    route
}

fn route_lookup(route: &[(Vertex, usize)], source: Vertex) -> Option<usize> {
    route.binary_search_by_key(&source, |&(s, _)| s).ok().map(|i| route[i].1)
}

/// Immutable oracle shards plus a source → shard routing table.
///
/// Each shard is a [`ReplacementPathOracle`] covering a contiguous slice of the sources (the
/// same partition `msrp_oracle::shard_sources` and `build_parallel` use), so shards share
/// nothing and can be queried from any number of threads concurrently — the `Send + Sync`
/// assertions in `msrp-oracle` guarantee this stays true.
#[derive(Clone, Debug)]
pub struct ShardedOracle {
    shards: Vec<ReplacementPathOracle>,
    /// `(source, shard index)` pairs sorted by source, for binary-search routing.
    route: Vec<(Vertex, usize)>,
}

impl ShardedOracle {
    /// Builds `shard_count` shards in parallel (one construction worker per shard) and wires
    /// up the routing table. `shard_count` is clamped to `[1, σ]`.
    ///
    /// # Panics
    ///
    /// Panics on the inputs [`ReplacementPathOracle::build`] rejects (empty, duplicate, or
    /// out-of-range sources) and if a construction worker panics.
    pub fn build(g: &Graph, sources: &[Vertex], params: &MsrpParams, shard_count: usize) -> Self {
        Self::from_shards(build_shards(g, sources, params, shard_count))
    }

    /// Like [`build`](Self::build), but over an already-frozen CSR view: every construction
    /// worker traverses the caller's `CsrGraph` through a shared reference, so the adjacency
    /// structure exists exactly once no matter how many shards are built.
    ///
    /// # Panics
    ///
    /// Same as [`build`](Self::build).
    pub fn build_csr(
        g: &CsrGraph,
        sources: &[Vertex],
        params: &MsrpParams,
        shard_count: usize,
    ) -> Self {
        Self::from_shards(build_shards_csr(g, sources, params, shard_count))
    }

    /// Builds `shard_count` shards with the real Bernstein–Karger preprocessing
    /// (`msrp_oracle::build_bk_shards_csr`: heavy-path cover plus per-cut subtree searches,
    /// one construction worker per shard over the caller's frozen view) and wires up the
    /// routing table. Serves bit-for-bit the same answers as [`build_csr`](Self::build_csr)
    /// and the `build_exact` route — only the preprocessing cost differs. `shard_count` is
    /// clamped to `[1, σ]`.
    ///
    /// # Panics
    ///
    /// Panics on the inputs [`ReplacementPathOracle::build_bk`] rejects (an out-of-range
    /// source; duplicates are rejected by the routing table) and if a construction worker
    /// panics.
    pub fn build_bk_csr(g: &CsrGraph, sources: &[Vertex], shard_count: usize) -> Self {
        Self::from_shards(msrp_oracle::build_bk_shards_csr(g, sources, shard_count))
    }

    /// Wraps pre-built shards (which must cover disjoint source sets).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or two shards share a source.
    pub fn from_shards(shards: Vec<ReplacementPathOracle>) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let route = build_route(shards.iter().map(|s| s.sources()));
        ShardedOracle { shards, route }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices of the underlying graph (every shard sees the same graph).
    pub fn vertex_count(&self) -> usize {
        self.shards[0].vertex_count()
    }

    /// All sources, in ascending order.
    pub fn sources(&self) -> Vec<Vertex> {
        self.route.iter().map(|&(s, _)| s).collect()
    }

    /// Index of the shard owning `source`, or `None` when no shard covers it.
    pub fn shard_for(&self, source: Vertex) -> Option<usize> {
        route_lookup(&self.route, source)
    }

    /// Answers one query by routing it to its shard (`None` when the source is unroutable;
    /// `Some(INFINITE_DISTANCE)` when the failure disconnects the target).
    pub fn query(&self, q: Query) -> Option<Distance> {
        self.query_routed(q).1
    }

    /// Like [`query`](Self::query), but also reports which shard the query was routed to —
    /// one routing lookup serves both the answer and the per-shard accounting.
    ///
    /// A query whose `target` or avoided-edge endpoints are out of range for the graph is
    /// reported as unroutable (`(None, None)`) instead of reaching the oracle's panicking
    /// array accesses: this is the line that keeps a worker thread alive when a hostile
    /// `Q 0 999999999 0 1` arrives over the wire (the regression in `examples/serve_tcp.rs`).
    pub fn query_routed(&self, q: Query) -> (Option<usize>, Option<Distance>) {
        if !query_ids_in_range(&q, self.vertex_count()) {
            return (None, None);
        }
        match self.shard_for(q.source) {
            Some(shard) => {
                (Some(shard), self.shards[shard].replacement_distance(q.source, q.target, q.avoid))
            }
            None => (None, None),
        }
    }

    /// Fault-free distance from `source` to `target` (`None` when `source` is unroutable or
    /// `target` unreachable or out of range).
    pub fn distance(&self, source: Vertex, target: Vertex) -> Option<Distance> {
        // Same guard as the weighted twin: the shard's `distance` indexes its tree's
        // distance array with `target`, and a hostile id must answer `None`, not panic.
        if target >= self.vertex_count() {
            return None;
        }
        let shard = self.shard_for(source)?;
        self.shards[shard].distance(source, target)
    }

    /// The shards, in routing order (read-only; exposed so churn drivers can compare an
    /// incrementally rebuilt shard set against a from-scratch build shard-for-shard).
    pub fn shards(&self) -> &[ReplacementPathOracle] {
        &self.shards
    }

    /// Rebuilds every shard for `g_new` — the served graph with the single edge `changed`
    /// added or removed — through the incremental Bernstein–Karger path
    /// ([`ReplacementPathOracle::rebuild_bk_csr`]), reusing every per-source table the
    /// change provably does not touch. Routing is unchanged (the sources are the same); the
    /// merged [`RebuildStats`] quantify the work saved over a from-scratch
    /// [`build_bk_csr`](Self::build_bk_csr).
    ///
    /// # Panics
    ///
    /// Panics if `g_new` changes the vertex count or `changed` is out of range.
    pub fn rebuild_bk_csr(&self, g_new: &CsrGraph, changed: Edge) -> (Self, RebuildStats) {
        let mut stats = RebuildStats::default();
        let shards = self
            .shards
            .iter()
            .map(|shard| {
                let (next, s) = shard.rebuild_bk_csr(g_new, changed);
                stats.merge(&s);
                next
            })
            .collect();
        (ShardedOracle { shards, route: self.route.clone() }, stats)
    }

    /// Merges the shards back into a single oracle (consumes the sharded view).
    pub fn into_merged(self) -> ReplacementPathOracle {
        ReplacementPathOracle::from_shards(self.shards)
    }
}

/// `true` when every id the oracle will index with is in range. The *source* needs no check:
/// routing is a table lookup, and an out-of-range source is simply not in the table.
fn query_ids_in_range(q: &Query, vertex_count: usize) -> bool {
    // Edge endpoints are normalized (lo < hi), so checking hi covers both.
    q.target < vertex_count && q.avoid.hi() < vertex_count
}

impl RouteOracle for ShardedOracle {
    type Answer = Distance;

    fn shard_count(&self) -> usize {
        ShardedOracle::shard_count(self)
    }

    fn vertex_count(&self) -> usize {
        ShardedOracle::vertex_count(self)
    }

    fn query_routed(&self, q: Query) -> (Option<usize>, Option<Distance>) {
        ShardedOracle::query_routed(self, q)
    }
}

/// Immutable *weighted* oracle shards plus the same source → shard routing table: the
/// weighted mirror of [`ShardedOracle`], answering in [`Weight`]s from Dijkstra trees.
#[derive(Clone, Debug)]
pub struct WeightedShardedOracle {
    shards: Vec<WeightedReplacementOracle>,
    route: Vec<(Vertex, usize)>,
}

impl WeightedShardedOracle {
    /// Builds `shard_count` weighted shards in parallel (one construction worker per shard,
    /// all traversing the caller's frozen weighted view) and wires up the routing table.
    /// `shard_count` is clamped to `[1, σ]`.
    ///
    /// # Panics
    ///
    /// Panics on the inputs [`WeightedReplacementOracle::build`] rejects (empty, duplicate,
    /// or out-of-range sources) and if a construction worker panics.
    pub fn build(g: &WeightedCsrGraph, sources: &[Vertex], shard_count: usize) -> Self {
        Self::from_shards(build_weighted_shards(g, sources, shard_count))
    }

    /// Wraps pre-built weighted shards (which must cover disjoint source sets).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or two shards share a source.
    pub fn from_shards(shards: Vec<WeightedReplacementOracle>) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let route = build_route(shards.iter().map(|s| s.sources()));
        WeightedShardedOracle { shards, route }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices of the underlying graph.
    pub fn vertex_count(&self) -> usize {
        self.shards[0].vertex_count()
    }

    /// All sources, in ascending order.
    pub fn sources(&self) -> Vec<Vertex> {
        self.route.iter().map(|&(s, _)| s).collect()
    }

    /// Index of the shard owning `source`, or `None` when no shard covers it.
    pub fn shard_for(&self, source: Vertex) -> Option<usize> {
        route_lookup(&self.route, source)
    }

    /// Answers one query by routing it to its shard (`None` when the source is unroutable;
    /// `Some(INFINITE_WEIGHT)` when the failure disconnects the target).
    pub fn query(&self, q: Query) -> Option<Weight> {
        self.query_routed(q).1
    }

    /// Like [`query`](Self::query), but also reports the shard. Out-of-range ids are
    /// unroutable, never a panic — same hostile-input contract as
    /// [`ShardedOracle::query_routed`].
    pub fn query_routed(&self, q: Query) -> (Option<usize>, Option<Weight>) {
        if !query_ids_in_range(&q, self.vertex_count()) {
            return (None, None);
        }
        match self.shard_for(q.source) {
            Some(shard) => {
                (Some(shard), self.shards[shard].replacement_distance(q.source, q.target, q.avoid))
            }
            None => (None, None),
        }
    }

    /// Fault-free weighted distance from `source` to `target` (`None` when `source` is
    /// unroutable or `target` unreachable or out of range).
    pub fn distance(&self, source: Vertex, target: Vertex) -> Option<Weight> {
        if target >= self.vertex_count() {
            return None;
        }
        let shard = self.shard_for(source)?;
        self.shards[shard].distance(source, target)
    }

    /// The shards, in routing order (read-only; what the snapshot encoder persists).
    pub fn shards(&self) -> &[WeightedReplacementOracle] {
        &self.shards
    }

    /// Merges the shards back into a single weighted oracle (consumes the sharded view).
    pub fn into_merged(self) -> WeightedReplacementOracle {
        WeightedReplacementOracle::from_shards(self.shards)
    }
}

impl RouteOracle for WeightedShardedOracle {
    type Answer = Weight;

    fn shard_count(&self) -> usize {
        WeightedShardedOracle::shard_count(self)
    }

    fn vertex_count(&self) -> usize {
        WeightedShardedOracle::vertex_count(self)
    }

    fn query_routed(&self, q: Query) -> (Option<usize>, Option<Weight>) {
        WeightedShardedOracle::query_routed(self, q)
    }
}

/// Configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of worker threads answering batches (clamped to at least 1).
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 2 }
    }
}

/// Observability configuration of a [`QueryService`], separate from [`ServiceConfig`] so
/// the many existing construction sites stay untouched: tracing is opt-in via
/// [`QueryService::start_observed`], and the default (all off) is what plain
/// [`QueryService::start`] uses.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Capacity of the span journal ring buffer; `0` disables span tracing entirely.
    pub journal_capacity: usize,
    /// Batches at least this slow are captured — full `(s, t, e)` queries included — in
    /// the slow-query log; `None` disables the log.
    pub slow_query_threshold: Option<Duration>,
    /// Entries the slow-query log retains (most recent win).
    pub slow_log_capacity: usize,
    /// Seed of the batch trace-id sequence: ids depend only on `(seed, submission index)`,
    /// so a seed-pinned workload produces the same trace ids on every run.
    pub trace_seed: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            journal_capacity: 0,
            slow_query_threshold: None,
            slow_log_capacity: 64,
            trace_seed: 0,
        }
    }
}

impl ObsConfig {
    /// `true` when any observability feature is on.
    pub fn enabled(&self) -> bool {
        self.journal_capacity > 0 || self.slow_query_threshold.is_some()
    }
}

/// The per-batch span stages the worker pool journals. Wire/display names are the
/// lower-snake forms (`queue_wait`, `compute`, `reply`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchStage {
    /// Submit → dequeue: time the batch sat in the mpsc queue.
    QueueWait,
    /// Dequeue → answers ready: the oracle consultation (this is also what the
    /// `batch_latency` histogram records).
    Compute,
    /// Answers ready → reply sent on the batch's channel.
    Reply,
}

impl BatchStage {
    /// All stages, in batch-lifecycle order.
    pub const ALL: [BatchStage; 3] =
        [BatchStage::QueueWait, BatchStage::Compute, BatchStage::Reply];

    /// Stable journal stage code.
    pub fn code(self) -> u16 {
        match self {
            BatchStage::QueueWait => 0,
            BatchStage::Compute => 1,
            BatchStage::Reply => 2,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u16) -> Option<BatchStage> {
        BatchStage::ALL.into_iter().find(|s| s.code() == code)
    }

    /// Display/exposition label.
    pub fn name(self) -> &'static str {
        match self {
            BatchStage::QueueWait => "queue_wait",
            BatchStage::Compute => "compute",
            BatchStage::Reply => "reply",
        }
    }
}

/// The observability state shared by the pool and its accessors (present only when
/// [`ObsConfig::enabled`]).
#[derive(Debug)]
struct ServiceObs {
    journal: Option<SpanJournal>,
    trace_ids: TraceIdGen,
    slow: Option<SlowLog<Vec<Query>>>,
}

/// A batch submitted to the service together with the channel its answers travel back on.
struct Job<A> {
    queries: Vec<Query>,
    reply: Sender<Vec<Option<A>>>,
    /// When the batch was enqueued (the start of its queue-wait span).
    submitted: Instant,
    /// Seed-stable trace id (0 when observability is off).
    trace_id: u64,
}

/// A handle to a batch in flight; redeem it with [`wait`](PendingBatch::wait). The answer
/// type defaults to the unweighted [`Distance`]; a weighted service hands out
/// `PendingBatch<Weight>`.
#[must_use = "a pending batch does nothing until waited on"]
pub struct PendingBatch<A = Distance> {
    reply: Receiver<Vec<Option<A>>>,
}

impl<A> PendingBatch<A> {
    /// Blocks until the batch's answers arrive (in submission order).
    ///
    /// # Panics
    ///
    /// Panics if the worker processing the batch died (a worker panic).
    pub fn wait(self) -> Vec<Option<A>> {
        self.reply.recv().expect("service worker dropped a batch reply")
    }
}

/// A concurrent replacement-path query service: `Arc`-shared immutable shards behind a pool of
/// worker threads fed by an mpsc request queue.
///
/// Submitting a batch enqueues it; an idle worker dequeues it, answers every query against the
/// sharded oracle, records metrics, and sends the answers back on the batch's private reply
/// channel. Batches are independent, so clients on different threads get concurrency without
/// coordination; answers within a batch stay in submission order, keeping results bit-for-bit
/// deterministic regardless of worker count.
///
/// Dropping the service (or calling [`shutdown`](QueryService::shutdown)) closes the queue and
/// joins every worker; batches already queued are drained first.
///
/// The service is generic over its [`RouteOracle`] and defaults to the unweighted
/// [`ShardedOracle`]; `QueryService<WeightedShardedOracle>` serves the weighted metric with
/// the identical pool, queue, metrics and ordering semantics.
#[derive(Debug)]
pub struct QueryService<O: RouteOracle = ShardedOracle> {
    sender: Option<Sender<Job<O::Answer>>>,
    workers: Vec<JoinHandle<()>>,
    oracle: Arc<O>,
    metrics: Arc<ServiceMetrics>,
    obs: Option<Arc<ServiceObs>>,
}

impl<O: RouteOracle> QueryService<O> {
    /// Starts the worker pool over the given sharded oracle, with observability off
    /// (equivalent to [`start_observed`](Self::start_observed) with `ObsConfig::default()`).
    pub fn start(oracle: O, config: &ServiceConfig) -> Self {
        Self::start_observed(oracle, config, &ObsConfig::default())
    }

    /// Starts the worker pool with span tracing and/or slow-query logging per `obs`.
    ///
    /// When tracing is on, every batch journals three spans — queue-wait (submit →
    /// dequeue), compute (the oracle consultation), reply (answer channel send) — under a
    /// seed-stable trace id, and batches slower than the configured threshold are captured
    /// whole in the slow-query log. When `obs` is all-off (the default), the only hot-path
    /// additions over the untraced pool are one `Instant::now()` per submit and one branch
    /// per batch (measured in `BENCH_obs.json`).
    pub fn start_observed(oracle: O, config: &ServiceConfig, obs: &ObsConfig) -> Self {
        let worker_count = config.workers.max(1);
        let oracle = Arc::new(oracle);
        let metrics = Arc::new(ServiceMetrics::new(oracle.shard_count(), worker_count));
        let obs_state = obs.enabled().then(|| {
            Arc::new(ServiceObs {
                journal: (obs.journal_capacity > 0).then(|| SpanJournal::new(obs.journal_capacity)),
                trace_ids: TraceIdGen::new(obs.trace_seed),
                slow: obs.slow_query_threshold.map(|t| SlowLog::new(obs.slow_log_capacity, t)),
            })
        });
        let (sender, receiver) = channel::<Job<O::Answer>>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..worker_count)
            .map(|worker_id| {
                let receiver = Arc::clone(&receiver);
                let oracle = Arc::clone(&oracle);
                let metrics = Arc::clone(&metrics);
                let obs = obs_state.clone();
                std::thread::spawn(move || {
                    loop {
                        // Hold the queue lock only while dequeueing, never while answering.
                        let job = match receiver.lock().expect("queue lock").recv() {
                            Ok(job) => job,
                            Err(_) => break, // queue closed: graceful shutdown
                        };
                        let start = Instant::now();
                        // One oracle consultation per batch: epoch-pinning implementations
                        // rely on this being the only point answers are produced. Tally
                        // routing locally and flush once per batch; per-query atomics
                        // would make the workers contend (see ServiceMetrics).
                        let mut shard_counts = vec![0u64; oracle.shard_count()];
                        let mut unroutable = 0u64;
                        let answers: Vec<Option<O::Answer>> = oracle
                            .query_batch_routed(&job.queries)
                            .into_iter()
                            .map(|(shard, answer)| {
                                match shard {
                                    Some(i) => shard_counts[i] += 1,
                                    None => unroutable += 1,
                                }
                                answer
                            })
                            .collect();
                        let computed = Instant::now();
                        metrics.record_batch_queries(&shard_counts, unroutable);
                        metrics.record_batch(worker_id, computed.duration_since(start));
                        // The submitter may have given up waiting; that is not an error.
                        let _ = job.reply.send(answers);
                        if let Some(obs) = obs.as_deref() {
                            let worker = worker_id as u32;
                            if let Some(journal) = &obs.journal {
                                let spans = [
                                    (BatchStage::QueueWait, start.duration_since(job.submitted)),
                                    (BatchStage::Compute, computed.duration_since(start)),
                                    (BatchStage::Reply, computed.elapsed()),
                                ];
                                for (stage, duration) in spans {
                                    journal.record(job.trace_id, stage.code(), worker, duration);
                                }
                            }
                            if let Some(slow) = &obs.slow {
                                // Submit → reply done: the latency a waiting client sees.
                                let total = job.submitted.elapsed();
                                slow.observe(job.trace_id, total, || job.queries.clone());
                            }
                        }
                    }
                })
            })
            .collect();
        QueryService { sender: Some(sender), workers, oracle, metrics, obs: obs_state }
    }

    /// Enqueues a batch without waiting for it; pair with [`PendingBatch::wait`].
    pub fn submit(&self, queries: &[Query]) -> PendingBatch<O::Answer> {
        let (reply_tx, reply_rx) = channel();
        let trace_id = self.obs.as_deref().map_or(0, |o| o.trace_ids.next_id());
        self.sender
            .as_ref()
            .expect("service is running")
            .send(Job {
                queries: queries.to_vec(),
                reply: reply_tx,
                submitted: Instant::now(),
                trace_id,
            })
            .expect("service queue is open while the service is alive");
        PendingBatch { reply: reply_rx }
    }

    /// Answers a batch synchronously: answers arrive in submission order, one per query
    /// (`None` for unroutable sources or out-of-range ids, `Some(∞)` for disconnections).
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Option<O::Answer>> {
        self.submit(queries).wait()
    }

    /// The sharded oracle the service answers from.
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Live metrics snapshot (the service keeps running).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// A shared handle to the live metrics, for recorders outside the worker pool (the
    /// churn driver's rebuild thread records epoch swaps through this while the pool keeps
    /// serving).
    pub fn shared_metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Snapshot of the span journal, or `None` when tracing is off.
    pub fn journal_snapshot(&self) -> Option<JournalSnapshot> {
        self.obs.as_deref().and_then(|o| o.journal.as_ref()).map(|j| j.snapshot())
    }

    /// The retained slow-query entries, oldest first (empty when the log is off).
    pub fn slow_queries(&self) -> Vec<SlowEntry<Vec<Query>>> {
        self.obs.as_deref().and_then(|o| o.slow.as_ref()).map(|s| s.snapshot()).unwrap_or_default()
    }

    /// Total batches that ever exceeded the slow-query threshold (including evicted ones).
    pub fn slow_queries_total(&self) -> u64 {
        self.obs.as_deref().and_then(|o| o.slow.as_ref()).map_or(0, |s| s.recorded())
    }

    /// Renders the Prometheus-style text exposition of the service's current state:
    /// the [`MetricsSnapshot`] families plus, when observability is on, the journal and
    /// slow-query families. This is what the `METRICS` wire verb serves.
    ///
    /// The returned text always ends in exactly one `\n`. The wire framing depends on
    /// this: `METRICS` announces `text.lines().count()` lines and then writes the body
    /// raw, so a missing or doubled trailing newline would desynchronize the header from
    /// the bytes a client actually has to read.
    pub fn render_metrics(&self) -> String {
        let obs_report = self.obs.as_deref().map(|o| ObsReport {
            journal: o.journal.as_ref().map(|j| j.snapshot()),
            slow_total: o.slow.as_ref().map_or(0, |s| s.recorded()),
            slow_threshold: o.slow.as_ref().map(|s| s.threshold()),
        });
        let mut text = render_exposition(&self.metrics.snapshot(), obs_report.as_ref());
        while text.ends_with('\n') {
            text.pop();
        }
        text.push('\n');
        text
    }

    /// Gracefully shuts down: closes the queue, drains queued batches, joins every worker,
    /// and returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_workers();
        self.metrics.snapshot()
    }

    fn stop_workers(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl QueryService {
    /// Convenience constructor: builds the shards in parallel and starts the pool.
    pub fn build_and_start(
        g: &Graph,
        sources: &[Vertex],
        params: &MsrpParams,
        shards: usize,
        config: &ServiceConfig,
    ) -> Self {
        Self::start(ShardedOracle::build(g, sources, params, shards), config)
    }

    /// Convenience constructor over an already-frozen CSR view (the graph is shared across
    /// every shard construction worker, never copied).
    pub fn build_and_start_csr(
        g: &CsrGraph,
        sources: &[Vertex],
        params: &MsrpParams,
        shards: usize,
        config: &ServiceConfig,
    ) -> Self {
        Self::start(ShardedOracle::build_csr(g, sources, params, shards), config)
    }

    /// Convenience constructor serving from Bernstein–Karger-built shards
    /// ([`ShardedOracle::build_bk_csr`]): same pool, queue, metrics, and answers as the
    /// other routes — only the shard preprocessing differs.
    pub fn build_and_start_bk_csr(
        g: &CsrGraph,
        sources: &[Vertex],
        shards: usize,
        config: &ServiceConfig,
    ) -> Self {
        Self::start(ShardedOracle::build_bk_csr(g, sources, shards), config)
    }
}

impl QueryService<WeightedShardedOracle> {
    /// Convenience constructor for the weighted metric: builds the weighted shards in
    /// parallel over the caller's frozen weighted view and starts the pool.
    pub fn build_and_start_weighted(
        g: &WeightedCsrGraph,
        sources: &[Vertex],
        shards: usize,
        config: &ServiceConfig,
    ) -> Self {
        Self::start(WeightedShardedOracle::build(g, sources, shards), config)
    }
}

impl<O: RouteOracle> Drop for QueryService<O> {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{cycle_graph, grid_graph};
    use msrp_graph::INFINITE_DISTANCE;

    fn demo_service(workers: usize, shards: usize) -> (Graph, QueryService) {
        let g = grid_graph(4, 4);
        let service = QueryService::build_and_start(
            &g,
            &[0, 5, 15],
            &MsrpParams::default(),
            shards,
            &ServiceConfig { workers },
        );
        (g, service)
    }

    #[test]
    fn sharded_oracle_routes_to_the_owning_shard() {
        let g = cycle_graph(9);
        let oracle = ShardedOracle::build(&g, &[0, 3, 6], &MsrpParams::default(), 3);
        assert_eq!(oracle.shard_count(), 3);
        assert_eq!(oracle.sources(), vec![0, 3, 6]);
        assert_eq!(oracle.shard_for(3), Some(1));
        assert_eq!(oracle.shard_for(4), None);
        assert_eq!(oracle.query(Query::new(0, 4, Edge::new(0, 1))), Some(5));
        assert_eq!(oracle.query(Query::new(4, 0, Edge::new(0, 1))), None);
        assert_eq!(oracle.distance(6, 0), Some(3));
        assert_eq!(oracle.distance(5, 0), None);
        let merged = oracle.into_merged();
        assert_eq!(merged.sources(), &[0, 3, 6]);
    }

    #[test]
    fn shard_count_is_clamped_to_sigma() {
        let g = cycle_graph(6);
        let oracle = ShardedOracle::build(&g, &[0, 2], &MsrpParams::default(), 64);
        assert_eq!(oracle.shard_count(), 2);
        let oracle = ShardedOracle::build(&g, &[0, 2], &MsrpParams::default(), 0);
        assert_eq!(oracle.shard_count(), 1);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_shards_are_rejected() {
        let g = cycle_graph(6);
        let a = ReplacementPathOracle::build_exact(&g, &[0, 1]);
        let b = ReplacementPathOracle::build_exact(&g, &[1]);
        let _ = ShardedOracle::from_shards(vec![a, b]);
    }

    #[test]
    fn batches_are_answered_in_submission_order() {
        let (g, service) = demo_service(3, 2);
        let queries: Vec<Query> =
            (0..g.vertex_count()).map(|t| Query::new(0, t, Edge::new(0, 1))).collect();
        let answers = service.answer_batch(&queries);
        assert_eq!(answers.len(), queries.len());
        let oracle = service.oracle().clone();
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(*a, oracle.query(*q));
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.queries_total, g.vertex_count() as u64);
        assert_eq!(metrics.batch_latency.count, 1);
    }

    #[test]
    fn pipelined_submission_reassembles_correctly() {
        let (g, service) = demo_service(4, 3);
        let batches: Vec<Vec<Query>> = [0usize, 5, 15]
            .iter()
            .map(|&s| (0..g.vertex_count()).map(|t| Query::new(s, t, Edge::new(1, 2))).collect())
            .collect();
        let pending: Vec<PendingBatch> = batches.iter().map(|b| service.submit(b)).collect();
        for (batch, p) in batches.iter().zip(pending) {
            let answers = p.wait();
            for (q, a) in batch.iter().zip(&answers) {
                assert_eq!(*a, service.oracle().query(*q), "q={q:?}");
            }
        }
        let metrics = service.metrics();
        assert_eq!(metrics.queries_total, 3 * g.vertex_count() as u64);
        assert_eq!(metrics.worker_batches.iter().sum::<u64>(), 3);
        assert_eq!(metrics.shard_queries.len(), 3);
    }

    #[test]
    fn unroutable_and_disconnected_queries_are_distinguished() {
        let g = msrp_graph::generators::path_graph(6);
        let service = QueryService::build_and_start(
            &g,
            &[0],
            &MsrpParams::default(),
            1,
            &ServiceConfig::default(),
        );
        let answers = service.answer_batch(&[
            Query::new(0, 5, Edge::new(2, 3)), // bridge: disconnects
            Query::new(3, 5, Edge::new(2, 3)), // 3 is not a source
        ]);
        assert_eq!(answers, vec![Some(INFINITE_DISTANCE), None]);
        let metrics = service.shutdown();
        assert_eq!(metrics.unroutable_total, 1);
    }

    #[test]
    fn shutdown_drains_queued_batches() {
        let (g, service) = demo_service(1, 1);
        let pending: Vec<PendingBatch> = (0..8)
            .map(|i| service.submit(&[Query::new(0, i % g.vertex_count(), Edge::new(0, 1))]))
            .collect();
        let metrics = service.shutdown();
        for p in pending {
            assert_eq!(p.wait().len(), 1);
        }
        assert_eq!(metrics.queries_total, 8);
    }

    #[test]
    fn empty_batches_are_legal() {
        let (_, service) = demo_service(2, 1);
        assert_eq!(service.answer_batch(&[]), Vec::<Option<Distance>>::new());
    }

    #[test]
    fn out_of_range_queries_are_unroutable_not_panics() {
        // The headline regression: `Q 0 999999999 0 1` used to reach the tree's unchecked
        // `dist[t]` and panic the worker thread.
        let (g, service) = demo_service(2, 2);
        let n = g.vertex_count();
        let hostile = [
            Query::new(0, 999_999_999, Edge::new(0, 1)), // target out of range
            Query::new(0, 3, Edge::new(0, n + 7)),       // edge endpoint out of range
            Query::new(0, 3, Edge::new(usize::MAX - 1, usize::MAX)), // both endpoints hostile
            Query::new(999_999_999, 3, Edge::new(0, 1)), // source out of range
        ];
        for q in hostile {
            assert_eq!(service.oracle().query_routed(q), (None, None), "q={q:?}");
        }
        let answers = service.answer_batch(&hostile);
        assert_eq!(answers, vec![None; hostile.len()]);
        // The workers survived: a well-formed query still gets its exact answer.
        let good = Query::new(0, 3, Edge::new(0, 1));
        assert_eq!(service.answer_batch(&[good])[0], service.oracle().query(good));
        let metrics = service.shutdown();
        assert_eq!(metrics.unroutable_total, hostile.len() as u64);
        assert_eq!(metrics.queries_total, hostile.len() as u64 + 1);
    }

    #[test]
    fn distance_rejects_out_of_range_targets_on_both_oracles() {
        // Regression: the unweighted `distance` used to forward an unchecked `target` into
        // the tree's `dist[t]` indexing — the same shape as the PR 4 headline panic, which
        // only the weighted twin had the guard for.
        let g = cycle_graph(9);
        let oracle = ShardedOracle::build(&g, &[0, 3], &MsrpParams::default(), 2);
        assert_eq!(oracle.distance(0, usize::MAX), None);
        assert_eq!(oracle.distance(0, 9), None);
        assert_eq!(oracle.distance(0, 8), Some(1));
        let (wg, sources) = weighted_demo();
        let weighted = WeightedShardedOracle::build(&wg, &sources, 2);
        assert_eq!(weighted.distance(0, usize::MAX), None);
    }

    #[test]
    fn vertex_count_is_exposed() {
        let (g, service) = demo_service(1, 1);
        assert_eq!(service.oracle().vertex_count(), g.vertex_count());
    }

    fn weighted_demo() -> (msrp_graph::WeightedCsrGraph, Vec<usize>) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(44);
        let g =
            msrp_graph::generators::weighted_connected_gnm(24, 60, 100, &mut rng).unwrap().freeze();
        (g, vec![0, 8, 16])
    }

    #[test]
    fn weighted_service_answers_match_the_weighted_oracle() {
        let (g, sources) = weighted_demo();
        let reference = msrp_oracle::WeightedReplacementOracle::build(&g, &sources);
        let service =
            QueryService::build_and_start_weighted(&g, &sources, 2, &ServiceConfig { workers: 3 });
        let edges = g.edge_vec();
        let queries: Vec<Query> = sources
            .iter()
            .flat_map(|&s| {
                edges.iter().enumerate().map(move |(i, &(e, _))| Query::new(s, i % 24, e))
            })
            .collect();
        let answers = service.answer_batch(&queries);
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(*a, reference.replacement_distance(q.source, q.target, q.avoid), "q={q:?}");
        }
        // Unroutable and hostile queries behave exactly like the unweighted service.
        let hostile = Query::new(0, usize::MAX, Edge::new(0, 1));
        assert_eq!(service.oracle().query_routed(hostile), (None, None));
        assert_eq!(service.answer_batch(&[Query::new(3, 0, edges[0].0)]), vec![None]);
        let metrics = service.shutdown();
        assert_eq!(metrics.queries_total, queries.len() as u64 + 1);
    }

    #[test]
    fn weighted_sharded_oracle_routes_and_merges() {
        let (g, sources) = weighted_demo();
        let oracle = WeightedShardedOracle::build(&g, &sources, 3);
        assert_eq!(oracle.shard_count(), 3);
        assert_eq!(oracle.sources(), sources);
        assert_eq!(oracle.vertex_count(), 24);
        assert_eq!(oracle.shard_for(8), Some(1));
        assert_eq!(oracle.shard_for(9), None);
        assert_eq!(oracle.distance(99, 0), None);
        assert_eq!(oracle.distance(0, usize::MAX), None);
        let whole = msrp_oracle::WeightedReplacementOracle::build(&g, &sources);
        for &s in &sources {
            for t in 0..24 {
                assert_eq!(oracle.distance(s, t), whole.distance(s, t));
                for &(e, _) in g.edge_vec().iter().take(12) {
                    assert_eq!(
                        oracle.query(Query::new(s, t, e)),
                        whole.replacement_distance(s, t, e)
                    );
                }
            }
        }
        let merged = oracle.into_merged();
        assert_eq!(merged.sources(), &sources[..]);
    }
}
