//! Prometheus-style text rendering of the service's metrics — the machine-readable twin of
//! the one-line `STATS` reply.
//!
//! [`render_exposition`] turns a [`MetricsSnapshot`] (plus, when observability is on, a
//! span-journal dump and slow-query counters packaged as an [`ObsReport`]) into the classic
//! `# HELP`/`# TYPE`/sample text format, with every metric under the `msrp_` prefix and
//! every duration in seconds. The output always satisfies `msrp_obs::is_well_formed` — the
//! hostile-input suite storms the renderer during live epoch swaps to pin that down.

use std::time::Duration;

use msrp_obs::{Exposition, JournalSnapshot};

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::service::BatchStage;

/// The observability-plane half of an exposition: journal dump and slow-query accounting,
/// produced by [`QueryService::render_metrics`](crate::QueryService::render_metrics) when
/// tracing is on.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Span journal snapshot (absent when span tracing is off).
    pub journal: Option<JournalSnapshot>,
    /// Total batches that ever exceeded the slow-query threshold.
    pub slow_total: u64,
    /// The configured slow-query threshold (absent when the log is off).
    pub slow_threshold: Option<Duration>,
}

fn histogram(e: &mut Exposition, name: &str, help: &str, h: &HistogramSnapshot) {
    e.histogram_log2(name, help, &h.buckets, h.sum_ns as f64 * 1e-9);
}

/// Renders the full text exposition of a metrics snapshot; pass an [`ObsReport`] to also
/// emit the journal and slow-query families.
pub fn render_exposition(m: &MetricsSnapshot, obs: Option<&ObsReport>) -> String {
    let mut e = Exposition::new();
    e.counter(
        "msrp_queries_total",
        "Queries answered by the worker pool, including unroutable ones.",
        m.queries_total as f64,
    );
    e.counter(
        "msrp_unroutable_total",
        "Queries whose source no shard serves or whose ids were out of range.",
        m.unroutable_total as f64,
    );
    e.gauge("msrp_epoch", "Currently served epoch id (0 until the first swap).", m.epoch as f64);
    e.counter_family("msrp_shard_queries_total", "Queries routed to each oracle shard.");
    for (i, &count) in m.shard_queries.iter().enumerate() {
        e.sample("msrp_shard_queries_total", &[("shard", &i.to_string())], count as f64);
    }
    e.counter_family("msrp_worker_batches_total", "Batches executed by each pool worker.");
    for (i, &count) in m.worker_batches.iter().enumerate() {
        e.sample("msrp_worker_batches_total", &[("worker", &i.to_string())], count as f64);
    }
    histogram(
        &mut e,
        "msrp_batch_latency_seconds",
        "Per-batch compute latency recorded by the executing worker.",
        &m.batch_latency,
    );
    histogram(
        &mut e,
        "msrp_staleness_window_seconds",
        "Epoch-swap staleness window: churn-event arrival to new-epoch publish.",
        &m.staleness_window,
    );
    histogram(
        &mut e,
        "msrp_rebuild_latency_seconds",
        "Oracle reconstruction time of each epoch swap.",
        &m.rebuild_latency,
    );
    e.counter_family(
        "msrp_rebuild_sources_total",
        "Sources processed by each rung of the incremental rebuild ladder.",
    );
    e.counter_family(
        "msrp_rebuild_rung_seconds_total",
        "Wall time spent in each rung of the incremental rebuild ladder.",
    );
    for (rung, count, time) in m.rebuild.rungs() {
        e.sample("msrp_rebuild_sources_total", &[("rung", rung)], count as f64);
        e.sample("msrp_rebuild_rung_seconds_total", &[("rung", rung)], time.as_secs_f64());
    }
    e.counter(
        "msrp_rebuild_cuts_total",
        "Tree-edge cuts a from-scratch rebuild would have re-solved, over all swaps.",
        m.rebuild.cuts_total as f64,
    );
    e.counter(
        "msrp_rebuild_cuts_recomputed_total",
        "Tree-edge cuts the incremental rebuilds actually re-solved.",
        m.rebuild.cuts_recomputed as f64,
    );
    if let Some(obs) = obs {
        if let Some(journal) = &obs.journal {
            e.counter(
                "msrp_journal_events_total",
                "Span events ever recorded into the journal ring buffer.",
                journal.total as f64,
            );
            e.counter(
                "msrp_journal_dropped_total",
                "Span events lost to ring wrap (drops are counted, never blocked on).",
                journal.dropped as f64,
            );
            e.counter_family(
                "msrp_span_seconds_total",
                "Wall time of retained journal spans, by batch stage.",
            );
            e.counter_family(
                "msrp_span_count_total",
                "Number of retained journal spans, by batch stage.",
            );
            for (code, total, count) in journal.totals_by_stage() {
                let stage = match BatchStage::from_code(code) {
                    Some(s) => s.name(),
                    None => "unknown",
                };
                e.sample("msrp_span_seconds_total", &[("stage", stage)], total.as_secs_f64());
                e.sample("msrp_span_count_total", &[("stage", stage)], count as f64);
            }
        }
        if let Some(threshold) = obs.slow_threshold {
            e.gauge(
                "msrp_slow_query_threshold_seconds",
                "Latency threshold of the slow-query log.",
                threshold.as_secs_f64(),
            );
            e.counter(
                "msrp_slow_queries_total",
                "Batches that exceeded the slow-query threshold.",
                obs.slow_total as f64,
            );
        }
    }
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_obs::is_well_formed;
    use msrp_oracle::RebuildStats;
    use std::time::Duration;

    fn demo_snapshot() -> MetricsSnapshot {
        use crate::metrics::ServiceMetrics;
        let m = ServiceMetrics::new(2, 3);
        m.record_batch_queries(&[5, 7], 1);
        m.record_batch(1, Duration::from_micros(90));
        m.record_epoch_swap(
            3,
            Duration::from_micros(400),
            Duration::from_micros(250),
            &RebuildStats {
                sources_total: 4,
                sources_reused: 1,
                sources_patched: 2,
                sources_rebuilt: 1,
                cuts_total: 40,
                cuts_recomputed: 9,
                reuse_time: Duration::from_nanos(700),
                patch_time: Duration::from_micros(60),
                rebuild_time: Duration::from_micros(180),
            },
        );
        m.snapshot()
    }

    #[test]
    fn plain_exposition_is_well_formed_and_complete() {
        let text = render_exposition(&demo_snapshot(), None);
        assert!(is_well_formed(&text), "not well-formed:\n{text}");
        assert!(text.contains("msrp_queries_total 13\n"));
        assert!(text.contains("msrp_unroutable_total 1\n"));
        assert!(text.contains("msrp_epoch 3\n"));
        assert!(text.contains("msrp_shard_queries_total{shard=\"1\"} 7\n"));
        assert!(text.contains("msrp_worker_batches_total{worker=\"1\"} 1\n"));
        assert!(text.contains("msrp_batch_latency_seconds_count 1\n"));
        assert!(text.contains("msrp_rebuild_sources_total{rung=\"patch\"} 2\n"));
        assert!(text.contains("msrp_rebuild_rung_seconds_total{rung=\"rebuild\"} 1.8e-4\n"));
        assert!(text.contains("msrp_rebuild_cuts_recomputed_total 9\n"));
        // Observability families are absent without an ObsReport.
        assert!(!text.contains("msrp_journal"));
        assert!(!text.contains("msrp_slow"));
    }

    #[test]
    fn obs_report_adds_journal_and_slowlog_families() {
        use msrp_obs::SpanJournal;
        let journal = SpanJournal::new(16);
        journal.record(11, BatchStage::QueueWait.code(), 0, Duration::from_micros(5));
        journal.record(11, BatchStage::Compute.code(), 0, Duration::from_micros(80));
        journal.record(11, BatchStage::Reply.code(), 0, Duration::from_micros(2));
        let report = ObsReport {
            journal: Some(journal.snapshot()),
            slow_total: 2,
            slow_threshold: Some(Duration::from_millis(50)),
        };
        let text = render_exposition(&demo_snapshot(), Some(&report));
        assert!(is_well_formed(&text), "not well-formed:\n{text}");
        assert!(text.contains("msrp_journal_events_total 3\n"));
        assert!(text.contains("msrp_journal_dropped_total 0\n"));
        assert!(text.contains("msrp_span_count_total{stage=\"compute\"} 1\n"));
        assert!(text.contains("msrp_span_seconds_total{stage=\"queue_wait\"} 5e-6\n"));
        assert!(text.contains("msrp_slow_queries_total 2\n"));
        assert!(text.contains("msrp_slow_query_threshold_seconds 5e-2\n"));
    }
}
