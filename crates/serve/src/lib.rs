//! `msrp-serve`: a concurrent, sharded replacement-path query service.
//!
//! The Bernstein–Karger-style oracle of `msrp-oracle` is read-only after construction, which
//! makes it a natural fit for a shared-nothing serving architecture: the σ sources are sharded
//! across independent [`ReplacementPathOracle`](msrp_oracle::ReplacementPathOracle)s (built in
//! parallel, one worker per shard), and queries are routed to the shard owning their source.
//! This crate turns that observation into a subsystem:
//!
//! * [`ShardedOracle`] — immutable, `Arc`-shareable shards plus a source → shard routing table;
//! * [`QueryService`] — a worker pool fed by an mpsc request queue, with a batch-query API
//!   ([`answer_batch`](QueryService::answer_batch)), pipelined submission
//!   ([`submit`](QueryService::submit)), and graceful shutdown;
//! * [`metrics`] — log-bucketed latency histograms (p50/p99/max) and per-shard/per-worker
//!   throughput counters;
//! * [`exposition`] — a Prometheus-style text rendering of those metrics (plus span-journal
//!   and slow-query families from `msrp-obs`), served over the wire by the `METRICS` verb;
//! * [`loadgen`] — a deterministic, seed-pinned closed-loop load generator for driving the
//!   service from N client threads;
//! * [`protocol`] — the newline-delimited text protocol spoken by the TCP front end
//!   (`examples/serve_tcp.rs` in the workspace root);
//! * [`wire`] — bounded line reading for that front end, capping what a hostile
//!   newline-free connection can make the server buffer;
//! * [`snapshot`] — boot-from-snapshot paths over `msrp-snap`, so a serving process can
//!   adopt a persisted oracle instead of re-running construction.
//!
//! # Determinism
//!
//! Nothing in the service introduces nondeterminism into *answers*: shards are pure functions
//! of `(graph, sources, params, shard_count)`, each query is answered from immutable state, and
//! batches are returned in submission order. Thread scheduling only affects timings. The
//! concurrency property suite (`tests/service_properties.rs`) pins seeds and asserts that
//! service answers agree bit-for-bit with the single-threaded oracle and with brute-force
//! ground truth across worker/shard counts.
//!
//! # Quick example
//!
//! ```
//! use msrp_core::MsrpParams;
//! use msrp_graph::{generators::cycle_graph, Edge};
//! use msrp_serve::{Query, QueryService, ServiceConfig, ShardedOracle};
//!
//! let g = cycle_graph(8);
//! let oracle = ShardedOracle::build(&g, &[0, 4], &MsrpParams::default(), 2);
//! let service = QueryService::start(oracle, &ServiceConfig::default());
//! let answers = service.answer_batch(&[Query::new(0, 3, Edge::new(1, 2))]);
//! assert_eq!(answers, vec![Some(5)]);
//! let metrics = service.shutdown();
//! assert_eq!(metrics.queries_total, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod exposition;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod service;
pub mod snapshot;
pub mod wire;

pub use epoch::{Epoch, EpochOracle};
pub use exposition::{render_exposition, ObsReport};
pub use loadgen::{random_queries, run_closed_loop, run_closed_loop_on, LoadConfig, LoadReport};
pub use metrics::{HistogramSnapshot, LatencyHistogram, MetricsSnapshot, ServiceMetrics};
pub use protocol::{
    format_answer, format_metrics_header, format_query, format_stats, format_weighted_answer,
    format_weighted_query, parse_answer, parse_metrics_header, parse_request, parse_stats,
    parse_weighted_answer, validate_query, ProtocolError, Request, StatsReply,
};
pub use service::{
    BatchStage, ObsConfig, PendingBatch, Query, QueryService, RouteOracle, ServiceConfig,
    ShardedOracle, WeightedShardedOracle,
};
pub use wire::{read_line_bounded, LineOutcome, MAX_LINE_BYTES};
