//! Model-aware drop-in replacements for the `std` sync types re-exported by
//! [`crate::sync`] when the `model` feature is on.
//!
//! Every shim value carries a real `std` twin. Outside a model run (no scheduler on this
//! thread) each operation delegates straight to the twin with the caller's ordering, so
//! test builds behave exactly like production modulo one thread-local lookup. Inside a
//! model run, values created during scenario setup are *registered locations*: their
//! operations park at the scheduler in [`crate::model`] and their values come from the
//! explored store history, not the twin.
//!
//! A shim value created outside the model (or in a previous execution) must not be
//! touched from a model thread — that would silently exclude it from exploration, so it
//! panics instead of lying.

use std::sync::atomic::Ordering;
use std::sync::{LockResult, OnceLock, PoisonError, TryLockError};

use crate::model::{current_ctx, AtomOp, Ctx};

/// Location registration: `(run id, location index)` once model-registered.
type Loc = OnceLock<(u64, usize)>;

/// Resolves how an operation on a shim value must execute.
fn route(loc: &Loc) -> Option<(Ctx, usize)> {
    let ctx = current_ctx()?;
    match loc.get() {
        Some(&(run, idx)) if run == ctx.run_id() => Some((ctx, idx)),
        Some(_) => panic!(
            "shim value from a previous model execution accessed inside a model run; \
             scenarios must rebuild all state in their setup closure"
        ),
        None => panic!(
            "shim value created outside the model accessed from a model thread; \
             create it in the scenario setup so the explorer can track it"
        ),
    }
}

macro_rules! model_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Model-aware atomic; see the module docs for the passthrough/model split.
        #[derive(Debug)]
        pub struct $name {
            inner: $std,
            loc: Loc,
        }

        #[allow(clippy::unnecessary_cast)] // the `as u64` widenings are no-ops for u64
        impl $name {
            /// Creates the atomic; registers it as a model location when called from a
            /// scenario setup closure.
            pub fn new(v: $prim) -> Self {
                let loc = OnceLock::new();
                if let Some(ctx) = current_ctx() {
                    let reg = ctx.register_atom(v as u64);
                    loc.set(reg).expect("freshly created OnceLock");
                }
                $name { inner: <$std>::new(v), loc }
            }

            /// Loads the value with the given ordering.
            pub fn load(&self, order: Ordering) -> $prim {
                match route(&self.loc) {
                    Some((ctx, idx)) => ctx.op(idx, AtomOp::Load(order)) as $prim,
                    None => self.inner.load(order),
                }
            }

            /// Stores `v` with the given ordering.
            pub fn store(&self, v: $prim, order: Ordering) {
                match route(&self.loc) {
                    Some((ctx, idx)) => {
                        ctx.op(idx, AtomOp::Store(v as u64, order));
                    }
                    None => self.inner.store(v, order),
                }
            }

            /// Adds `v`, returning the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                match route(&self.loc) {
                    Some((ctx, idx)) => ctx.op(idx, AtomOp::FetchAdd(v as u64, order)) as $prim,
                    None => self.inner.fetch_add(v, order),
                }
            }

            /// Maximizes with `v`, returning the previous value.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                match route(&self.loc) {
                    Some((ctx, idx)) => ctx.op(idx, AtomOp::FetchMax(v as u64, order)) as $prim,
                    None => self.inner.fetch_max(v, order),
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }
    };
}

model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Model-aware reader-writer lock; see the module docs for the passthrough/model split.
///
/// In model runs the *scheduler* provides mutual exclusion (acquires are choice points,
/// holders block rivals), and the inner `std` lock is then taken without contention so
/// guards still carry poisoning semantics identical to `std`.
#[derive(Debug)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    loc: Loc,
}

impl<T> RwLock<T> {
    /// Creates the lock; registers it as a model location when called from setup.
    pub fn new(value: T) -> Self {
        let loc = OnceLock::new();
        if let Some(ctx) = current_ctx() {
            let reg = ctx.register_lock();
            loc.set(reg).expect("freshly created OnceLock");
        }
        RwLock { inner: std::sync::RwLock::new(value), loc }
    }

    /// Acquires a shared read guard (blocking in the model sense: the acquiring thread
    /// is unrunnable until no writer holds the lock).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match route(&self.loc) {
            Some((ctx, idx)) => {
                ctx.op(idx, AtomOp::LockRead);
                match self.inner.try_read() {
                    Ok(g) => Ok(RwLockReadGuard { inner: Some(g), model: Some((ctx, idx)) }),
                    Err(TryLockError::Poisoned(pe)) => Err(PoisonError::new(RwLockReadGuard {
                        inner: Some(pe.into_inner()),
                        model: Some((ctx, idx)),
                    })),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model scheduler granted a contended read lock")
                    }
                }
            }
            None => match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard { inner: Some(g), model: None }),
                Err(pe) => Err(PoisonError::new(RwLockReadGuard {
                    inner: Some(pe.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Acquires the exclusive write guard (blocking in the model sense).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match route(&self.loc) {
            Some((ctx, idx)) => {
                ctx.op(idx, AtomOp::LockWrite);
                match self.inner.try_write() {
                    Ok(g) => Ok(RwLockWriteGuard { inner: Some(g), model: Some((ctx, idx)) }),
                    Err(TryLockError::Poisoned(pe)) => Err(PoisonError::new(RwLockWriteGuard {
                        inner: Some(pe.into_inner()),
                        model: Some((ctx, idx)),
                    })),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model scheduler granted a contended write lock")
                    }
                }
            }
            None => match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard { inner: Some(g), model: None }),
                Err(pe) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: Some(pe.into_inner()),
                    model: None,
                })),
            },
        }
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // Release the inner std lock first so the next model thread the scheduler
        // grants can take it uncontended.
        drop(self.inner.take());
        if let Some((ctx, idx)) = self.model.take() {
            if std::thread::panicking() {
                ctx.release_during_unwind(idx, false);
            } else {
                ctx.op(idx, AtomOp::UnlockRead);
            }
        }
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((ctx, idx)) = self.model.take() {
            if std::thread::panicking() {
                ctx.release_during_unwind(idx, true);
            } else {
                ctx.op(idx, AtomOp::UnlockWrite);
            }
        }
    }
}
