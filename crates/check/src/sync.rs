//! The sync facade: `std` aliases in normal builds, model shims under `feature = "model"`.
//!
//! Code in the lock-free plane imports its synchronization primitives from here instead
//! of `std::sync`. The two configurations expose the same API surface:
//!
//! * **Normal builds** (`model` off — every `cargo build`, including `--release`): pure
//!   re-exports of the `std` types. No wrapper, no branch, no cost; the compiled code is
//!   bit-identical to importing `std::sync` directly.
//! * **Model builds** (`model` on — every `cargo test`, through the self-dev-dependency
//!   in this crate's manifest): shim types (`crate::shim`) that pass straight through to
//!   an embedded `std` twin outside a model run, and yield each operation to the
//!   `crate::model` scheduler inside one.
//!
//! [`Ordering`] and [`Arc`] are always the `std` items: orderings are data the shims
//!   interpret, and `Arc` needs no scheduling semantics (it is never a yield point the
//!   structures under test synchronize through).

pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicU64, AtomicUsize};
#[cfg(not(feature = "model"))]
pub use std::sync::RwLock;

#[cfg(feature = "model")]
pub use crate::shim::{AtomicU64, AtomicUsize, RwLock, RwLockReadGuard, RwLockWriteGuard};
