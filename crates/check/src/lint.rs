//! The repo lint wall: hand-rolled line/token scanning enforcing the workspace's
//! concurrency-hygiene rules (the container builds offline, so no `syn`, no registry —
//! the scanner works on raw source lines the way `large_tier_guard` walks files).
//!
//! # Rules
//!
//! | rule | what it defends |
//! |------|-----------------|
//! | `ordering-justified` | Every `Ordering::` site outside the shim crates carries an `// ordering:` comment stating the happens-before edge it provides (or why none is needed). The PR 6 quantile race survived review because the orderings *looked* routine; the comment forces the argument to be written down where the diff shows it. |
//! | `no-unsafe` | `unsafe` stays confined to the vendored shim crates (`crates/rand`, `crates/criterion` — which currently also forbid it). Every first-party crate carries `#![forbid(unsafe_code)]`; the lint stops the attribute from being quietly dropped. |
//! | `no-sleep-sync` | `thread::sleep` in test code is almost always a hidden synchronization bug (sleeping until a racing thread "should" be done). Tests must synchronize on channels, joins, or the model checker. |
//! | `no-as-id-narrowing` | In `crates/serve/src/protocol.rs`, id values cross the trust boundary as `u64` and must never be narrowed with a raw `as` cast (silent truncation turned hostile ids into valid-looking ones before PR 4 added validation). Use `try_from` with explicit rejection. |
//!
//! # Allowlist format
//!
//! A violating line may carry a same-line trailing marker:
//!
//! ```text
//! some_code(); // lint: allow(rule-name) one-line reason
//! ```
//!
//! Allowlist entries are themselves counted and reported; CI runs the binary with
//! `--max-allow 0` so any new entry fails the build until the cap is consciously raised
//! in the workflow file (zero-growth policy).

use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, also the names used in `lint: allow(...)` markers.
pub const RULES: [&str; 4] =
    ["ordering-justified", "no-unsafe", "no-sleep-sync", "no-as-id-narrowing"];

/// Crates whose sources are exempt from `ordering-justified`, `no-unsafe`, and
/// `no-sleep-sync`: the model shims themselves (whose scanner must be able to spell the
/// patterns it scans for) and the vendored offline shims.
pub const SHIM_CRATES: [&str; 3] = ["crates/check", "crates/rand", "crates/criterion"];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.excerpt)
    }
}

/// Scan outcome for a file set: violations plus the allowlist entries that suppressed
/// others (counted so CI can enforce zero growth).
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Violations not covered by an allowlist marker.
    pub violations: Vec<Violation>,
    /// `(file, line, rule)` of every allowlist marker that actually suppressed a hit.
    pub allowed: Vec<(String, usize, &'static str)>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Strips the line-comment tail (`// ...`) from a source line, honoring string literals
/// well enough for this codebase (no raw strings containing `//` on lint-relevant lines).
fn code_part(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// The comment tail of a line (everything from `//`), if any.
fn comment_part(line: &str) -> Option<&str> {
    let code = code_part(line);
    if code.len() < line.len() {
        Some(&line[code.len()..])
    } else {
        None
    }
}

/// True if `line` carries an `// ordering:` justification, either as a trailing comment
/// or anywhere in the contiguous `//` comment block immediately above it (multi-line
/// justifications are the norm for the interesting sites).
fn has_ordering_justification(lines: &[&str], idx: usize) -> bool {
    if comment_part(lines[idx]).is_some_and(|c| c.contains("ordering:")) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let prev = lines[i].trim_start();
        if !prev.starts_with("//") {
            return false;
        }
        if prev.contains("ordering:") {
            return true;
        }
    }
    false
}

/// True if the line allows `rule` via a `lint: allow(rule)` marker.
fn has_allow(line: &str, rule: &str) -> bool {
    comment_part(line).is_some_and(|c| c.contains(&format!("lint: allow({rule})")))
}

/// Whether a word occurs in `code` at word boundaries (identifier characters on neither
/// side), so `unsafe_code` or `forbid(unsafe_code)` never match the `unsafe` token.
fn has_word(code: &str, word: &str) -> bool {
    let ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// True when `path` (repo-relative, `/`-separated) lies inside one of the shim crates.
fn in_shim_crate(path: &str) -> bool {
    SHIM_CRATES.iter().any(|c| path.starts_with(&format!("{c}/")))
}

/// True when `path` is test code for the purposes of `no-sleep-sync`: an integration
/// test, a bench, an example, or any file containing a `#[cfg(test)]` module.
fn is_test_code(path: &str, text: &str) -> bool {
    path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("tests/")
        || path.starts_with("examples/")
        || text.contains("#[cfg(test)]")
}

/// Scans one file's text. `path` must be repo-relative with `/` separators.
pub fn scan_source(path: &str, text: &str, report: &mut LintReport) {
    report.files_scanned += 1;
    let lines: Vec<&str> = text.lines().collect();
    let shim = in_shim_crate(path);
    let test_code = is_test_code(path, text);
    let is_protocol = path == "crates/serve/src/protocol.rs";
    let push = |report: &mut LintReport, line_no: usize, rule: &'static str, line: &str| {
        if has_allow(line, rule) {
            report.allowed.push((path.to_string(), line_no, rule));
        } else {
            report.violations.push(Violation {
                file: path.to_string(),
                line: line_no,
                rule,
                excerpt: line.trim().to_string(),
            });
        }
    };
    for (i, &line) in lines.iter().enumerate() {
        let code = code_part(line);
        let line_no = i + 1;
        if !shim && code.contains("Ordering::") && !has_ordering_justification(&lines, i) {
            push(report, line_no, "ordering-justified", line);
        }
        if !shim && has_word(code, "unsafe") {
            push(report, line_no, "no-unsafe", line);
        }
        if test_code && !shim && code.contains("thread::sleep") {
            push(report, line_no, "no-sleep-sync", line);
        }
        if is_protocol {
            // Raw `as` casts onto sub-u64 integer widths (ids travel as u64; any such
            // cast silently truncates a hostile id into a plausible one).
            for target in ["as u8", "as u16", "as u32", "as usize", "as i8", "as i16", "as i32"] {
                let narrow =
                    code.find(target).is_some_and(|p| !code[p + target.len()..].starts_with('_'));
                if narrow {
                    push(report, line_no, "no-as-id-narrowing", line);
                    break;
                }
            }
        }
    }
}

/// Recursively collects every `.rs` file under `dir` (skipping `target/`).
pub fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|f| f == "target" || f == ".git") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans the whole workspace rooted at `root` (its `crates/`, `src/`, `tests/`,
/// `examples/` trees) and returns the combined report.
pub fn scan_workspace(root: &Path) -> LintReport {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        rust_sources(&root.join(top), &mut files);
    }
    let mut report = LintReport::default();
    for file in files {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        scan_source(&rel, &text, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_one(path: &str, text: &str) -> LintReport {
        let mut r = LintReport::default();
        scan_source(path, text, &mut r);
        r
    }

    #[test]
    fn unjustified_ordering_is_flagged_and_justified_is_not() {
        let bad = "let x = a.load(Ordering::Relaxed);\n";
        let r = scan_one("crates/obs/src/x.rs", bad);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "ordering-justified");
        assert_eq!(r.violations[0].line, 1);

        let same_line = "let x = a.load(Ordering::Relaxed); // ordering: counter, no edge\n";
        assert!(scan_one("crates/obs/src/x.rs", same_line).violations.is_empty());

        let line_above = "// ordering: pairs with the Release store in record()\nlet x = a.load(Ordering::Acquire);\n";
        assert!(scan_one("crates/obs/src/x.rs", line_above).violations.is_empty());

        // Multi-line justification blocks count for the line they precede...
        let block = "// ordering: Acquire — pairs with the committed Release stamp;\n// the recheck below depends on it.\nlet x = a.load(Ordering::Acquire);\n";
        assert!(scan_one("crates/obs/src/x.rs", block).violations.is_empty());
        // ...but a block does not leak past intervening code.
        let gap =
            "// ordering: justified up here\nlet y = 1;\nlet x = a.load(Ordering::Relaxed);\n";
        assert_eq!(scan_one("crates/obs/src/x.rs", gap).violations.len(), 1);
    }

    #[test]
    fn ordering_in_comments_and_shim_crates_is_exempt() {
        let comment_only = "// the stamp is loaded with Ordering::Acquire twice\n";
        assert!(scan_one("crates/obs/src/x.rs", comment_only).violations.is_empty());
        let shim = "let x = a.load(Ordering::Relaxed);\n";
        assert!(scan_one("crates/check/src/model.rs", shim).violations.is_empty());
        assert!(scan_one("crates/rand/src/lib.rs", shim).violations.is_empty());
    }

    #[test]
    fn unsafe_is_flagged_outside_shims_but_attributes_are_not() {
        let bad = "unsafe { *ptr }\n";
        let r = scan_one("crates/graph/src/csr.rs", bad);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "no-unsafe");
        // The forbid attribute itself must stay legal — `unsafe_code` is not the token.
        assert!(scan_one("crates/graph/src/lib.rs", "#![forbid(unsafe_code)]\n")
            .violations
            .is_empty());
        // And shim crates may use it.
        assert!(scan_one("crates/rand/src/lib.rs", bad).violations.is_empty());
    }

    #[test]
    fn sleep_is_flagged_in_test_code_only() {
        let sleepy = "std::thread::sleep(Duration::from_millis(50));\n";
        let r = scan_one("crates/serve/tests/foo.rs", sleepy);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "no-sleep-sync");
        // Non-test code may sleep (e.g. a polling loadgen pacing itself).
        assert!(scan_one("crates/serve/src/loadgen.rs", sleepy).violations.is_empty());
        // A #[cfg(test)] module inside a src file counts as test code.
        let module = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::sleep(d); }\n}\n";
        assert_eq!(scan_one("crates/serve/src/service.rs", module).violations.len(), 1);
    }

    #[test]
    fn id_narrowing_casts_are_flagged_in_protocol_only() {
        let bad = "let shard = id as u32;\n";
        let r = scan_one("crates/serve/src/protocol.rs", bad);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "no-as-id-narrowing");
        // Widening to u64 is fine, and other files are out of scope for this rule.
        assert!(scan_one("crates/serve/src/protocol.rs", "let x = n as u64;\n")
            .violations
            .is_empty());
        assert!(scan_one("crates/serve/src/service.rs", bad).violations.is_empty());
    }

    #[test]
    fn allow_markers_suppress_and_are_counted() {
        let allowed = "let shard = id as u32; // lint: allow(no-as-id-narrowing) bounded above\n";
        let r = scan_one("crates/serve/src/protocol.rs", allowed);
        assert!(r.violations.is_empty());
        assert_eq!(r.allowed.len(), 1);
        assert_eq!(r.allowed[0].2, "no-as-id-narrowing");
        // The marker names a specific rule: it does not blanket-allow others.
        let wrong_rule = "unsafe { x } // lint: allow(no-as-id-narrowing) nope\n";
        assert_eq!(scan_one("crates/graph/src/a.rs", wrong_rule).violations.len(), 1);
    }

    #[test]
    fn string_literals_do_not_hide_or_fake_violations() {
        // `//` inside a string is not a comment — the cast after it is still seen.
        let tricky = "let s = \"//\"; let x = id as u32;\n";
        assert_eq!(scan_one("crates/serve/src/protocol.rs", tricky).violations.len(), 1);
        // An Ordering:: mention inside a string still needs no justification? It is
        // code-part text, so it does: write the comment. (Pinned so the rule stays
        // conservative rather than quietly lenient.)
        let in_string = "let s = \"Ordering::Relaxed\";\n";
        assert_eq!(scan_one("crates/obs/src/x.rs", in_string).violations.len(), 1);
    }
}
