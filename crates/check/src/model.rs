//! A loom-style bounded model checker: exhaustive DFS over thread interleavings *and*
//! weak-memory read choices, for scenarios written against [`crate::sync`] shim types.
//!
//! # What is explored
//!
//! A scenario is a closure returning a [`Scenario`]: a setup phase (run inline on the
//! controlling thread) plus N thread closures. The explorer runs the scenario once per
//! *schedule*: all model threads execute for real (on a reused worker pool), but every
//! shim-atomic operation parks the thread and hands control to the scheduler, which
//! decides — as an explicit DFS choice point — which parked thread performs its pending
//! operation next. Two kinds of choice point exist:
//!
//! 1. **Thread choice** — which runnable thread steps. Alternatives are ordered
//!    round-robin starting after the thread that stepped last, so the first (default)
//!    schedule is a fine-grained rotation and backtracking explores the rest.
//! 2. **Read choice** — which store a load observes. Each atomic location keeps a bounded
//!    history of stores (its modification order, linearized by the schedule); a load may
//!    read any store not superseded by one that happens-before the loading thread
//!    (C11 write-read coherence via per-thread vector clocks) and not older than the
//!    thread's previous read of the location (read-read coherence). `Acquire` loads
//!    joining a `Release` store's clock is exactly the synchronizes-with edge — so a
//!    `Relaxed` load where an `Acquire` was required shows up as a *stale value the DFS
//!    can actually pick*, and the resulting assertion failure carries a concrete
//!    interleaving trace.
//!
//! The first alternative of a read choice is always the newest store, so the default
//! schedule behaves like a sequentially consistent execution and weak behaviors appear
//! only under backtracking.
//!
//! # Approximations (documented, deliberate)
//!
//! * Modification order is the schedule's execution order (no reordering of stores to the
//!   same location), and `SeqCst` is modeled as `AcqRel` — we do not build the SC total
//!   order. Nothing in this workspace relies on `SeqCst`-only guarantees; the lint wall
//!   keeps it that way.
//! * Release sequences are continued through RMWs (an RMW's store inherits the sync
//!   clock of the store it read when the RMW itself is not `Release`) but broken by
//!   plain relaxed stores, matching C++20.
//! * Store histories are capped at [`ModelConfig::history_cap`]; a load's admissible set
//!   never reaches below the cap. This bounds read choices like the schedule budget
//!   bounds thread choices.
//!
//! # Bounded by default
//!
//! [`ModelConfig::default`] caps the DFS at a fixed schedule budget so model tests stay
//! cheap under plain `cargo test -q`; setting `MSRP_MODEL_EXHAUSTIVE=1` removes the cap
//! and lets every `explore` run to DFS exhaustion. The DFS order is deterministic (no
//! randomness anywhere), so a failing schedule is replayable with [`replay`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Thread id of the controlling (setup / `finally`) pseudo-thread.
const CONTROLLER: usize = 0;

/// How long a scheduler handshake may stall before the model declares itself broken.
/// This is an internal watchdog, not part of the explored semantics.
const WATCHDOG: Duration = Duration::from_secs(30);

/// Panic payload used to unwind model threads after a failure elsewhere; the worker
/// harness swallows it instead of reporting it as a second failure.
struct ModelAbort;

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Maximum number of schedules the DFS runs before giving up on exhaustion. Lifted
    /// to `usize::MAX` when the `MSRP_MODEL_EXHAUSTIVE` environment variable is set to
    /// a non-empty, non-`0` value.
    pub max_schedules: usize,
    /// Per-execution step bound; exceeding it is reported as a failure (livelock).
    pub max_steps: usize,
    /// Stores retained per atomic location for the read-choice history.
    pub history_cap: usize,
}

impl ModelConfig {
    /// The default schedule budget under plain `cargo test -q` (see the guard test
    /// `tests/model_budget_guard.rs`).
    pub const DEFAULT_BUDGET: usize = 3000;

    /// Budget actually in force: `max_schedules`, or unlimited under
    /// `MSRP_MODEL_EXHAUSTIVE=1`.
    pub fn effective_budget(&self) -> usize {
        match std::env::var("MSRP_MODEL_EXHAUSTIVE") {
            Ok(v) if !v.is_empty() && v != "0" => usize::MAX,
            _ => self.max_schedules,
        }
    }

    /// A config with a specific schedule budget (still lifted by the env override).
    pub fn with_budget(max_schedules: usize) -> Self {
        ModelConfig { max_schedules, ..ModelConfig::default() }
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { max_schedules: Self::DEFAULT_BUDGET, max_steps: 20_000, history_cap: 16 }
    }
}

/// One concurrent scenario: thread bodies plus an optional quiesced check.
pub struct Scenario {
    /// Thread closures; all are logically spawned at once after setup.
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Runs on the controlling thread after every model thread finished, with the model
    /// still active (its loads see the joined final state deterministically).
    pub finally: Option<Box<dyn FnOnce() + Send>>,
}

impl Scenario {
    /// A scenario with the given thread bodies and no final check.
    pub fn new(threads: Vec<Box<dyn FnOnce() + Send>>) -> Self {
        Scenario { threads, finally: None }
    }
}

/// Outcome of an [`explore`] / [`replay`] call.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules (distinct interleavings) executed.
    pub schedules: usize,
    /// True when the DFS tree was fully explored within the budget.
    pub exhausted: bool,
    /// Deepest decision stack seen (choice points in the longest schedule).
    pub max_depth: usize,
    /// Total scheduler steps across all schedules.
    pub total_steps: usize,
    /// The first failing schedule, if any invariant broke.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with the failing trace if the exploration found a violation; returns the
    /// report otherwise. The usual way to end a model test.
    #[track_caller]
    pub fn assert_ok(self) -> Report {
        if let Some(f) = &self.failure {
            panic!("{}", f.render());
        }
        self
    }
}

/// A concrete failing schedule: the invariant violation plus the exact interleaving.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic / violation message.
    pub message: String,
    /// Decision indices reproducing the schedule via [`replay`].
    pub schedule: Vec<usize>,
    /// Human-readable operation trace of the failing execution.
    pub trace: Vec<String>,
}

impl Failure {
    /// Multi-line rendering: message, schedule, trace.
    pub fn render(&self) -> String {
        let mut out =
            format!("model invariant violated: {}\nschedule: {:?}\n", self.message, self.schedule);
        for line in &self.trace {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Vector clocks, store histories, lock state
// ---------------------------------------------------------------------------

/// A vector clock over `1 + N` threads (component 0 is the controller).
#[derive(Clone, Debug, Default, PartialEq)]
struct VClock(Vec<u64>);

impl VClock {
    fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }
    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }
    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }
}

/// One store in a location's modification order.
#[derive(Clone, Debug)]
struct StoreRec {
    value: u64,
    /// Writing thread and its local time at the store — the happens-before test.
    writer: usize,
    tick: u64,
    /// Clock an acquire load of this store joins (release stores and release-sequence
    /// continuations); `None` for plain relaxed stores.
    sync: Option<VClock>,
}

/// One shim-atomic location.
#[derive(Debug)]
struct Location {
    /// Bounded modification-order suffix; `base` is the global index of `history[0]`.
    history: Vec<StoreRec>,
    base: usize,
    /// Per-thread global index of the last store each thread read (read-read coherence).
    last_read: Vec<usize>,
}

/// One shim-`RwLock` location.
#[derive(Debug, Default)]
struct LockState {
    readers: Vec<usize>,
    writer: Option<usize>,
    /// Release clock: joined by every acquirer, extended by every releaser.
    clock: VClock,
}

/// A pending shim operation, parked at a yield point.
#[derive(Clone, Debug)]
pub(crate) enum AtomOp {
    /// `load(ordering)`
    Load(Ordering),
    /// `store(value, ordering)`
    Store(u64, Ordering),
    /// `fetch_add(value, ordering)` — reads the newest store (RMW atomicity).
    FetchAdd(u64, Ordering),
    /// `fetch_max(value, ordering)`
    FetchMax(u64, Ordering),
    /// Acquire a read lock (grantable while no writer holds the lock).
    LockRead,
    /// Acquire the write lock (grantable while nobody holds the lock).
    LockWrite,
    /// Release a read lock.
    UnlockRead,
    /// Release the write lock.
    UnlockWrite,
}

impl AtomOp {
    fn describe(&self, loc: usize) -> String {
        match self {
            AtomOp::Load(o) => format!("a{loc}.load({o:?})"),
            AtomOp::Store(v, o) => format!("a{loc}.store({v}, {o:?})"),
            AtomOp::FetchAdd(v, o) => format!("a{loc}.fetch_add({v}, {o:?})"),
            AtomOp::FetchMax(v, o) => format!("a{loc}.fetch_max({v}, {o:?})"),
            AtomOp::LockRead => format!("l{loc}.read()"),
            AtomOp::LockWrite => format!("l{loc}.write()"),
            AtomOp::UnlockRead => format!("l{loc}.read_unlock()"),
            AtomOp::UnlockWrite => format!("l{loc}.write_unlock()"),
        }
    }
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Core shared state + thread-local handle
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    /// Setup / `finally`: controller ops apply inline, sequentially consistent.
    Inline,
    /// Model threads running: every op is a scheduled choice point.
    Running,
}

#[derive(Debug)]
struct ThreadState {
    /// Pending parked operation `(location, op)`, if any.
    pending: Option<(usize, AtomOp)>,
    /// Result handed back by the scheduler, consumed by the parked thread.
    result: Option<u64>,
    finished: bool,
    clock: VClock,
}

struct Core {
    phase: Phase,
    threads: Vec<ThreadState>,
    atoms: Vec<Location>,
    locks: Vec<LockState>,
    controller_clock: VClock,
    history_cap: usize,
    step: usize,
    last_ran: usize,
    trace: Vec<String>,
    /// `(chosen, alternatives)` decision stack of this execution.
    decisions: Vec<(usize, usize)>,
    forced: Vec<usize>,
    abort: bool,
    failure: Option<String>,
}

struct Shared {
    core: Mutex<Core>,
    cv: Condvar,
}

/// Thread-local handle: set on the controller during setup/finally and on each worker
/// while it runs a model thread body. `None` means passthrough (normal execution).
#[derive(Clone)]
pub(crate) struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
    run_id: u64,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Globally unique id per execution, to catch shim values leaking across executions.
static RUN_IDS: StdAtomicU64 = StdAtomicU64::new(1);

// ---------------------------------------------------------------------------
// Shim entry points (called from crate::shim)
// ---------------------------------------------------------------------------

impl Ctx {
    /// Registers a new atomic location with an initial value; inline phases only.
    pub(crate) fn register_atom(&self, init: u64) -> (u64, usize) {
        let mut core = self.shared.core.lock().expect("model core poisoned");
        assert_eq!(
            core.phase,
            Phase::Inline,
            "shim atomics must be created during scenario setup, not from model threads"
        );
        let tick = {
            core.controller_clock.tick(CONTROLLER);
            core.controller_clock.get(CONTROLLER)
        };
        let n = core.threads.len() + 1;
        let rec = StoreRec {
            value: init,
            writer: CONTROLLER,
            tick,
            // Setup stores happen-before every model thread (spawn edge), so the sync
            // clock is irrelevant; keep it for uniformity.
            sync: Some(core.controller_clock.clone()),
        };
        core.atoms.push(Location { history: vec![rec], base: 0, last_read: vec![0; n] });
        (self.run_id, core.atoms.len() - 1)
    }

    /// Registers a new lock location; inline phases only.
    pub(crate) fn register_lock(&self) -> (u64, usize) {
        let mut core = self.shared.core.lock().expect("model core poisoned");
        assert_eq!(
            core.phase,
            Phase::Inline,
            "shim locks must be created during scenario setup, not from model threads"
        );
        let clock = core.controller_clock.clone();
        core.locks.push(LockState { readers: Vec::new(), writer: None, clock });
        (self.run_id, core.locks.len() - 1)
    }

    /// Performs one shim operation: parks at the scheduler from model threads, applies
    /// inline from the controller (setup / `finally`).
    pub(crate) fn op(&self, loc: usize, op: AtomOp) -> u64 {
        if self.tid == CONTROLLER {
            let mut core = self.shared.core.lock().expect("model core poisoned");
            assert_eq!(core.phase, Phase::Inline, "controller ops only apply in inline phases");
            return apply_inline(&mut core, loc, &op);
        }
        let mut core = self.shared.core.lock().expect("model core poisoned");
        if core.abort {
            drop(core);
            std::panic::panic_any(ModelAbort);
        }
        core.threads[self.tid - 1].pending = Some((loc, op));
        self.shared.cv.notify_all();
        loop {
            if core.abort {
                core.threads[self.tid - 1].pending = None;
                drop(core);
                std::panic::panic_any(ModelAbort);
            }
            if let Some(r) = core.threads[self.tid - 1].result.take() {
                return r;
            }
            let (c, timeout) =
                self.shared.cv.wait_timeout(core, WATCHDOG).expect("model core poisoned");
            core = c;
            assert!(!timeout.timed_out(), "model scheduler handshake stalled (internal bug)");
        }
    }

    /// Lock release during panic unwinding: updates bookkeeping without parking, so the
    /// unwind can finish even though the thread is no longer scheduled.
    pub(crate) fn release_during_unwind(&self, loc: usize, write: bool) {
        let mut core = self.shared.core.lock().expect("model core poisoned");
        let tid = self.tid;
        let lock = &mut core.locks[loc];
        if write {
            if lock.writer == Some(tid) {
                lock.writer = None;
            }
        } else {
            lock.readers.retain(|&r| r != tid);
        }
        self.shared.cv.notify_all();
    }

    pub(crate) fn run_id(&self) -> u64 {
        self.run_id
    }
}

/// Applies an op sequentially-consistently from the controller (setup / quiesced).
fn apply_inline(core: &mut Core, loc: usize, op: &AtomOp) -> u64 {
    match op {
        AtomOp::LockRead | AtomOp::LockWrite | AtomOp::UnlockRead | AtomOp::UnlockWrite => {
            // Nobody can contend in an inline phase.
            0
        }
        _ => {
            core.controller_clock.tick(CONTROLLER);
            let tick = core.controller_clock.get(CONTROLLER);
            let clock = core.controller_clock.clone();
            let cap = core.history_cap;
            let a = &mut core.atoms[loc];
            let newest = a.history.last().expect("location history never empty").clone();
            match *op {
                AtomOp::Load(_) => newest.value,
                AtomOp::Store(v, o) => {
                    push_store(
                        a,
                        StoreRec {
                            value: v,
                            writer: CONTROLLER,
                            tick,
                            sync: is_release(o).then(|| clock.clone()),
                        },
                        cap,
                    );
                    0
                }
                AtomOp::FetchAdd(v, o) => {
                    let nv = newest.value.wrapping_add(v);
                    push_store(
                        a,
                        StoreRec {
                            value: nv,
                            writer: CONTROLLER,
                            tick,
                            sync: if is_release(o) {
                                Some(clock.clone())
                            } else {
                                newest.sync.clone()
                            },
                        },
                        cap,
                    );
                    newest.value
                }
                AtomOp::FetchMax(v, o) => {
                    let nv = newest.value.max(v);
                    push_store(
                        a,
                        StoreRec {
                            value: nv,
                            writer: CONTROLLER,
                            tick,
                            sync: if is_release(o) {
                                Some(clock.clone())
                            } else {
                                newest.sync.clone()
                            },
                        },
                        cap,
                    );
                    newest.value
                }
                _ => unreachable!(),
            }
        }
    }
}

fn push_store(a: &mut Location, rec: StoreRec, cap: usize) {
    a.history.push(rec);
    if a.history.len() > cap {
        a.history.remove(0);
        a.base += 1;
    }
}

// ---------------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------------

/// Global indices of the stores a load by `tid` may legally observe, oldest first.
fn admissible(core: &Core, loc: usize, tid: usize) -> Vec<usize> {
    let a = &core.atoms[loc];
    let clock =
        if tid == CONTROLLER { &core.controller_clock } else { &core.threads[tid - 1].clock };
    // Write-read coherence floor: the newest store that happens-before the loader.
    let mut floor = a.base;
    for (i, s) in a.history.iter().enumerate() {
        if clock.get(s.writer) >= s.tick {
            floor = a.base + i;
        }
    }
    // Read-read coherence floor: never go behind this thread's previous read.
    floor = floor.max(a.last_read.get(tid).copied().unwrap_or(0)).max(a.base);
    (floor..a.base + a.history.len()).collect()
}

/// One selectable alternative at a decision point.
#[derive(Clone, Debug)]
struct Alt {
    tid: usize,
    /// For loads: global index of the store to read. Ignored otherwise.
    read_idx: usize,
}

/// Enumerates the alternatives at the current state, deterministic order: threads in
/// round-robin rotation starting after `last_ran`; for loads, newest store first.
fn alternatives(core: &Core) -> Vec<Alt> {
    let n = core.threads.len();
    let mut alts = Vec::new();
    for k in 0..n {
        let tid = (core.last_ran + k) % n + 1;
        let t = &core.threads[tid - 1];
        if t.finished {
            continue;
        }
        let Some((loc, op)) = &t.pending else { continue };
        match op {
            AtomOp::Load(_) => {
                let mut idxs = admissible(core, *loc, tid);
                idxs.reverse(); // newest first: the default path is the SC execution
                for read_idx in idxs {
                    alts.push(Alt { tid, read_idx });
                }
            }
            AtomOp::LockRead => {
                if core.locks[*loc].writer.is_none() {
                    alts.push(Alt { tid, read_idx: 0 });
                }
            }
            AtomOp::LockWrite => {
                let l = &core.locks[*loc];
                if l.writer.is_none() && l.readers.is_empty() {
                    alts.push(Alt { tid, read_idx: 0 });
                }
            }
            _ => alts.push(Alt { tid, read_idx: 0 }),
        }
    }
    alts
}

/// Applies the chosen alternative's pending op; returns the value handed to the thread.
fn apply(core: &mut Core, alt: &Alt) -> u64 {
    let tid = alt.tid;
    let (loc, op) = core.threads[tid - 1].pending.take().expect("chosen thread must be parked");
    core.threads[tid - 1].clock.tick(tid);
    let cap = core.history_cap;
    let (result, note) = match op {
        AtomOp::Load(o) => {
            let (value, sync, from) = {
                let a = &core.atoms[loc];
                let s = &a.history[alt.read_idx - a.base];
                (s.value, s.sync.clone(), format!("t{}@{}", s.writer, s.tick))
            };
            if is_acquire(o) {
                if let Some(sc) = &sync {
                    core.threads[tid - 1].clock.join(sc);
                }
            }
            let a = &mut core.atoms[loc];
            let lr = &mut a.last_read;
            if lr.len() <= tid {
                lr.resize(tid + 1, 0);
            }
            lr[tid] = alt.read_idx;
            (value, format!(" -> {value} [from {from}]"))
        }
        AtomOp::Store(v, o) => {
            let tick = core.threads[tid - 1].clock.get(tid);
            let sync = is_release(o).then(|| core.threads[tid - 1].clock.clone());
            push_store(&mut core.atoms[loc], StoreRec { value: v, writer: tid, tick, sync }, cap);
            (0, String::new())
        }
        AtomOp::FetchAdd(v, o) | AtomOp::FetchMax(v, o) => {
            let newest = core.atoms[loc].history.last().expect("history never empty").clone();
            if is_acquire(o) {
                if let Some(sc) = &newest.sync {
                    core.threads[tid - 1].clock.join(sc);
                }
            }
            let nv = match op {
                AtomOp::FetchAdd(..) => newest.value.wrapping_add(v),
                _ => newest.value.max(v),
            };
            let tick = core.threads[tid - 1].clock.get(tid);
            let sync = if is_release(o) {
                Some(core.threads[tid - 1].clock.clone())
            } else {
                // Release-sequence continuation: an RMW carries its predecessor's sync.
                newest.sync.clone()
            };
            push_store(&mut core.atoms[loc], StoreRec { value: nv, writer: tid, tick, sync }, cap);
            // Reading the newest store also moves the coherence floor.
            let last = core.atoms[loc].base + core.atoms[loc].history.len() - 1;
            let lr = &mut core.atoms[loc].last_read;
            if lr.len() <= tid {
                lr.resize(tid + 1, 0);
            }
            lr[tid] = last;
            (newest.value, format!(" -> {}", newest.value))
        }
        AtomOp::LockRead => {
            let clock = core.locks[loc].clock.clone();
            core.threads[tid - 1].clock.join(&clock);
            core.locks[loc].readers.push(tid);
            (0, String::new())
        }
        AtomOp::LockWrite => {
            let clock = core.locks[loc].clock.clone();
            core.threads[tid - 1].clock.join(&clock);
            core.locks[loc].writer = Some(tid);
            (0, String::new())
        }
        AtomOp::UnlockRead => {
            let tclock = core.threads[tid - 1].clock.clone();
            let l = &mut core.locks[loc];
            l.readers.retain(|&r| r != tid);
            l.clock.join(&tclock);
            (0, String::new())
        }
        AtomOp::UnlockWrite => {
            let tclock = core.threads[tid - 1].clock.clone();
            let l = &mut core.locks[loc];
            if l.writer == Some(tid) {
                l.writer = None;
            }
            l.clock.join(&tclock);
            (0, String::new())
        }
    };
    let step = core.step;
    core.trace.push(format!("step {step:>3}: t{tid} {}{note}", op.describe(loc)));
    result
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

enum Job {
    Run { body: Box<dyn FnOnce() + Send>, ctx: Ctx },
    Shutdown,
}

struct Pool {
    senders: Vec<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn new(n: usize) -> Self {
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("model-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawning a model worker failed"),
            );
        }
        Pool { senders, handles }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Job::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Shutdown => return,
            Job::Run { body, ctx } => {
                let shared = Arc::clone(&ctx.shared);
                let tid = ctx.tid;
                set_ctx(Some(ctx));
                let outcome = catch_unwind(AssertUnwindSafe(body));
                set_ctx(None);
                let mut core = shared.core.lock().expect("model core poisoned");
                if let Err(payload) = outcome {
                    if payload.downcast_ref::<ModelAbort>().is_none() && core.failure.is_none() {
                        core.failure = Some(panic_message(payload));
                        core.abort = true;
                    }
                }
                core.threads[tid - 1].finished = true;
                core.threads[tid - 1].pending = None;
                shared.cv.notify_all();
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked with a non-string payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Execution + DFS driver
// ---------------------------------------------------------------------------

struct ExecResult {
    decisions: Vec<(usize, usize)>,
    trace: Vec<String>,
    failure: Option<String>,
    steps: usize,
}

fn run_once<F>(pool: &Pool, cfg: &ModelConfig, scenario: &mut F, forced: &[usize]) -> ExecResult
where
    F: FnMut() -> Scenario,
{
    let shared = Arc::new(Shared {
        core: Mutex::new(Core {
            phase: Phase::Inline,
            threads: Vec::new(),
            atoms: Vec::new(),
            locks: Vec::new(),
            controller_clock: VClock::new(1),
            history_cap: cfg.history_cap,
            step: 0,
            last_ran: 0,
            trace: Vec::new(),
            decisions: Vec::new(),
            forced: forced.to_vec(),
            abort: false,
            failure: None,
        }),
        cv: Condvar::new(),
    });
    let run_id = RUN_IDS.fetch_add(1, Ordering::Relaxed);
    let ctx = Ctx { shared: Arc::clone(&shared), tid: CONTROLLER, run_id };

    // Setup: build the scenario with the model active so shim values register.
    set_ctx(Some(ctx.clone()));
    let scn = scenario();
    set_ctx(None);
    let n = scn.threads.len();
    assert!(n <= pool.senders.len(), "scenario thread count grew between schedules");

    {
        let mut core = shared.core.lock().expect("model core poisoned");
        // Spawn edges: every thread starts with the controller's setup clock.
        let spawn_clock = core.controller_clock.clone();
        for _ in 0..n {
            core.threads.push(ThreadState {
                pending: None,
                result: None,
                finished: false,
                clock: spawn_clock.clone(),
            });
        }
        core.phase = Phase::Running;
    }
    for (i, body) in scn.threads.into_iter().enumerate() {
        let ctx = Ctx { shared: Arc::clone(&shared), tid: i + 1, run_id };
        pool.senders[i].send(Job::Run { body, ctx }).expect("model worker died");
    }

    // Schedule loop.
    let mut core = shared.core.lock().expect("model core poisoned");
    loop {
        // Wait until every live thread is parked or finished.
        loop {
            let settled = core
                .threads
                .iter()
                .all(|t| t.finished || (t.pending.is_some() && t.result.is_none()));
            if settled {
                break;
            }
            let (c, timeout) = shared.cv.wait_timeout(core, WATCHDOG).expect("model core poisoned");
            core = c;
            assert!(!timeout.timed_out(), "model threads never settled (internal bug)");
        }
        if core.threads.iter().all(|t| t.finished) {
            break;
        }
        if core.failure.is_some() || core.abort {
            // Failure already recorded: release every parked thread and let it unwind.
            core.abort = true;
            shared.cv.notify_all();
            let (c, _) = shared.cv.wait_timeout(core, WATCHDOG).expect("model core poisoned");
            core = c;
            continue;
        }
        if core.step >= cfg.max_steps {
            core.failure = Some(format!("execution exceeded {} steps (livelock?)", cfg.max_steps));
            core.abort = true;
            shared.cv.notify_all();
            continue;
        }
        let alts = alternatives(&core);
        if alts.is_empty() {
            let parked: Vec<usize> = core
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.finished)
                .map(|(i, _)| i + 1)
                .collect();
            core.failure = Some(format!("deadlock: threads {parked:?} all blocked"));
            core.abort = true;
            shared.cv.notify_all();
            continue;
        }
        let d = core.decisions.len();
        let chosen = core.forced.get(d).copied().unwrap_or(0).min(alts.len() - 1);
        core.decisions.push((chosen, alts.len()));
        let alt = alts[chosen].clone();
        core.step += 1;
        let result = apply(&mut core, &alt);
        core.last_ran = alt.tid % core.threads.len().max(1);
        core.threads[alt.tid - 1].result = Some(result);
        shared.cv.notify_all();
    }

    // Quiesced: run the final check inline with the joined view of every thread.
    core.phase = Phase::Inline;
    let joined: Vec<VClock> = core.threads.iter().map(|t| t.clock.clone()).collect();
    for c in &joined {
        core.controller_clock.join(c);
    }
    let failure_so_far = core.failure.clone();
    drop(core);
    if failure_so_far.is_none() {
        if let Some(finally) = scn.finally {
            set_ctx(Some(ctx));
            let outcome = catch_unwind(AssertUnwindSafe(finally));
            set_ctx(None);
            if let Err(payload) = outcome {
                let mut core = shared.core.lock().expect("model core poisoned");
                if core.failure.is_none() {
                    core.failure = Some(panic_message(payload));
                }
            }
        }
    }

    let core = shared.core.lock().expect("model core poisoned");
    ExecResult {
        decisions: core.decisions.clone(),
        trace: core.trace.clone(),
        failure: core.failure.clone(),
        steps: core.step,
    }
}

/// Explores bounded interleavings of `scenario` by DFS over schedule and read choices.
///
/// The scenario closure is invoked once per schedule and must rebuild its state from
/// scratch each time (the explorer asserts the thread count stays constant). Returns the
/// exploration [`Report`]; use [`Report::assert_ok`] to fail the test on violations.
pub fn explore<F>(cfg: &ModelConfig, mut scenario: F) -> Report
where
    F: FnMut() -> Scenario,
{
    let n = {
        // Probe the thread count once without running anything.
        let probe = scenario();
        probe.threads.len()
    };
    let pool = Pool::new(n);
    let budget = cfg.effective_budget();
    let mut prefix: Vec<usize> = Vec::new();
    let mut report =
        Report { schedules: 0, exhausted: false, max_depth: 0, total_steps: 0, failure: None };
    loop {
        let exec = run_once(&pool, cfg, &mut scenario, &prefix);
        report.schedules += 1;
        report.max_depth = report.max_depth.max(exec.decisions.len());
        report.total_steps += exec.steps;
        if let Some(message) = exec.failure {
            report.failure = Some(Failure {
                message,
                schedule: exec.decisions.iter().map(|&(c, _)| c).collect(),
                trace: exec.trace,
            });
            return report;
        }
        // Backtrack: bump the deepest decision that still has untried alternatives.
        let mut decisions = exec.decisions;
        let mut advanced = false;
        while let Some((chosen, nalts)) = decisions.pop() {
            if chosen + 1 < nalts {
                prefix = decisions.iter().map(|&(c, _)| c).collect();
                prefix.push(chosen + 1);
                advanced = true;
                break;
            }
        }
        if !advanced {
            report.exhausted = true;
            return report;
        }
        if report.schedules >= budget {
            return report;
        }
    }
}

/// Runs exactly one execution, forced along `schedule` (decisions beyond the prefix take
/// the first alternative). Used to replay a [`Failure::schedule`] deterministically.
pub fn replay<F>(cfg: &ModelConfig, mut scenario: F, schedule: &[usize]) -> Report
where
    F: FnMut() -> Scenario,
{
    let n = scenario().threads.len();
    let pool = Pool::new(n);
    let exec = run_once(&pool, cfg, &mut scenario, schedule);
    Report {
        schedules: 1,
        exhausted: false,
        max_depth: exec.decisions.len(),
        total_steps: exec.steps,
        failure: exec.failure.map(|message| Failure {
            message,
            schedule: exec.decisions.iter().map(|&(c, _)| c).collect(),
            trace: exec.trace,
        }),
    }
}
