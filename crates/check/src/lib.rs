//! `msrp-check` — correctness tooling for the workspace's lock-free plane.
//!
//! Two halves, matching the two failure modes hand-rolled concurrency has:
//!
//! 1. **A bounded model checker** (`model`, compiled in under the `model` feature and
//!    usable through the [`sync`] facade): the
//!    serving plane's lock-free structures (`SpanJournal`, `LatencyHistogram`,
//!    `EpochOracle`) route every atomic and lock through `msrp_check::sync`. In normal
//!    builds those are pure re-exports of `std` — zero cost, zero behavior change. Under
//!    the `model` feature (activated automatically for test builds via this crate's
//!    self-dev-dependency) they become shim types whose operations yield to a
//!    deterministic scheduler that exhaustively enumerates bounded thread interleavings
//!    *and* weak-memory read choices, reporting any invariant violation as a concrete
//!    replayable schedule trace.
//! 2. **A repo lint wall** ([`lint`], run as `cargo run -p msrp-check --bin msrp-lint`):
//!    hand-rolled line/token scanning (offline container — no `syn`, no registry) that
//!    enforces the repo's concurrency hygiene rules: every `Ordering::` site outside the
//!    shim crates carries an `// ordering:` justification, `unsafe` stays confined to
//!    the vendored shim crates, `thread::sleep` never substitutes for synchronization in
//!    test code, and id values in the wire protocol are never narrowed with raw `as`
//!    casts.
//!
//! See `DESIGN.md` ("Correctness tooling") for the facade design and the scheduler's
//! soundness envelope, and `EXPERIMENTS.md` E14 for exploration statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
#[cfg(feature = "model")]
pub mod model;
#[cfg(feature = "model")]
mod shim;
pub mod sync;

/// Returns true when this build of the crate has the model shims compiled in.
pub const fn model_enabled() -> bool {
    cfg!(feature = "model")
}
