//! `msrp-lint` — the repo lint wall, runnable as `cargo run -p msrp-check --bin msrp-lint`.
//!
//! Exit status: 0 when the workspace is clean *and* the allowlist is within the cap;
//! 1 when violations exist or the allowlist grew past `--max-allow` (default 0).
//!
//! Flags:
//!
//! * `--max-allow <n>` — permitted number of `lint: allow(...)` entries (zero-growth
//!   policy: CI pins this to the committed count, currently 0).
//! * `--self-test` — scan the seeded violation fixtures in `crates/check/fixtures/` and
//!   exit 0 only if every expected violation is detected (proves the wall actually
//!   rejects what it claims to; run in CI next to the clean scan).
//! * `--counts` — print `rules=<n> files=<n> violations=<n> allowed=<n>` for the
//!   `BENCH_check.json` trajectory record.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use msrp_check::lint::{scan_source, scan_workspace, LintReport, RULES};

/// Repository root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        return self_test();
    }
    let max_allow: usize = args
        .iter()
        .position(|a| a == "--max-allow")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--max-allow takes an integer"))
        .unwrap_or(0);
    let report = scan_workspace(&repo_root());
    if args.iter().any(|a| a == "--counts") {
        println!(
            "rules={} files={} violations={} allowed={}",
            RULES.len(),
            report.files_scanned,
            report.violations.len(),
            report.allowed.len()
        );
    }
    for v in &report.violations {
        eprintln!("{v}");
    }
    for (file, line, rule) in &report.allowed {
        eprintln!("allow: {file}:{line}: [{rule}]");
    }
    if !report.violations.is_empty() {
        eprintln!("msrp-lint: {} violation(s)", report.violations.len());
        return ExitCode::FAILURE;
    }
    if report.allowed.len() > max_allow {
        eprintln!(
            "msrp-lint: allowlist grew to {} entries (cap {max_allow}); justify the new \
             entry and raise the cap consciously in CI",
            report.allowed.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "msrp-lint: clean ({} files, {} rules, {} allowlist entries)",
        report.files_scanned,
        RULES.len(),
        report.allowed.len()
    );
    ExitCode::SUCCESS
}

/// Scans the seeded violation fixtures: each `*.rs-fixture` file under
/// `crates/check/fixtures/` declares its expected findings in `// expect:` header lines
/// (`// expect: <rule> <line>`). The fixture extension keeps the files out of the real
/// workspace scan and out of `cargo` target discovery.
fn self_test() -> ExitCode {
    let dir = repo_root().join("crates/check/fixtures");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs-fixture"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no fixtures found in {}", dir.display());
    let mut failed = false;
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        // The pretend path is the first header line: `// path: crates/...`.
        let pretend = text
            .lines()
            .find_map(|l| l.strip_prefix("// path: "))
            .expect("fixture must declare `// path: <repo-relative path>`")
            .trim()
            .to_string();
        let expected: Vec<(String, usize)> = text
            .lines()
            .filter_map(|l| l.strip_prefix("// expect: "))
            .map(|spec| {
                let (rule, line) = spec.trim().split_once(' ').expect("`// expect: rule line`");
                (rule.to_string(), line.parse().expect("expect line number"))
            })
            .collect();
        assert!(!expected.is_empty(), "{}: fixture declares no expectations", path.display());
        let mut report = LintReport::default();
        scan_source(&pretend, &text, &mut report);
        let got: Vec<(String, usize)> =
            report.violations.iter().map(|v| (v.rule.to_string(), v.line)).collect();
        if got == expected {
            println!("fixture {}: ok ({} finding(s))", path.display(), got.len());
        } else {
            eprintln!("fixture {}: expected {:?}, lint found {:?}", path.display(), expected, got);
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("msrp-lint --self-test: all fixtures detected");
        ExitCode::SUCCESS
    }
}
