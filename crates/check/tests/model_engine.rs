//! Litmus tests for the model explorer itself: known-good protocols must verify
//! exhaustively, known-broken ones must produce a concrete failing schedule. If any of
//! these flips, the model checker — not the code under test — is wrong.

use std::sync::Arc;

use msrp_check::model::{explore, replay, ModelConfig, Scenario};
use msrp_check::sync::{AtomicU64, Ordering, RwLock};

fn cfg() -> ModelConfig {
    ModelConfig::default()
}

/// Two unsynchronized increments: `fetch_add` is atomic, so the final value is exact in
/// every interleaving (and the DFS must actually exhaust this tiny space).
#[test]
fn rmw_increments_never_lose_updates() {
    let report = explore(&cfg(), || {
        let c = Arc::new(AtomicU64::new(0));
        let (a, b, fin) = (Arc::clone(&c), Arc::clone(&c), Arc::clone(&c));
        Scenario {
            threads: vec![
                Box::new(move || {
                    a.fetch_add(1, Ordering::Relaxed);
                }),
                Box::new(move || {
                    b.fetch_add(1, Ordering::Relaxed);
                }),
            ],
            finally: Some(Box::new(move || {
                assert_eq!(fin.load(Ordering::Relaxed), 2, "an increment was lost");
            })),
        }
    })
    .assert_ok();
    assert!(report.exhausted, "two increments must be exhaustible: {report:?}");
    assert!(report.schedules >= 2, "both orders must be explored");
}

/// Message passing done right: data published before a `Release` flag store must be
/// visible to an `Acquire` load that saw the flag. Exhaustive pass.
#[test]
fn message_passing_with_release_acquire_verifies() {
    let report = explore(&cfg(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        Scenario::new(vec![
            Box::new(move || {
                d1.store(41, Ordering::Relaxed);
                d1.store(42, Ordering::Relaxed);
                // ordering: Release publishes both data stores to the flag's acquirers.
                f1.store(1, Ordering::Release);
            }),
            Box::new(move || {
                // ordering: Acquire pairs with the Release flag store above.
                if f2.load(Ordering::Acquire) == 1 {
                    let v = d2.load(Ordering::Relaxed);
                    assert_eq!(v, 42, "flag seen but data stale");
                }
            }),
        ])
    })
    .assert_ok();
    assert!(report.exhausted, "message passing must be exhaustible: {report:?}");
}

/// The same protocol with a `Relaxed` flag is broken: the reader may see the flag and
/// still read stale data. The DFS must find that schedule — this is exactly the class
/// of bug (`Acquire`/`Release` mismatch) the checker exists to catch.
#[test]
fn message_passing_with_relaxed_flag_is_caught() {
    let run = |schedule: Option<&[usize]>| {
        let scenario = || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            Scenario::new(vec![
                Box::new(move || {
                    d1.store(42, Ordering::Relaxed);
                    f1.store(1, Ordering::Relaxed); // broken: no release edge
                }),
                Box::new(move || {
                    if f2.load(Ordering::Relaxed) == 1 {
                        assert_eq!(d2.load(Ordering::Relaxed), 42, "flag seen but data stale");
                    }
                }),
            ])
        };
        match schedule {
            None => explore(&cfg(), scenario),
            Some(s) => replay(&cfg(), scenario, s),
        }
    };
    let report = run(None);
    let failure = report.failure.expect("relaxed message passing must fail");
    assert!(failure.message.contains("data stale"), "unexpected failure: {failure:?}");
    // The failing schedule replays deterministically to the same violation.
    let replayed = run(Some(&failure.schedule));
    let again = replayed.failure.expect("failing schedule must replay");
    assert_eq!(again.message, failure.message);
    assert_eq!(again.schedule, failure.schedule);
}

/// Store buffering: with `Relaxed` everywhere both threads may read 0 — a weak behavior
/// the explorer must be able to produce (it requires reading a stale initial value).
#[test]
fn store_buffering_weak_behavior_is_reachable() {
    let report = explore(&cfg(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let r0 = Arc::new(AtomicU64::new(99));
        let r1 = Arc::new(AtomicU64::new(99));
        let (x1, y1, r0w) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r0));
        let (x2, y2, r1w) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
        let (r0r, r1r) = (Arc::clone(&r0), Arc::clone(&r1));
        Scenario {
            threads: vec![
                Box::new(move || {
                    x1.store(1, Ordering::Relaxed);
                    let v = y1.load(Ordering::Relaxed);
                    r0w.store(v, Ordering::Relaxed);
                }),
                Box::new(move || {
                    y2.store(1, Ordering::Relaxed);
                    let v = x2.load(Ordering::Relaxed);
                    r1w.store(v, Ordering::Relaxed);
                }),
            ],
            finally: Some(Box::new(move || {
                // ordering: quiesced read-back of the per-thread results.
                let a = r0r.load(Ordering::Relaxed);
                let b = r1r.load(Ordering::Relaxed);
                assert!(!(a == 0 && b == 0), "both-zero outcome observed");
            })),
        }
    });
    let failure = report.failure.expect("store buffering must reach the both-zero outcome");
    assert!(failure.message.contains("both-zero"));
}

/// Writer exclusion: an `RwLock` writer and a reader never overlap, and the reader sees
/// either the old or the new pair — never a torn one.
#[test]
fn rwlock_excludes_writers_from_readers() {
    let report = explore(&cfg(), || {
        let slot = Arc::new(RwLock::new((0u64, 0u64)));
        let (w, r) = (Arc::clone(&slot), Arc::clone(&slot));
        Scenario::new(vec![
            Box::new(move || {
                let mut g = w.write().expect("model lock poisoned");
                g.0 = 7;
                g.1 = 7;
            }),
            Box::new(move || {
                let g = r.read().expect("model lock poisoned");
                assert!(
                    (g.0, g.1) == (0, 0) || (g.0, g.1) == (7, 7),
                    "torn read through the lock: {:?}",
                    (g.0, g.1)
                );
            }),
        ])
    })
    .assert_ok();
    assert!(report.exhausted, "lock scenario must be exhaustible: {report:?}");
}

/// Lock-order inversion deadlocks are reported as such, with the parked thread set.
#[test]
fn deadlocks_are_detected_and_reported() {
    let report = explore(&cfg(), || {
        let a = Arc::new(RwLock::new(0u64));
        let b = Arc::new(RwLock::new(0u64));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        Scenario::new(vec![
            Box::new(move || {
                let _ga = a1.write().expect("lock");
                let _gb = b1.write().expect("lock");
            }),
            Box::new(move || {
                let _gb = b2.write().expect("lock");
                let _ga = a2.write().expect("lock");
            }),
        ])
    });
    let failure = report.failure.expect("the inverted lock order must deadlock");
    assert!(failure.message.contains("deadlock"), "got: {}", failure.message);
}

/// The schedule budget is a hard cap: a scenario with a space far larger than a tiny
/// budget stops at the cap without exhausting (the bounded-by-default contract that
/// keeps tier-1 wall time flat; `MSRP_MODEL_EXHAUSTIVE=1` lifts it).
#[test]
fn schedule_budget_caps_exploration() {
    // Many independent operations on separate locations: a huge interleaving space.
    let tiny = ModelConfig { max_schedules: 25, ..ModelConfig::default() };
    if tiny.effective_budget() != 25 {
        // MSRP_MODEL_EXHAUSTIVE set in this environment; the cap is deliberately void.
        return;
    }
    let report = explore(&tiny, || {
        let locs: Vec<Arc<AtomicU64>> = (0..6).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mk = |locs: Vec<Arc<AtomicU64>>| {
            Box::new(move || {
                for l in &locs {
                    l.fetch_add(1, Ordering::Relaxed);
                }
            }) as Box<dyn FnOnce() + Send>
        };
        Scenario::new(vec![mk(locs.clone()), mk(locs.clone()), mk(locs)])
    })
    .assert_ok();
    assert_eq!(report.schedules, 25, "the cap must bind exactly");
    assert!(!report.exhausted, "this space is far larger than 25 schedules");
}
