//! Guard for the model checker's bounded-by-default contract: plain `cargo test -q`
//! explores at most [`ModelConfig::DEFAULT_BUDGET`] schedules per test, and only a human
//! exporting `MSRP_MODEL_EXHAUSTIVE=1` lifts the cap — never CI, never a test itself.
//! (Same shape as `crates/bench/tests/large_tier_guard.rs` for the `--large` tier.)

use std::fs;
use std::path::{Path, PathBuf};

use msrp_check::model::ModelConfig;

/// Repository root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// Every `.rs` file under `dir` (sources, tests, benches, bins).
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            if path.file_name().is_some_and(|f| f == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn the_default_budget_is_the_documented_cap() {
    let cfg = ModelConfig::default();
    assert_eq!(cfg.max_schedules, ModelConfig::DEFAULT_BUDGET);
    match std::env::var("MSRP_MODEL_EXHAUSTIVE") {
        Ok(v) if !v.is_empty() && v != "0" => {
            // A human opted into exhaustion for this run; the cap is deliberately void.
            assert_eq!(cfg.effective_budget(), usize::MAX);
        }
        _ => {
            assert_eq!(
                cfg.effective_budget(),
                ModelConfig::DEFAULT_BUDGET,
                "the default test path must stay schedule-capped"
            );
        }
    }
}

#[test]
fn ci_never_lifts_the_schedule_cap() {
    let ci = fs::read_to_string(repo_root().join(".github/workflows/ci.yml")).unwrap();
    for line in ci.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with('#') {
            continue;
        }
        assert!(
            !trimmed.contains("MSRP_MODEL_EXHAUSTIVE"),
            "CI must not opt into exhaustive model checking: `{line}`"
        );
    }
}

#[test]
fn no_test_sets_the_exhaustive_env_var_programmatically() {
    // The override exists for humans at a shell, not for tests to smuggle unbounded
    // exploration onto the default path (model runs would stop being time-bounded and
    // `set_var` is process-global — it would leak into concurrently running tests).
    let root = repo_root();
    let mut sources = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    assert!(sources.len() > 50, "the source scan must actually see the workspace");
    for path in &sources {
        let text = fs::read_to_string(path).unwrap();
        let is_this_guard = path.ends_with("crates/check/tests/model_budget_guard.rs");
        assert!(
            !text.contains("set_var(\"MSRP_MODEL_EXHAUSTIVE") || is_this_guard,
            "{} sets MSRP_MODEL_EXHAUSTIVE programmatically — the cap must only be \
             lifted from a shell",
            path.display()
        );
    }
}

#[test]
fn model_tests_stay_within_the_default_budget() {
    // Every model test in this crate uses ModelConfig::default() or a *smaller*
    // explicit budget; none may quietly raise max_schedules above the documented cap.
    let tests_dir = repo_root().join("crates/check/tests");
    let mut sources = Vec::new();
    rust_sources(&tests_dir, &mut sources);
    // Assembled at runtime so this guard's own source does not match its own scan.
    let needle = format!("{}{}", "with_budget", "(");
    for path in &sources {
        let text = fs::read_to_string(path).unwrap();
        for (i, line) in text.lines().enumerate() {
            if let Some(pos) = line.find(&needle) {
                let arg: String = line[pos + needle.len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '_')
                    .collect();
                let value: usize = arg.replace('_', "").parse().unwrap_or_else(|_| {
                    panic!("{}:{}: non-literal with_budget argument", path.display(), i + 1)
                });
                assert!(
                    value <= ModelConfig::DEFAULT_BUDGET,
                    "{}:{}: budget {value} exceeds the default cap",
                    path.display(),
                    i + 1
                );
            }
        }
    }
}
