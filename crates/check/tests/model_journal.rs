//! Model-checks the `SpanJournal` seqlock (crates/obs/src/journal.rs): the committed
//! stamp pair must never let a reader accept a torn payload — and the pre-fix shape
//! (relaxed payload stores) must demonstrably fail, pinning why `record` uses `Release`
//! for them.

use std::sync::Arc;
use std::time::Duration;

use msrp_check::model::{explore, replay, ModelConfig, Scenario};
use msrp_check::sync::{AtomicU64, Ordering};
use msrp_obs::SpanJournal;

/// The shipped journal: one slot, an overwriting writer, a concurrent snapshotter. Every
/// accepted event must be internally consistent (payload fields derived from the trace
/// id). Bounded exploration — the space is large; `MSRP_MODEL_EXHAUSTIVE=1` exhausts it.
#[test]
fn committed_stamps_never_yield_torn_payloads() {
    let report = explore(&ModelConfig::default(), || {
        let j = Arc::new(SpanJournal::new(1));
        // Ticket 0 is committed during setup; the writer thread overwrites it with
        // ticket 1 while the reader snapshots.
        j.record(event(0), stage(0), worker(0), dur(0));
        let (jw, jr) = (Arc::clone(&j), Arc::clone(&j));
        Scenario::new(vec![
            Box::new(move || {
                jw.record(event(1), stage(1), worker(1), dur(1));
            }),
            Box::new(move || {
                for e in jr.snapshot().events {
                    let t = e.trace_id;
                    assert!(t == event(0) || t == event(1), "unknown trace id {t}");
                    let k = t - 100;
                    assert_eq!(e.stage, stage(k), "torn event accepted: {e:?}");
                    assert_eq!(e.worker, worker(k), "torn event accepted: {e:?}");
                    assert_eq!(e.duration, dur(k), "torn event accepted: {e:?}");
                }
            }),
        ])
    })
    .assert_ok();
    assert!(report.schedules >= 2, "the race window must actually be explored");
}

fn event(k: u64) -> u64 {
    100 + k
}
fn stage(k: u64) -> u16 {
    (7 + k) as u16
}
fn worker(k: u64) -> u32 {
    (3 + k) as u32
}
fn dur(k: u64) -> Duration {
    Duration::from_nanos(10 + k)
}

/// The pre-fix shape of `SpanJournal::record`: odd stamp (`Release`), *relaxed* payload
/// store, committed stamp (`Release`). A `Release` store orders prior accesses only, so
/// nothing orders the relaxed payload after the odd stamp — a reader can observe the new
/// payload while both stamp loads still return the old committed value, and accept a
/// torn event. The reader side below is the shipped `snapshot` protocol verbatim.
struct PreFixSlot {
    seq: AtomicU64,
    payload: AtomicU64,
}

impl PreFixSlot {
    /// Setup state: ticket 0 committed (stamp 2) with payload `old`.
    fn committed(old: u64) -> Self {
        PreFixSlot { seq: AtomicU64::new(2), payload: AtomicU64::new(old) }
    }

    /// Ticket 1 overwrite with the pre-fix orderings.
    fn record_prefix_shape(&self, new: u64) {
        self.seq.store(3, Ordering::Release);
        self.payload.store(new, Ordering::Relaxed); // the bug: nothing orders this after the odd stamp
        self.seq.store(4, Ordering::Release);
    }

    /// The shipped reader: accept ticket 0's payload only if both stamp loads say 2.
    fn read_ticket0(&self) -> Option<u64> {
        if self.seq.load(Ordering::Acquire) != 2 {
            return None;
        }
        let p = self.payload.load(Ordering::Acquire);
        if self.seq.load(Ordering::Acquire) != 2 {
            return None;
        }
        Some(p)
    }
}

const OLD: u64 = 5;
const NEW: u64 = 6;

fn prefix_scenario() -> Scenario {
    let slot = Arc::new(PreFixSlot::committed(OLD));
    let (w, r) = (Arc::clone(&slot), Arc::clone(&slot));
    Scenario::new(vec![
        Box::new(move || w.record_prefix_shape(NEW)),
        Box::new(move || {
            if let Some(p) = r.read_ticket0() {
                assert_eq!(
                    p, OLD,
                    "torn read accepted: stamp said ticket 0, payload is ticket 1's"
                );
            }
        }),
    ])
}

/// The explorer must find the torn read against the relaxed payload store, and the
/// failing schedule must replay deterministically — this is the regression pinning the
/// `Release` payload stores in the shipped `record`.
#[test]
fn relaxed_payload_stores_admit_a_torn_read() {
    let report = explore(&ModelConfig::default(), prefix_scenario);
    let failure = report.failure.expect(
        "the pre-fix journal shape must admit a torn read; if this starts passing, the \
         model checker lost the weak-memory behavior that motivated the Release fix",
    );
    assert!(failure.message.contains("torn read accepted"), "got: {}", failure.message);
    let replayed = replay(&ModelConfig::default(), prefix_scenario, &failure.schedule)
        .failure
        .expect("failing schedule must replay");
    assert_eq!(replayed.message, failure.message);
}

/// The same slot protocol with the shipped orderings (`Release` payload store) verifies
/// exhaustively — the one-word fix closes the window.
#[test]
fn release_payload_stores_close_the_window() {
    let report = explore(&ModelConfig::default(), || {
        let slot = Arc::new(PreFixSlot::committed(OLD));
        let (w, r) = (Arc::clone(&slot), Arc::clone(&slot));
        Scenario::new(vec![
            Box::new(move || {
                w.seq.store(3, Ordering::Release);
                // ordering: Release — the shipped fix: orders the odd stamp before the
                // payload, so a reader that sees this payload cannot still see stamp 2.
                w.payload.store(NEW, Ordering::Release);
                w.seq.store(4, Ordering::Release);
            }),
            Box::new(move || {
                if let Some(p) = r.read_ticket0() {
                    assert_eq!(p, OLD, "torn read accepted despite Release payload store");
                }
            }),
        ])
    })
    .assert_ok();
    assert!(report.exhausted, "the fixed slot protocol must be fully verified: {report:?}");
}
