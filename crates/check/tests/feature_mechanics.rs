//! Pins the feature plumbing the model tests rely on: this crate's own test builds (and
//! any workspace `cargo test` invocation) see the `model` feature via the
//! self-dev-dependency, while normal builds are pure `std` aliases.

#[test]
fn model_feature_is_active_in_test_builds() {
    assert!(msrp_check::model_enabled());
}
