//! Model-checks the epoch publish path (crates/serve/src/epoch.rs): a batch pinned to
//! `EpochOracle::current()` must be answered entirely by one epoch, whatever the
//! interleaving with concurrent `publish` calls, and observed epoch ids never go
//! backwards. The `RwLock` in the slot is the shim lock, so every acquisition is a
//! scheduled choice point.

use std::sync::Arc;

use msrp_check::model::{explore, ModelConfig, Scenario};
use msrp_graph::generators::connected_gnm;
use msrp_serve::{EpochOracle, Query, RouteOracle, ShardedOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds epoch 0's shard set, the shard set an edge-removal rebuild publishes as epoch
/// 1, a third shard set for a follow-up publish, and a query batch whose answers
/// *differ* between the first two (asserted below, so the one-epoch invariant test
/// cannot go vacuously green).
fn two_epoch_fixture() -> (ShardedOracle, ShardedOracle, ShardedOracle, Vec<Query>) {
    let mut rng = StdRng::seed_from_u64(91);
    let mut g = connected_gnm(20, 50, &mut rng).unwrap();
    let sources = [0usize, 7, 14];
    let initial = ShardedOracle::build_bk_csr(&g.freeze(), &sources, 2);
    let e = g.edge_vec()[3];
    let (u, v) = e.endpoints();
    g.remove_edge(u, v).unwrap();
    let csr = g.freeze();
    let (next, _) = initial.rebuild_bk_csr(&csr, e);
    let (second, _) = next.rebuild_bk_csr(&csr, e);
    // The batch must distinguish the epochs, so it avoids a *different* edge than the
    // churned one: epoch 0 may route around it via `e`, epoch 1 no longer can. Pick the
    // first surviving edge whose avoidance answers actually differ (deterministic).
    let queries = g
        .edge_vec()
        .iter()
        .map(|&fail| (0..20).map(|t| Query::new(0, t, fail)).collect::<Vec<_>>())
        .find(|qs| batch_answers(&initial, qs) != batch_answers(&next, qs))
        .expect("some surviving edge must distinguish the epochs");
    (initial, next, second, queries)
}

fn batch_answers(oracle: &ShardedOracle, queries: &[Query]) -> Vec<Option<msrp_graph::Distance>> {
    queries.iter().map(|&q| oracle.query(q)).collect()
}

/// One publisher, one batch: the batch's answers must be epoch 0's vector or epoch 1's,
/// bit for bit — never a mix. The oracles are rebuilt per schedule (publish consumes
/// them); the answer computation itself touches no atomics, so the explored space is
/// exactly the lock-acquisition interleavings, and it exhausts.
#[test]
fn a_batch_is_answered_entirely_by_one_epoch() {
    // Probe once outside the model: the fixture must actually distinguish the epochs.
    let (initial, next, _, queries) = two_epoch_fixture();
    let before = batch_answers(&initial, &queries);
    let after = batch_answers(&next, &queries);
    assert_ne!(before, after, "fixture must give the epochs distinguishable answers");

    let report = explore(&ModelConfig::default(), || {
        let (initial, next, _, queries) = two_epoch_fixture();
        let expected =
            Arc::new((batch_answers(&initial, &queries), batch_answers(&next, &queries)));
        let epochs = Arc::new(EpochOracle::new(initial));
        let (ep, eb) = (Arc::clone(&epochs), Arc::clone(&epochs));
        let queries = Arc::new(queries);
        Scenario::new(vec![
            Box::new(move || {
                let published = ep.publish(next);
                assert_eq!(published.id, 1);
            }),
            Box::new(move || {
                let routed = eb.query_batch_routed(&queries);
                let answers: Vec<_> = routed.into_iter().map(|(_, a)| a).collect();
                assert!(
                    answers == expected.0 || answers == expected.1,
                    "batch mixed answers from two epochs"
                );
            }),
        ])
    })
    .assert_ok();
    assert!(report.exhausted, "the lock interleavings must be fully explored: {report:?}");
    assert!(report.schedules >= 2, "the swap must land on both sides of the batch pin");
}

/// Two concurrent publishes against a reader polling `epoch_id`: ids observed by the
/// reader never decrease, and both publishes land (ids 1 and 2 in some order).
#[test]
fn epoch_ids_are_monotonic_across_concurrent_publishes() {
    let report = explore(&ModelConfig::default(), || {
        // The second publisher ships a rebuild of the same topology; ids still advance
        // because publish assigns slot.id + 1 under the write lock.
        let (initial, next, second, _) = two_epoch_fixture();
        let epochs = Arc::new(EpochOracle::new(initial));
        let (p1, p2, r, fin) =
            (Arc::clone(&epochs), Arc::clone(&epochs), Arc::clone(&epochs), Arc::clone(&epochs));
        Scenario {
            threads: vec![
                Box::new(move || {
                    p1.publish(next);
                }),
                Box::new(move || {
                    p2.publish(second);
                }),
                Box::new(move || {
                    let a = r.epoch_id();
                    let b = r.epoch_id();
                    assert!(b >= a, "epoch id went backwards: {a} then {b}");
                }),
            ],
            finally: Some(Box::new(move || {
                assert_eq!(fin.epoch_id(), 2, "both publishes must have landed");
            })),
        }
    })
    .assert_ok();
    assert!(report.exhausted, "the publish interleavings must be fully explored: {report:?}");
}
