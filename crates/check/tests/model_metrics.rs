//! Model-checks the latency histogram (crates/serve/src/metrics.rs): `quantile` must
//! never scan past the buckets while records land mid-snapshot. The PR 6 bug — rank
//! derived from a `count` that ran ahead of the bucket loads — is reproduced here as an
//! explicit failing schedule against the pre-fix shape, and the shipped code passes the
//! very same torn snapshot.

use std::sync::Arc;
use std::time::Duration;

use msrp_check::model::{explore, replay, ModelConfig, Scenario};
use msrp_check::sync::{AtomicU64, Ordering};
use msrp_serve::{HistogramSnapshot, LatencyHistogram};

/// The shipped histogram under concurrent record + snapshot: every quantile accessor
/// must return without panicking, whatever the interleaving. Bounded exploration (a
/// snapshot alone is 68 atomic loads); `MSRP_MODEL_EXHAUSTIVE=1` lifts the cap.
#[test]
fn quantile_never_scans_past_buckets_mid_flush() {
    explore(&ModelConfig::default(), || {
        let h = Arc::new(LatencyHistogram::new());
        let (hw, hr) = (Arc::clone(&h), Arc::clone(&h));
        Scenario::new(vec![
            Box::new(move || {
                hw.record(Duration::from_nanos(100));
            }),
            Box::new(move || {
                let snap = hr.snapshot();
                // The old unreachable! fired inside quantile when count outran the
                // buckets; any panic here becomes a failing schedule.
                let _ = snap.p50();
                let _ = snap.p99();
                let _ = snap.quantile(1.0);
                assert!(snap.count <= 1, "count overshot the single record");
            }),
        ])
    })
    .assert_ok();
}

/// The pre-fix quantile shape: rank derived from the snapshot's `count` field instead of
/// the bucket sum. Kept to four buckets so the model state stays tiny; the failure mode
/// is identical to the shipped 64-bucket layout.
struct PreFixHistogram {
    buckets: [AtomicU64; 4],
    count: AtomicU64,
}

impl PreFixHistogram {
    fn new() -> Self {
        PreFixHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }

    fn record_bucket0(&self) {
        self.buckets[0].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The shipped snapshot load order: buckets first, `count` after — which is exactly
    /// what lets `count` run ahead of the bucket sum.
    fn snapshot(&self) -> (Vec<u64>, u64) {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = self.count.load(Ordering::Relaxed);
        (buckets, count)
    }

    /// Pre-fix rank computation. The panic replicates the old `unreachable!`.
    fn quantile_prefix_shape(buckets: &[u64], count: u64, q: f64) -> u64 {
        if count == 0 {
            return 0;
        }
        let rank = (q * count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        panic!("rank {rank} exceeds bucket sum {seen}: count ran ahead of the buckets");
    }
}

fn prefix_scenario() -> Scenario {
    let h = Arc::new(PreFixHistogram::new());
    let (hw, hr) = (Arc::clone(&h), Arc::clone(&h));
    Scenario::new(vec![
        Box::new(move || hw.record_bucket0()),
        Box::new(move || {
            let (buckets, count) = hr.snapshot();
            let _ = PreFixHistogram::quantile_prefix_shape(&buckets, count, 0.5);
        }),
    ])
}

/// The count-ahead interleaving, written out as the explicit schedule that PR 6 fixed:
///
/// 1. reader loads `buckets[0]` → 0 (decision 1: step the reader, not the writer)
/// 2. writer bumps `buckets[0]`   (decision 0: back to the writer)
/// 3. writer bumps `count`        (decision 1: writer again, ahead of the reader)
/// 4. reader loads `count` → 1    (decision 0: newest store)
///
/// then reads of buckets 1–3 see 0, rank = ceil(0.5 · 1) = 1 exceeds the bucket sum 0,
/// and the pre-fix `unreachable!` fires. The pure-SC interleaving needs no weak-memory
/// reasoning, which is why the original race escaped into production unseen.
const COUNT_AHEAD_SCHEDULE: [usize; 4] = [1, 0, 1, 0];

#[test]
fn count_ahead_schedule_breaks_the_prefix_shape() {
    let failure = replay(&ModelConfig::default(), prefix_scenario, &COUNT_AHEAD_SCHEDULE)
        .failure
        .expect("the explicit count-ahead schedule must fail the pre-fix quantile");
    assert!(
        failure.message.contains("count ran ahead"),
        "wrong failure on the pinned schedule: {}",
        failure.message
    );
    // Exploration also finds it unaided — the pinned schedule is not load-bearing for
    // detection, only for documenting the interleaving.
    let found = explore(&ModelConfig::default(), prefix_scenario)
        .failure
        .expect("exploration must rediscover the count-ahead race");
    assert!(found.message.contains("count ran ahead"));
}

/// The shipped `HistogramSnapshot::quantile` answers the *same* torn snapshot (bucket
/// sum 0, count 1) without panicking: the rank comes from the buckets alone.
#[test]
fn shipped_quantile_survives_the_same_torn_snapshot() {
    explore(&ModelConfig::default(), || {
        let h = Arc::new(PreFixHistogram::new());
        let (hw, hr) = (Arc::clone(&h), Arc::clone(&h));
        Scenario::new(vec![
            Box::new(move || hw.record_bucket0()),
            Box::new(move || {
                let (mut buckets, count) = hr.snapshot();
                buckets.resize(64, 0);
                let snap = HistogramSnapshot {
                    buckets,
                    count,
                    sum_ns: u128::from(count) * 100,
                    max_ns: 100,
                };
                let _ = snap.p50();
                let _ = snap.quantile(1.0);
            }),
        ])
    })
    .assert_ok()
    .exhausted
    .then_some(())
    .expect("the four-op space must exhaust");
}
