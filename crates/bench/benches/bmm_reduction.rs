//! Experiment E4 (Criterion variant): the BMM → MSRP reduction (Theorem 2/28) vs the naive
//! combinatorial product.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use msrp_bmm::{multiply_via_msrp, BoolMatrix};
use msrp_core::MsrpParams;

fn bench_bmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmm_reduction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[16usize, 24, 32] {
        let a = BoolMatrix::random(n, 0.15, &mut rng);
        let b = BoolMatrix::random(n, 0.15, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| a.multiply_naive(&b))
        });
        group.bench_with_input(BenchmarkId::new("via_msrp", n), &n, |bench, _| {
            bench.iter(|| multiply_via_msrp(&a, &b, 2, &MsrpParams::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bmm);
criterion_main!(benches);
