//! The payoff measurement for the CSR traversal core: BFS, Dijkstra and the brute-force
//! `build_exact` loop on [`CsrGraph`] versus the seed adjacency-list / `Vec<Vec<…>>`
//! representations.
//!
//! Three comparisons, mirroring the three rewrites:
//!
//! * **BFS** — `bfs(&Graph)` (pointer-chasing `Vec<Vec<Vertex>>`, fresh buffers per run)
//!   versus `bfs_csr(&CsrGraph)` (flat arrays, fresh buffers) versus a reused
//!   [`BfsScratch`] (flat arrays, `O(visited)` reset);
//! * **Dijkstra** — a local copy of the seed `Vec<Vec<(usize, Weight)>>` search versus
//!   [`WeightedCsr::dijkstra`] on the frozen edge list (plus the build+search totals for
//!   both, since the solver builds each auxiliary graph exactly once);
//! * **build_exact** — a local copy of the seed oracle construction (one allocating BFS per
//!   tree edge per source) versus [`ReplacementPathOracle::build_exact`], which freezes once
//!   and shares one scratch.
//!
//! Snapshot the numbers into `BENCH_csr.json` with
//! `CRITERION_SUMMARY=bench.jsonl cargo bench -p msrp-bench --bench graph_csr`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msrp_bench::workloads::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_graph::{
    bfs, bfs_avoiding_edge, bfs_csr, BfsScratch, Edge, Graph, ShortestPathTree, Vertex, Weight,
    WeightedDigraph, INFINITE_WEIGHT,
};
use msrp_oracle::ReplacementPathOracle;
use msrp_rpath::SourceReplacementDistances;

/// The seed representation of the auxiliary digraphs: one heap-allocated `Vec` per node.
/// Kept verbatim (modulo naming) from the pre-CSR `WeightedDigraph` as the baseline side of
/// the `dijkstra` comparison.
struct SeedDigraph {
    adj: Vec<Vec<(usize, Weight)>>,
}

impl SeedDigraph {
    fn from_edges(n: usize, edges: &[(usize, usize, Weight)]) -> Self {
        let mut adj: Vec<Vec<(usize, Weight)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            adj[u].push((v, w));
        }
        SeedDigraph { adj }
    }

    fn dijkstra(&self, source: usize) -> Vec<Weight> {
        let n = self.adj.len();
        let mut dist = vec![INFINITE_WEIGHT; n];
        let mut heap: BinaryHeap<Reverse<(Weight, usize)>> = BinaryHeap::new();
        dist[source] = 0;
        heap.push(Reverse((0, source)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            for &(w, wt) in &self.adj[v] {
                let nd = d.saturating_add(wt);
                if nd < dist[w] {
                    dist[w] = nd;
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        dist
    }
}

/// The seed `build_exact`: BFS trees over the adjacency lists and one fresh-allocation BFS
/// per tree edge per source (what `ReplacementPathOracle::build_exact` did before the CSR
/// core).
fn seed_build_exact(g: &Graph, sources: &[Vertex]) -> Vec<SourceReplacementDistances> {
    let n = g.vertex_count();
    sources
        .iter()
        .map(|&s| {
            let tree = ShortestPathTree::build(g, s);
            let mut out = SourceReplacementDistances::new(&tree);
            for c in 0..n {
                let p = match tree.parent(c) {
                    Some(p) => p,
                    None => continue,
                };
                let e = Edge::new(p, c);
                let pos = tree.distance_or_infinite(c) as usize - 1;
                let alt = bfs_avoiding_edge(g, s, e);
                for t in 0..n {
                    if tree.is_reachable(t) && tree.is_ancestor(c, t) {
                        out.set(t, pos, alt.dist[t]);
                    }
                }
            }
            out
        })
        .collect()
}

/// A deterministic weighted digraph shaped like the solver's auxiliary graphs: a star of
/// base edges from node 0 plus layered cross edges.
fn aux_digraph_edges(n: usize) -> Vec<(usize, usize, Weight)> {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((0, v, (v % 17) as Weight));
    }
    for v in 1..n {
        // A few forward edges per node, deterministic and acyclic-ish like pair-node layers.
        for k in 1..=3usize {
            let t = v + k * 7;
            if t < n {
                edges.push((v, t, ((v * k) % 11 + 1) as Weight));
            }
        }
    }
    edges
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_csr");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    // n = 1024 stays cache-resident (representation effects are within code-layout noise
    // there; see BENCH_csr.json _meta); n = 16384 is the memory-bound regime the CSR layout
    // exists for.
    for n in [1024usize, 16384] {
        let g = standard_graph(WorkloadKind::SparseRandom, n, 3);
        let csr = g.freeze();
        group.bench_with_input(BenchmarkId::new("bfs_seed_adjacency", n), &n, |b, _| {
            b.iter(|| bfs(&g, 0))
        });
        group.bench_with_input(BenchmarkId::new("bfs_csr_fresh", n), &n, |b, _| {
            b.iter(|| bfs_csr(&csr, 0))
        });
        let mut scratch = BfsScratch::new();
        group.bench_with_input(BenchmarkId::new("bfs_csr_scratch", n), &n, |b, _| {
            b.iter(|| {
                scratch.run(&csr, 0);
                scratch.dist()[n / 2]
            })
        });
        let avoid = g.edge_vec()[0];
        group.bench_with_input(BenchmarkId::new("bfs_avoid_seed_adjacency", n), &n, |b, _| {
            b.iter(|| bfs_avoiding_edge(&g, 0, avoid))
        });
        group.bench_with_input(BenchmarkId::new("bfs_avoid_csr_scratch", n), &n, |b, _| {
            b.iter(|| {
                scratch.run_avoiding(&csr, 0, avoid);
                scratch.dist()[n / 2]
            })
        });
    }
    group.finish();
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_csr");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for n in [4096usize, 16384] {
        let edges = aux_digraph_edges(n);
        let seed = SeedDigraph::from_edges(n, &edges);
        let mut builder = WeightedDigraph::new(n);
        for &(u, v, w) in &edges {
            builder.add_edge(u, v, w);
        }
        let frozen = builder.freeze();
        // Sanity: both sides must compute the same distances.
        assert_eq!(seed.dijkstra(0), frozen.dijkstra(0).dist);

        group.bench_with_input(BenchmarkId::new("dijkstra_seed_vecvec_run", n), &n, |b, _| {
            b.iter(|| seed.dijkstra(0))
        });
        group.bench_with_input(BenchmarkId::new("dijkstra_csr_run", n), &n, |b, _| {
            b.iter(|| frozen.dijkstra(0))
        });
        group.bench_with_input(
            BenchmarkId::new("dijkstra_seed_vecvec_build_and_run", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let g = SeedDigraph::from_edges(n, &edges);
                    g.dijkstra(0)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("dijkstra_csr_build_and_run", n), &n, |b, _| {
            b.iter(|| {
                let mut g = WeightedDigraph::new(n);
                for &(u, v, w) in &edges {
                    g.add_edge(u, v, w);
                }
                g.dijkstra(0)
            })
        });
    }
    group.finish();
}

fn bench_build_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_csr");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    for n in [256usize, 512] {
        let g = standard_graph(WorkloadKind::SparseRandom, n, 3);
        let sources = evenly_spaced_sources(g.vertex_count(), 2);
        // Sanity: the CSR construction must agree with the seed construction entry-for-entry
        // (a handful of targets per source is plenty for a bench-time check).
        {
            let seed_out = seed_build_exact(&g, &sources);
            let oracle = ReplacementPathOracle::build_exact(&g, &sources);
            for (s_idx, &s) in sources.iter().enumerate() {
                let tree = ShortestPathTree::build(&g, s);
                for t in (0..g.vertex_count()).step_by(g.vertex_count() / 8) {
                    if !tree.is_reachable(t) {
                        continue;
                    }
                    for e in g.edges() {
                        assert_eq!(
                            oracle.replacement_distance(s, t, e),
                            Some(seed_out[s_idx].distance_avoiding(&tree, t, e)),
                            "s={s} t={t} e={e}"
                        );
                    }
                }
            }
        }
        group.bench_with_input(
            BenchmarkId::new("build_exact_seed_per_bfs_alloc", n),
            &n,
            |b, _| b.iter(|| seed_build_exact(&g, &sources)),
        );
        group.bench_with_input(BenchmarkId::new("build_exact_csr_scratch", n), &n, |b, _| {
            b.iter(|| ReplacementPathOracle::build_exact(&g, &sources))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs, bench_dijkstra, bench_build_exact);
criterion_main!(benches);
