//! Experiment E11 (Criterion variant): the cost of keeping a service current under churn.
//!
//! Three questions, matching `EXPERIMENTS.md` §E11 and the `BENCH_churn.json` snapshot:
//!
//! * what does a from-scratch shard rebuild cost after one edge toggle (the baseline an
//!   epoch swap would otherwise pay)?
//! * how much of that does the incremental path (`ShardedOracle::rebuild_bk_csr`) save, on
//!   the two interesting toggle shapes — a non-tree edge (tables patched in place) and a
//!   tree edge (some sources rebuilt outright)?
//! * what does an epoch publish + fully-loaded batch cost end to end while swaps land?

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use msrp_bench::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_serve::{random_queries, EpochOracle, QueryService, ServiceConfig, ShardedOracle};

const SIGMA: usize = 8;

/// Picks a tree edge of the first source's BFS tree and a non-tree edge (if any).
fn toggle_edges(g: &msrp_graph::Graph, sources: &[usize]) -> (msrp_graph::Edge, msrp_graph::Edge) {
    let csr = g.freeze();
    let tree = msrp_graph::ShortestPathTree::build_csr(&csr, sources[0]);
    let mut tree_edge = None;
    let mut nontree_edge = None;
    for e in g.edges() {
        if tree.is_tree_edge(e) {
            tree_edge.get_or_insert(e);
        } else {
            nontree_edge.get_or_insert(e);
        }
    }
    (
        tree_edge.expect("connected graph has tree edges"),
        nontree_edge.unwrap_or_else(|| tree_edge.unwrap()),
    )
}

fn bench_rebuild_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_rebuild");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let n = 192;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let sources = evenly_spaced_sources(n, SIGMA);
    let (tree_e, nontree_e) = toggle_edges(&g, &sources);
    let base = ShardedOracle::build_bk_csr(&g.freeze(), &sources, 2);
    for (label, e) in [("nontree_edge", nontree_e), ("tree_edge", tree_e)] {
        let mut g2 = g.clone();
        let (u, v) = e.endpoints();
        g2.remove_edge(u, v).unwrap();
        let csr2 = g2.freeze();
        group.bench_with_input(BenchmarkId::new("full_rebuild", label), &csr2, |b, csr2| {
            b.iter(|| ShardedOracle::build_bk_csr(csr2, &sources, 2))
        });
        group.bench_with_input(BenchmarkId::new("incremental_rebuild", label), &csr2, |b, csr2| {
            b.iter(|| base.rebuild_bk_csr(csr2, e))
        });
    }
    group.finish();
}

fn bench_swap_under_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_serving");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let n = 192;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let sources = evenly_spaced_sources(n, SIGMA);
    let (_, nontree_e) = toggle_edges(&g, &sources);
    let oracle_a = ShardedOracle::build_bk_csr(&g.freeze(), &sources, 2);
    let mut g2 = g.clone();
    let (u, v) = nontree_e.endpoints();
    g2.remove_edge(u, v).unwrap();
    let oracle_b = ShardedOracle::build_bk_csr(&g2.freeze(), &sources, 2);
    let service =
        QueryService::start(EpochOracle::new(oracle_a.clone()), &ServiceConfig { workers: 2 });
    let mut rng = StdRng::seed_from_u64(5);
    let queries = random_queries(&g, &sources, 256, &mut rng);
    // Each iteration publishes a new epoch (alternating the two prebuilt shard sets) and
    // answers a 256-query batch through it: the steady-state cost of serving under churn.
    let mut flip = false;
    group.bench_function("publish_swap_plus_256_query_batch", |b| {
        b.iter(|| {
            flip = !flip;
            let next = if flip { oracle_b.clone() } else { oracle_a.clone() };
            let epoch = service.oracle().publish(next);
            (epoch.id, service.answer_batch(&queries).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rebuild_paths, bench_swap_under_load);
criterion_main!(benches);
