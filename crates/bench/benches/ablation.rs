//! Experiment E6 (Criterion variant): ablations of the design choices called out in `DESIGN.md`
//! — path-cover vs exact source→landmark tables, refinement sweeps on/off, paper vs scaled
//! constants.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use msrp_bench::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_core::{solve_msrp, MsrpParams, SourceToLandmarkStrategy};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let n = 192;
    let sigma = 8;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 23);
    let sources = evenly_spaced_sources(n, sigma);

    let configs: Vec<(&str, MsrpParams)> = vec![
        ("path_cover_scaled", MsrpParams::scaled_for_benchmarks()),
        (
            "exact_tables_scaled",
            MsrpParams::scaled_for_benchmarks().with_strategy(SourceToLandmarkStrategy::Exact),
        ),
        (
            "path_cover_no_refinement",
            MsrpParams { refinement_sweeps: 0, ..MsrpParams::scaled_for_benchmarks() },
        ),
        ("path_cover_paper_constants", MsrpParams::default()),
    ];
    for (name, params) in configs {
        group.bench_function(name, |b| b.iter(|| solve_msrp(&g, &sources, &params)));
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
