//! The payoff measurement for snapshot persistence: booting a serving oracle from a
//! `msrp-snap` buffer (`ShardedOracle::from_snapshot` — checksum walk + validated table
//! adoption) against re-running the Bernstein–Karger construction from the frozen graph
//! (`ShardedOracle::build_bk_csr`), on the sparse-random workload at the `--large`-tier
//! size `n = 2^17` (plus a smaller point for the scaling shape).
//!
//! The booted oracle is asserted **bit-identical** before anything is timed: re-encoding
//! it must reproduce the snapshot buffer byte-for-byte, so both routes answer the same
//! queries by construction (the same canonical-encoding check the snapshot fuzz battery
//! pins).
//!
//! Snapshot the numbers into `BENCH_snapshot.json` with
//! `CRITERION_SUMMARY=bench.jsonl cargo bench -p msrp-bench --bench oracle_snapshot`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msrp_bench::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_serve::service::ShardedOracle;

fn bench_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_snapshot");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_millis(300));

    // n = 2^14 shows the shape; n = 2^17 is the acceptance point (the `--large`
    // experiment tier), where the BK build walks ~n log n edge-touches per source while
    // the snapshot boot is one linear checksum + copy pass over the buffer.
    // σ = 4 matches the `msrpctl create` default.
    for n in [1usize << 14, 1 << 17] {
        let csr = standard_graph(WorkloadKind::SparseRandom, n, 7).freeze();
        let sources = evenly_spaced_sources(n, 4);
        let oracle = ShardedOracle::build_bk_csr(&csr, &sources, 2);
        let bytes = oracle.to_snapshot(&csr);
        // Bit-identical before timing: boot, then prove the round trip is canonical.
        {
            let (g2, booted) = ShardedOracle::from_snapshot(&bytes).expect("pristine snapshot");
            assert_eq!(g2, csr, "n={n}");
            assert_eq!(booted.to_snapshot(&g2), bytes, "n={n}: boot is not bit-identical");
        }
        group.bench_with_input(BenchmarkId::new("build_bk_from_scratch", n), &n, |b, _| {
            b.iter(|| ShardedOracle::build_bk_csr(&csr, &sources, 2))
        });
        group.bench_with_input(BenchmarkId::new("boot_from_snapshot", n), &n, |b, _| {
            b.iter(|| ShardedOracle::from_snapshot(&bytes).expect("pristine snapshot"))
        });
        group.bench_with_input(BenchmarkId::new("encode_snapshot", n), &n, |b, _| {
            b.iter(|| oracle.to_snapshot(&csr))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_boot);
criterion_main!(benches);
