//! Experiment E8 (Criterion variant): scaling of the serving subsystem.
//!
//! Two questions, matching `EXPERIMENTS.md` §E8 and the `BENCH_service.json` snapshot:
//!
//! * does sharded oracle *construction* (`build_parallel`) scale with the thread count?
//! * does concurrent *querying* through the `QueryService` worker pool scale with the worker
//!   count, and what does the pool cost over a direct in-process query loop?

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use msrp_bench::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_core::MsrpParams;
use msrp_oracle::ReplacementPathOracle;
use msrp_serve::{random_queries, PendingBatch, Query, QueryService, ServiceConfig, ShardedOracle};

const SIGMA: usize = 8;
const QUERIES: usize = 16384;

fn bench_parallel_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let n = 192;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let sources = evenly_spaced_sources(n, SIGMA);
    let params = MsrpParams::scaled_for_benchmarks();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("build_parallel_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| ReplacementPathOracle::build_parallel(&g, &sources, &params, threads))
            },
        );
    }
    group.finish();
}

fn bench_concurrent_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let n = 256;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let sources = evenly_spaced_sources(n, SIGMA);
    let params = MsrpParams::scaled_for_benchmarks();
    let mut rng = StdRng::seed_from_u64(5);
    let queries = random_queries(&g, &sources, QUERIES, &mut rng);

    // Baseline: the same query set answered by a direct in-process loop (no queue, no pool).
    let direct = ShardedOracle::build(&g, &sources, &params, 1);
    group.bench_function("direct_oracle_loop_16k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &queries {
                acc = acc.wrapping_add(direct.query(q).unwrap_or(0) as u64);
            }
            acc
        })
    });

    for workers in [1usize, 2, 4] {
        let service = QueryService::build_and_start(
            &g,
            &sources,
            &params,
            workers,
            &ServiceConfig { workers },
        );
        // Split the workload into one in-flight batch per worker so the pool actually runs
        // concurrently; a single answer_batch call would serialize on one worker.
        let batches: Vec<&[Query]> = queries.chunks(QUERIES / workers).collect();
        group.bench_with_input(
            BenchmarkId::new("service_16k_queries_workers", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let pending: Vec<PendingBatch> =
                        batches.iter().map(|batch| service.submit(batch)).collect();
                    pending.into_iter().map(|p| p.wait().len()).sum::<usize>()
                })
            },
        );
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_build, bench_concurrent_queries);
criterion_main!(benches);
