//! Experiment E2 (Criterion variant): multi-source replacement paths as σ grows, fixed graph.
//! The paper's claim (Theorem 1/26) is an `Õ(m·sqrt(nσ) + σn²)` interpolation between the σ=1
//! (Chechik–Cohen) and σ=n (Bernstein–Karger) endpoints.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msrp_bench::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_core::{solve_msrp, MsrpParams, SourceToLandmarkStrategy};
use msrp_graph::ShortestPathTree;
use msrp_rpath::single_source_brute_force;

fn bench_msrp_sigma(c: &mut Criterion) {
    let mut group = c.benchmark_group("msrp_sigma");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let n = 256;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 7);
    for &sigma in &[1usize, 2, 4, 8] {
        let sources = evenly_spaced_sources(n, sigma);
        let cover = MsrpParams::scaled_for_benchmarks();
        group.bench_with_input(BenchmarkId::new("path_cover", sigma), &sigma, |b, _| {
            b.iter(|| solve_msrp(&g, &sources, &cover))
        });
        let exact = cover.clone().with_strategy(SourceToLandmarkStrategy::Exact);
        group.bench_with_input(BenchmarkId::new("exact_tables", sigma), &sigma, |b, _| {
            b.iter(|| solve_msrp(&g, &sources, &exact))
        });
        group.bench_with_input(
            BenchmarkId::new("per_source_brute_force", sigma),
            &sigma,
            |b, _| {
                b.iter(|| {
                    for &s in &sources {
                        let tree = ShortestPathTree::build(&g, s);
                        let _ = single_source_brute_force(&g, &tree);
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_msrp_sigma);
criterion_main!(benches);
