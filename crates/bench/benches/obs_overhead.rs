//! The observability tax: what span tracing + slow-query logging cost on the serving hot
//! path (the `BENCH_obs.json` snapshot; the acceptance bar is < 3% on the batch p50).
//!
//! Three measurements:
//!
//! * the same 256-query batch answered by an identical worker pool with tracing off vs on
//!   (journal + slow-query log armed, threshold high enough that nothing is captured — the
//!   steady-state configuration), which is the overhead number that matters;
//! * the journal write itself (`SpanJournal::record`), the primitive each batch pays three
//!   times when tracing is on;
//! * `render_metrics`, the cost a `METRICS` wire request puts on the serving process.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use msrp_bench::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_obs::SpanJournal;
use msrp_serve::{random_queries, ObsConfig, QueryService, ServiceConfig, ShardedOracle};

const SIGMA: usize = 8;
const BATCH: usize = 256;

/// The tracing-on configuration under test: journal and slow-query log armed, threshold
/// high enough that a healthy batch never takes the capture path — the configuration a
/// production service would actually run with.
fn traced_config() -> ObsConfig {
    ObsConfig {
        journal_capacity: 65_536,
        slow_query_threshold: Some(Duration::from_millis(50)),
        slow_log_capacity: 64,
        trace_seed: 42,
    }
}

fn bench_batch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let n = 192;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let sources = evenly_spaced_sources(n, SIGMA);
    let oracle = ShardedOracle::build_bk_csr(&g.freeze(), &sources, 2);
    let mut rng = StdRng::seed_from_u64(5);
    let queries = random_queries(&g, &sources, BATCH, &mut rng);
    let config = ServiceConfig { workers: 2 };
    for (label, obs) in [("tracing_off", ObsConfig::default()), ("tracing_on", traced_config())] {
        let service = QueryService::start_observed(oracle.clone(), &config, &obs);
        group.bench_function(format!("batch_{BATCH}_{label}"), |b| {
            b.iter(|| service.answer_batch(&queries).len())
        });
        // Tracing on must actually have traced: three spans per batch, nothing dropped
        // into the slow log at this threshold.
        if obs.enabled() {
            let journal = service.journal_snapshot().expect("journal armed");
            assert!(journal.total > 0 && journal.total % 3 == 0, "spans were journaled");
        }
    }
    group.finish();
}

fn bench_obs_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    let journal = SpanJournal::new(65_536);
    let mut ticket = 0u64;
    group.bench_function("journal_record", |b| {
        b.iter(|| {
            ticket += 1;
            journal.record(ticket, 1, 0, Duration::from_micros(7));
        })
    });
    // Exposition rendering against a service that has real traffic in its histograms.
    let n = 96;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let sources = evenly_spaced_sources(n, SIGMA);
    let service = QueryService::start_observed(
        ShardedOracle::build_bk_csr(&g.freeze(), &sources, 2),
        &ServiceConfig { workers: 2 },
        &traced_config(),
    );
    let mut rng = StdRng::seed_from_u64(6);
    let queries = random_queries(&g, &sources, 64, &mut rng);
    for _ in 0..32 {
        service.answer_batch(&queries);
    }
    group.bench_function("render_metrics", |b| b.iter(|| service.render_metrics().len()));
    group.finish();
}

criterion_group!(benches, bench_batch_overhead, bench_obs_primitives);
criterion_main!(benches);
