//! The payoff measurement for the Bernstein–Karger preprocessing: `build_bk` (heavy-path
//! cover + one multi-seed subtree BFS per tree-edge cut) against `build_exact` (one full
//! avoiding-BFS per tree edge) on the `graph_csr`/`oracle_queries` workloads, plus the query
//! surface of a BK-built oracle against recomputation.
//!
//! Both constructions are asserted to produce **identical tables** before anything is timed
//! (row-for-row `==`, the same check `tests/bk_differential.rs` pins), so every pair of
//! numbers compares two routes to the same answers.
//!
//! Snapshot the numbers into `BENCH_bk.json` with
//! `CRITERION_SUMMARY=bench.jsonl cargo bench -p msrp-bench --bench oracle_bk`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_bench::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_graph::bfs_csr_avoiding_edge;
use msrp_oracle::ReplacementPathOracle;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_bk");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    // The graph_csr build sizes (256, 512) plus a larger point where the asymptotic gap —
    // BK touches each edge O(depth) times, the brute force O(n) times — dominates.
    for n in [256usize, 512, 1024] {
        let g = standard_graph(WorkloadKind::SparseRandom, n, 3);
        let csr = g.freeze();
        let sources = evenly_spaced_sources(n, 2);
        // Identical tables, asserted before timing.
        {
            let bk = ReplacementPathOracle::build_bk_csr(&csr, &sources);
            let exact = ReplacementPathOracle::build_exact_csr(&csr, &sources);
            assert_eq!(bk.per_source(), exact.per_source(), "n={n}");
        }
        group.bench_with_input(BenchmarkId::new("build_exact_per_edge_bfs", n), &n, |b, _| {
            b.iter(|| ReplacementPathOracle::build_exact_csr(&csr, &sources))
        });
        group.bench_with_input(BenchmarkId::new("build_bk_path_cover", n), &n, |b, _| {
            b.iter(|| ReplacementPathOracle::build_bk_csr(&csr, &sources))
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_bk");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    // The oracle_queries workload shape (n=256, σ=8, 512 seeded queries), served from a
    // BK-built oracle.
    let n = 256;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let csr = g.freeze();
    let sources = evenly_spaced_sources(n, 8);
    let oracle = ReplacementPathOracle::build_bk_csr(&csr, &sources);
    {
        let exact = ReplacementPathOracle::build_exact_csr(&csr, &sources);
        assert_eq!(oracle.per_source(), exact.per_source());
    }
    let mut rng = StdRng::seed_from_u64(5);
    let edges = g.edge_vec();
    let queries: Vec<_> = (0..512)
        .map(|_| {
            (
                sources[rng.gen_range(0..sources.len())],
                rng.gen_range(0..n),
                edges[rng.gen_range(0..edges.len())],
            )
        })
        .collect();
    group.bench_function("bk_oracle_512_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(s, t, e) in &queries {
                acc = acc.wrapping_add(oracle.replacement_distance(s, t, e).unwrap_or(0) as u64);
            }
            acc
        })
    });
    group.bench_function("bfs_recompute_32_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(s, t, e) in queries.iter().take(32) {
                acc = acc.wrapping_add(bfs_csr_avoiding_edge(&csr, s, e).dist[t] as u64);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
