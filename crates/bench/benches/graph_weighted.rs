//! The payoff measurement for the weighted MSRP pipeline: reusable-scratch Dijkstra on the
//! weighted CSR substrate, and the crossing-edge subtree solver versus the weighted brute
//! force it is validated against.
//!
//! Three comparisons:
//!
//! * **Dijkstra** — one-shot [`WeightedCsrGraph::dijkstra`] (fresh buffers per run) versus a
//!   reused [`DijkstraScratch`] (`O(visited)` reset), plus the edge-avoiding variant, on the
//!   standard sparse-random workload with seed-pinned random weights;
//! * **weighted trees** — [`WeightedTree::build_with_scratch`] (the per-source preprocessing
//!   of the weighted solver and oracle);
//! * **weighted MSRP** — [`solve_msrp_weighted`] (one subtree-restricted multi-seed Dijkstra
//!   per tree edge; output-sensitive) versus
//!   [`WeightedReplacementOracle::build_exact`] (one full-graph Dijkstra per tree edge), with
//!   the two asserted entry-for-entry equal before timing.
//!
//! Snapshot the numbers into `BENCH_weighted.json` with
//! `CRITERION_SUMMARY=bench.jsonl cargo bench -p msrp-bench --bench graph_weighted`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msrp_bench::workloads::{evenly_spaced_sources, standard_weighted_graph, WorkloadKind};
use msrp_core::solve_msrp_weighted;
use msrp_graph::{DijkstraScratch, WeightedTree};
use msrp_oracle::WeightedReplacementOracle;
use msrp_rpath::single_source_brute_force_weighted;

const MAX_WEIGHT: u64 = 1000;

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_weighted");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    // Mirror graph_csr's size choice: n = 1024 is cache-resident, n = 16384 memory-bound.
    for n in [1024usize, 16384] {
        let g = standard_weighted_graph(WorkloadKind::SparseRandom, n, 3, MAX_WEIGHT).freeze();
        group.bench_with_input(BenchmarkId::new("dijkstra_fresh", n), &n, |b, _| {
            b.iter(|| g.dijkstra(0))
        });
        let mut scratch = DijkstraScratch::new();
        group.bench_with_input(BenchmarkId::new("dijkstra_scratch", n), &n, |b, _| {
            b.iter(|| {
                scratch.run(&g, 0);
                scratch.dist()[n / 2]
            })
        });
        let avoid = g.edge_vec()[0].0;
        group.bench_with_input(BenchmarkId::new("dijkstra_avoid_scratch", n), &n, |b, _| {
            b.iter(|| {
                scratch.run_avoiding(&g, 0, avoid);
                scratch.dist()[n / 2]
            })
        });
        group.bench_with_input(BenchmarkId::new("weighted_tree_build", n), &n, |b, _| {
            b.iter(|| WeightedTree::build_with_scratch(&g, 0, &mut scratch))
        });
    }
    group.finish();
}

fn bench_weighted_msrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_weighted");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    for n in [256usize, 512] {
        let g = standard_weighted_graph(WorkloadKind::SparseRandom, n, 3, MAX_WEIGHT).freeze();
        let sources = evenly_spaced_sources(g.vertex_count(), 2);
        // Sanity: the subtree solver must agree with the brute force entry for entry —
        // the full replacement tables are compared bit for bit, not sampled.
        {
            let out = solve_msrp_weighted(&g, &sources);
            let mut scratch = DijkstraScratch::new();
            for (tree, solved) in out.trees.iter().zip(&out.per_source) {
                let truth = single_source_brute_force_weighted(&g, tree, &mut scratch);
                assert_eq!(*solved, truth, "source {}", tree.source());
            }
        }
        group.bench_with_input(BenchmarkId::new("weighted_msrp_subtree", n), &n, |b, _| {
            b.iter(|| solve_msrp_weighted(&g, &sources))
        });
        group.bench_with_input(BenchmarkId::new("weighted_brute_force", n), &n, |b, _| {
            b.iter(|| WeightedReplacementOracle::build_exact(&g, &sources))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dijkstra, bench_weighted_msrp);
criterion_main!(benches);
