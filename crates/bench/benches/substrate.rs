//! Micro-benchmarks of the substrates the algorithm is built on: BFS / shortest-path trees, the
//! classical single-pair routine, LCA construction, and the cuckoo hash table against the
//! standard library map.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use msrp_bench::{standard_graph, WorkloadKind};
use msrp_graph::{bfs, bfs_distances, CuckooHashMap, ShortestPathTree};
use msrp_rpath::single_pair_replacement_paths;

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let g = standard_graph(WorkloadKind::SparseRandom, 1024, 3);
    let csr = g.freeze();
    let tree = ShortestPathTree::build(&g, 0);
    let dist_to_target = bfs_distances(&g, 777);

    group.bench_function("bfs_n1024", |b| b.iter(|| bfs(&g, 0)));
    group.bench_function("shortest_path_tree_n1024", |b| b.iter(|| ShortestPathTree::build(&g, 0)));
    group.bench_function("lca_index_n1024", |b| b.iter(|| tree.lca_index()));
    group.bench_function("classical_single_pair_n1024", |b| {
        b.iter(|| single_pair_replacement_paths(&csr, &tree, 777, &dist_to_target))
    });

    let keys: Vec<(u32, u32, u64)> = (0..20_000u32).map(|i| (i % 64, i / 64, i as u64)).collect();
    group.bench_function("cuckoo_insert_get_20k", |b| {
        b.iter(|| {
            let mut m = CuckooHashMap::with_capacity(32_768);
            for &k in &keys {
                m.insert(k, k.2 as u32);
            }
            let mut acc = 0u64;
            for &k in &keys {
                acc += *m.get(&k).unwrap() as u64;
            }
            acc
        })
    });
    group.bench_function("std_hashmap_insert_get_20k", |b| {
        b.iter(|| {
            let mut m = HashMap::with_capacity(32_768);
            for &k in &keys {
                m.insert(k, k.2 as u32);
            }
            let mut acc = 0u64;
            for &k in &keys {
                acc += *m.get(&k).unwrap() as u64;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
