//! Head-to-head measurement of the three BFS kernels: the seed top-down [`BfsScratch`],
//! the direction-optimizing [`DirOptScratch`], and the 64-way bit-parallel
//! [`MultiBfsScratch`] wave — on a low-diameter sparse-random workload (where dir-opt's
//! bottom-up levels pay off) and a high-diameter grid (where they cannot, the cost-honest
//! flip condition never fires, and the only acceptable overhead is the per-level switch
//! decision itself).
//!
//! Wave timings cover an *entire 64-source wave* — divide by 64 for the per-source figure
//! the crossover table in `BENCH_large.json` reports. The `avoid_*` pair is the oracle
//! `build_exact` inner loop's shape: 64 edge-avoiding searches from one source, sequential
//! versus one wave.
//!
//! The default sizes stay CI-friendly; set `MSRP_BENCH_LARGE=1` to extend the sweep into
//! the memory-bound `--large` tier (n up to 2²⁰). Snapshot into `BENCH_large.json` with
//! `MSRP_BENCH_LARGE=1 CRITERION_SUMMARY=bench.jsonl cargo bench -p msrp-bench --bench graph_bfs_kernels`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msrp_bench::workloads::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_graph::{bfs_trees_wave, BfsScratch, DirOptScratch, Edge, MultiBfsScratch, WAVE_LANES};

/// Default sizes plus, under `MSRP_BENCH_LARGE=1`, the memory-bound tier.
fn sizes() -> Vec<usize> {
    let mut sizes = vec![16_384usize, 65_536];
    if std::env::var("MSRP_BENCH_LARGE").is_ok_and(|v| v == "1") {
        sizes.extend([262_144, 1_048_576]);
    }
    sizes
}

fn bench_kernels(c: &mut Criterion) {
    let large = std::env::var("MSRP_BENCH_LARGE").is_ok_and(|v| v == "1");
    let mut group = c.benchmark_group("graph_bfs_kernels");
    // The large tier's slowest routine (64 sequential avoiding BFS at n = 2²⁰) runs ~10 s
    // per iteration; fewer samples keep the whole recorded sweep under half an hour.
    group
        .sample_size(if large { 5 } else { 10 })
        .measurement_time(Duration::from_secs(if large { 1 } else { 2 }))
        .warm_up_time(Duration::from_millis(300));

    for kind in [WorkloadKind::SparseRandom, WorkloadKind::Grid] {
        for &n in &sizes() {
            let csr = standard_graph(kind, n, 3).freeze();
            let n = csr.vertex_count();
            let label = |k: &str| format!("{}/{k}", kind.label());
            let sources = evenly_spaced_sources(n, WAVE_LANES);
            let mut td = BfsScratch::new();
            let mut dopt = DirOptScratch::new();
            let mut wave = MultiBfsScratch::new();
            // Sanity at bench time: the three kernels must agree before being compared.
            td.run(&csr, 0);
            dopt.run(&csr, 0);
            wave.run_wave(&csr, &sources);
            assert_eq!(td.dist(), dopt.dist());
            assert_eq!(wave.lane_dist_vec(0), td.dist());

            group.bench_with_input(BenchmarkId::new(label("top_down"), n), &n, |b, _| {
                b.iter(|| {
                    td.run(&csr, 0);
                    td.dist()[n / 2]
                })
            });
            group.bench_with_input(BenchmarkId::new(label("dir_opt"), n), &n, |b, _| {
                b.iter(|| {
                    dopt.run(&csr, 0);
                    dopt.dist()[n / 2]
                })
            });
            group.bench_with_input(BenchmarkId::new(label("wave64"), n), &n, |b, _| {
                b.iter(|| {
                    wave.run_wave(&csr, &sources);
                    wave.lane_dist(0, n / 2)
                })
            });
            group.bench_with_input(BenchmarkId::new(label("wave64_trees"), n), &n, |b, _| {
                b.iter(|| bfs_trees_wave(&csr, &sources, &mut wave).len())
            });

            // The oracle-build inner loop: 64 searches from one source, each avoiding a
            // different tree edge of that source.
            let parent0: Vec<Edge> = {
                td.run(&csr, 0);
                (1..n)
                    .filter_map(|v| {
                        let p = td.parent_raw()[v];
                        (p != msrp_graph::NO_PARENT).then(|| Edge::new(p as usize, v))
                    })
                    .take(WAVE_LANES)
                    .collect()
            };
            group.bench_with_input(BenchmarkId::new(label("avoid64_seq"), n), &n, |b, _| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &e in &parent0 {
                        td.run_avoiding(&csr, 0, e);
                        acc += td.dist()[n / 2] as u64;
                    }
                    acc
                })
            });
            group.bench_with_input(BenchmarkId::new(label("avoid64_wave"), n), &n, |b, _| {
                b.iter(|| {
                    wave.run_avoiding_wave(&csr, 0, &parent0);
                    wave.lane_dist(0, n / 2)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
