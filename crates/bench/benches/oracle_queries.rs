//! Experiment E5 (Criterion variant): query latency of the fault-tolerant oracle (structured and
//! cuckoo-flattened) against recomputation with BFS.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_bench::{evenly_spaced_sources, standard_graph, WorkloadKind};
use msrp_core::MsrpParams;
use msrp_graph::bfs_avoiding_edge;
use msrp_oracle::ReplacementPathOracle;

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_queries");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let n = 256;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let sources = evenly_spaced_sources(n, 8);
    let oracle = ReplacementPathOracle::build(&g, &sources, &MsrpParams::scaled_for_benchmarks());
    let flat = oracle.flatten();
    let mut rng = StdRng::seed_from_u64(5);
    let edges = g.edge_vec();
    let queries: Vec<_> = (0..512)
        .map(|_| {
            (
                sources[rng.gen_range(0..sources.len())],
                rng.gen_range(0..n),
                edges[rng.gen_range(0..edges.len())],
            )
        })
        .collect();

    group.bench_function("structured_oracle_512_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(s, t, e) in &queries {
                acc = acc.wrapping_add(oracle.replacement_distance(s, t, e).unwrap_or(0) as u64);
            }
            acc
        })
    });
    group.bench_function("cuckoo_flat_oracle_512_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(s, t, e) in &queries {
                acc = acc.wrapping_add(flat.query(s, t, e).unwrap_or(0) as u64);
            }
            acc
        })
    });
    group.bench_function("bfs_recompute_32_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(s, t, e) in queries.iter().take(32) {
                acc = acc.wrapping_add(bfs_avoiding_edge(&g, s, e).dist[t] as u64);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
