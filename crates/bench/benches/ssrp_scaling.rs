//! Experiment E1 (Criterion variant): single-source replacement paths, paper algorithm vs the
//! `Õ(mn)` baselines, over growing `n` with `m ≈ 4n`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msrp_bench::{standard_graph, WorkloadKind};
use msrp_core::{solve_ssrp, MsrpParams};
use msrp_graph::ShortestPathTree;
use msrp_rpath::{single_source_brute_force, single_source_via_single_pair};

fn bench_ssrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssrp_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &n in &[128usize, 256, 512] {
        let g = standard_graph(WorkloadKind::SparseRandom, n, 42);
        let tree = ShortestPathTree::build(&g, 0);
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| single_source_brute_force(&g, &tree))
        });
        group.bench_with_input(BenchmarkId::new("classical_per_target", n), &n, |b, _| {
            b.iter(|| single_source_via_single_pair(&g, &tree))
        });
        let params = MsrpParams::scaled_for_benchmarks();
        group.bench_with_input(BenchmarkId::new("paper_ssrp", n), &n, |b, _| {
            b.iter(|| solve_ssrp(&g, 0, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssrp);
criterion_main!(benches);
