//! Guard for the `--large` tier's opt-in contract: `BENCH_large.json` is a *recorded
//! artifact* of a manual million-vertex run, and nothing on the default build/test path may
//! ever require it — CI must stay green on a checkout where the file does not exist, and no
//! CI step may quietly start running the memory-bound tier.

use std::fs;
use std::path::{Path, PathBuf};

/// Repository root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// Every `.rs` file under `crates/` (sources, tests, benches, bins).
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            if path.file_name().is_some_and(|f| f == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_code_on_the_default_path_requires_bench_large_json() {
    let root = repo_root();
    // Files allowed to *mention* the artifact (docs and this guard). None of them opens it:
    // that is exactly what the scan below rejects — any `.rs` file, including these, that
    // combines the artifact name with a filesystem read is a violation.
    let mut sources = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    assert!(sources.len() > 50, "the source scan must actually see the workspace");
    let mut mentions = Vec::new();
    for path in &sources {
        let text = fs::read_to_string(path).unwrap();
        if !text.contains("BENCH_large") {
            continue;
        }
        mentions.push(path.clone());
        let opens_files =
            ["read_to_string", "File::open", "fs::read"].iter().any(|call| text.contains(call));
        let is_this_guard = path.ends_with("crates/bench/tests/large_tier_guard.rs");
        assert!(
            !opens_files || is_this_guard,
            "{} mentions BENCH_large and performs file reads — the artifact must never \
             be a test-path input",
            path.display()
        );
    }
    assert!(!mentions.is_empty(), "doc mentions of the artifact should exist");
}

#[test]
fn ci_never_runs_the_large_tier() {
    let ci = fs::read_to_string(repo_root().join(".github/workflows/ci.yml")).unwrap();
    for line in ci.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with('#') {
            continue;
        }
        assert!(
            !trimmed.contains("--large") && !trimmed.contains("MSRP_BENCH_LARGE"),
            "CI must not opt into the large tier: `{line}`"
        );
    }
}

#[test]
fn the_default_test_path_is_independent_of_the_artifacts_presence() {
    // The artifact may or may not be checked in; either way this suite (and everything the
    // default `cargo test` runs before it) got this far without touching it.
    let artifact = repo_root().join("BENCH_large.json");
    // Both states are legal; reaching this line at all is the guarantee. Record which
    // state this run saw (visible under `cargo test -- --nocapture`).
    println!("large-tier artifact present: {}", artifact.exists());
}
