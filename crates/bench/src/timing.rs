//! Minimal wall-clock timing helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Runs `f` once and returns its result together with the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` once and returns its result together with the elapsed seconds.
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let (out, d) = time(f);
    (out, d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_returns_the_value_and_a_positive_duration() {
        let (v, d) = time(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d.as_nanos() > 0);
        let (v, s) = time_secs(|| "x");
        assert_eq!(v, "x");
        assert!(s >= 0.0);
    }
}
