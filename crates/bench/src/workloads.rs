//! Standard synthetic workloads used by the benches and the experiment harness.

use rand::rngs::StdRng;
use rand::SeedableRng;

use msrp_graph::generators::{
    barabasi_albert, connected_gnm, grid_graph, random_weights, torus_graph,
};
use msrp_graph::{Graph, Vertex, Weight, WeightedGraph};

/// The graph families used across the experiments.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Connected Erdős–Rényi graph with `m ≈ 4n` (the default workload).
    SparseRandom,
    /// Connected Erdős–Rényi graph with `m ≈ n·sqrt(n)/4` (denser regime).
    DenseRandom,
    /// Square grid (high diameter: exercises the far-edge machinery).
    Grid,
    /// Square torus.
    Torus,
    /// Preferential attachment with `k = 3` (skewed degrees).
    PreferentialAttachment,
}

impl WorkloadKind {
    /// All kinds, in display order.
    pub fn all() -> [WorkloadKind; 5] {
        [
            WorkloadKind::SparseRandom,
            WorkloadKind::DenseRandom,
            WorkloadKind::Grid,
            WorkloadKind::Torus,
            WorkloadKind::PreferentialAttachment,
        ]
    }

    /// Short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::SparseRandom => "sparse-random",
            WorkloadKind::DenseRandom => "dense-random",
            WorkloadKind::Grid => "grid",
            WorkloadKind::Torus => "torus",
            WorkloadKind::PreferentialAttachment => "pref-attach",
        }
    }
}

/// A named graph instance together with a source set.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name (`kind/n/σ`).
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// The sources.
    pub sources: Vec<Vertex>,
}

/// Builds the standard graph of the given kind with roughly `n` vertices.
pub fn standard_graph(kind: WorkloadKind, n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        WorkloadKind::SparseRandom => {
            connected_gnm(n, 4 * n, &mut rng).expect("valid sparse parameters")
        }
        WorkloadKind::DenseRandom => {
            let m = ((n as f64).powf(1.5) / 4.0).ceil() as usize;
            connected_gnm(n, m.max(2 * n), &mut rng).expect("valid dense parameters")
        }
        WorkloadKind::Grid => {
            let side = (n as f64).sqrt().round().max(2.0) as usize;
            grid_graph(side, side)
        }
        WorkloadKind::Torus => {
            let side = (n as f64).sqrt().round().max(3.0) as usize;
            torus_graph(side, side)
        }
        WorkloadKind::PreferentialAttachment => {
            barabasi_albert(n, 3, &mut rng).expect("valid preferential-attachment parameters")
        }
    }
}

/// The standard graph of the given kind lifted to uniform random weights in
/// `1..=max_weight`; the weighting is drawn from a sub-seed of `seed`, so
/// `(kind, n, seed, max_weight)` fully determines the instance (used by the
/// `graph_weighted` bench and experiment E9).
pub fn standard_weighted_graph(
    kind: WorkloadKind,
    n: usize,
    seed: u64,
    max_weight: Weight,
) -> WeightedGraph {
    let g = standard_graph(kind, n, seed);
    // Split-mix style sub-seed: the topology and the weighting draw from distinct streams.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    random_weights(&g, max_weight, &mut rng)
}

/// `sigma` sources spread evenly over `0..n`.
pub fn evenly_spaced_sources(n: usize, sigma: usize) -> Vec<Vertex> {
    let sigma = sigma.clamp(1, n.max(1));
    (0..sigma).map(|i| i * n / sigma).collect()
}

impl Workload {
    /// Builds a workload of the given kind, size and source count.
    pub fn new(kind: WorkloadKind, n: usize, sigma: usize, seed: u64) -> Self {
        let graph = standard_graph(kind, n, seed);
        let actual_n = graph.vertex_count();
        let sources = evenly_spaced_sources(actual_n, sigma);
        Workload {
            name: format!("{}/n={}/sigma={}", kind.label(), actual_n, sources.len()),
            graph,
            sources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_produce_connected_graphs() {
        for kind in WorkloadKind::all() {
            let g = standard_graph(kind, 64, 1);
            assert!(g.is_connected(), "{} must be connected", kind.label());
            assert!(g.vertex_count() >= 49);
        }
    }

    #[test]
    fn sources_are_distinct_and_in_range() {
        for sigma in [1usize, 2, 5, 16] {
            let s = evenly_spaced_sources(100, sigma);
            assert_eq!(s.len(), sigma);
            let mut d = s.clone();
            d.dedup();
            assert_eq!(d.len(), sigma);
            assert!(s.iter().all(|&v| v < 100));
        }
        assert_eq!(evenly_spaced_sources(5, 100).len(), 5);
    }

    #[test]
    fn workload_names_are_descriptive() {
        let w = Workload::new(WorkloadKind::Grid, 49, 3, 0);
        assert!(w.name.contains("grid"));
        assert!(w.name.contains("sigma=3"));
        assert_eq!(w.sources.len(), 3);
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = Workload::new(WorkloadKind::SparseRandom, 50, 2, 9);
        let b = Workload::new(WorkloadKind::SparseRandom, 50, 2, 9);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn weighted_workloads_are_deterministic_and_weight_bounded() {
        let a = standard_weighted_graph(WorkloadKind::SparseRandom, 64, 7, 100);
        let b = standard_weighted_graph(WorkloadKind::SparseRandom, 64, 7, 100);
        assert_eq!(a, b);
        assert_eq!(a.topology(), standard_graph(WorkloadKind::SparseRandom, 64, 7));
        assert!(a.edges().all(|(_, w)| (1..=100).contains(&w)));
        let c = standard_weighted_graph(WorkloadKind::SparseRandom, 64, 8, 100);
        assert_ne!(a, c);
    }
}
