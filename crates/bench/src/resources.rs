//! Process-level resource telemetry for the `--large` experiment tier.
//!
//! The million-vertex runs are memory-bound, so wall time alone does not explain a kernel's
//! behaviour — the tier's tables also record the process peak RSS (the `VmHWM` line of
//! `/proc/self/status`, i.e. the high-water mark across *everything* the run has allocated
//! so far) and the CSR working-set size normalized to bytes per edge, which is the number
//! the Õ(m√(nσ)) scaling story is told in.

use msrp_graph::CsrGraph;

/// Peak resident set size of the current process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
///
/// This is a high-water mark: it only ever grows, so per-phase deltas must be taken by
/// sampling before and after and subtracting — and a phase that stays under an earlier
/// peak reports a delta of zero.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Bytes the frozen CSR arrays occupy: `4 · (n + 1)` for the offsets plus `4 · 2m` for the
/// target lists (both endpoints of every undirected edge appear once).
pub fn csr_bytes(g: &CsrGraph) -> u64 {
    4 * (g.vertex_count() as u64 + 1) + 8 * g.edge_count() as u64
}

/// The CSR footprint normalized per edge — the locality figure the `--large` tables report.
/// Returns `0.0` for an edgeless graph rather than dividing by zero.
pub fn csr_bytes_per_edge(g: &CsrGraph) -> f64 {
    if g.edge_count() == 0 {
        0.0
    } else {
        csr_bytes(g) as f64 / g.edge_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::cycle_graph;

    #[test]
    fn peak_rss_is_positive_and_monotone() {
        let before = peak_rss_bytes().expect("procfs available on the test machines");
        assert!(before > 0);
        // Touch a real allocation; the high-water mark may or may not move (the process may
        // have peaked earlier), but it can never decrease.
        let buf = vec![1u8; 1 << 20];
        let after = peak_rss_bytes().unwrap();
        assert!(after >= before, "VmHWM decreased: {before} -> {after}");
        assert!(buf[1 << 19] == 1);
    }

    #[test]
    fn csr_footprint_matches_the_array_arithmetic() {
        let csr = cycle_graph(10).freeze();
        // 10 vertices, 10 edges: offsets 11 * 4 bytes, targets 20 * 4 bytes.
        assert_eq!(csr_bytes(&csr), 44 + 80);
        assert!((csr_bytes_per_edge(&csr) - 12.4).abs() < 1e-9);
    }
}
