//! Experiment harness: regenerates the derived tables E1–E15 described in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p msrp-bench --release --bin experiments -- [e1|...|e15|all] [--quick] [--large] [--list]
//! ```
//!
//! `--quick` shrinks the instance sizes so that every experiment finishes in a few seconds
//! (used by the CI-style smoke run); without it the sizes match the numbers reported in
//! `EXPERIMENTS.md`. `--large` switches E13 to the opt-in million-vertex tier (n up to
//! 2²⁰; never run in CI — see the `BENCH_large.json` provenance note). `--list` prints
//! every experiment id with a one-line description and exits. E14 (model-checker
//! exploration stats) additionally needs `--features model-stats`, which swaps the
//! workspace atomics onto the `msrp-check` shim facade — without the feature it prints
//! the rerun instructions and exits successfully, so `all` stays feature-agnostic.

use std::env;
use std::time::{Duration, Instant};

use msrp_bench::{
    csr_bytes_per_edge, evenly_spaced_sources, peak_rss_bytes, standard_graph,
    standard_weighted_graph, time_secs, Table, WorkloadKind,
};
use msrp_bmm::{multiply_via_msrp, BoolMatrix};
use msrp_core::{
    solve_msrp, solve_msrp_weighted, solve_ssrp, verify::exactness, verify::verify_msrp,
    MsrpParams, SourceToLandmarkStrategy,
};
use msrp_graph::{
    bfs_avoiding_edge, BfsScratch, DijkstraScratch, DirOptScratch, Graph, MultiBfsScratch,
    ShortestPathTree, WAVE_LANES,
};
use msrp_netsim::{
    run_churn, run_simulation, run_simulation_with_service, ChurnConfig, SimulationConfig,
};
use msrp_obs::{timed, StageProfile};
use msrp_oracle::{shard_sources, ReplacementPathOracle, BK_STAGES};
use msrp_rpath::{
    single_source_brute_force, single_source_brute_force_weighted, single_source_via_single_pair,
};
use msrp_serve::{
    run_closed_loop, LoadConfig, QueryService, ServiceConfig, ShardedOracle, WeightedShardedOracle,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every experiment id with its one-line description (printed by `--list`).
const EXPERIMENTS: [(&str, &str); 15] = [
    ("e1", "single-source scaling (Theorem 14) vs the two O~(mn) baselines"),
    ("e2", "multi-source scaling in sigma (Theorem 1/26) on a fixed graph"),
    ("e3", "exactness rate of the randomized algorithm, paper vs scaled constants"),
    ("e4", "BMM via the MSRP gadget reduction (Theorem 2/28) vs the naive product"),
    ("e5", "fault-tolerant oracle build and query latency (Bernstein-Karger endpoint)"),
    ("e6", "ablations: path-cover vs exact tables, refinement sweeps, constants"),
    ("e7", "link-failure recovery simulation: oracle recovery vs recomputation"),
    ("e8", "sharded query service: parallel build, concurrent throughput, latency"),
    ("e9", "weighted MSRP: subtree-Dijkstra solver vs weighted brute force (Section 9)"),
    ("e10", "Bernstein-Karger preprocessing vs per-tree-edge brute force, tables compared"),
    ("e11", "live churn: epoch-swap serving, incremental vs full rebuild, zero mismatches"),
    ("e12", "build/rebuild stage profile: where BK preprocessing and ladder time goes"),
    ("e13", "traversal kernels at scale: dir-opt + 64-way wave BFS, --large memory tier"),
    ("e14", "model-checker exploration: schedules/steps per lock-free structure + lint wall"),
    ("e15", "snapshot persistence: boot-from-snapshot vs rebuilding the oracle from scratch"),
];

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (id, description) in EXPERIMENTS {
            println!("{id}  {description}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let large = args.iter().any(|a| a == "--large");
    let which: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if let Some(unknown) =
        which.iter().find(|id| **id != "all" && !EXPERIMENTS.iter().any(|(e, _)| e == *id))
    {
        eprintln!(
            "error: unknown experiment `{unknown}` (expected one of: {}, all; \
             try --list for descriptions)",
            EXPERIMENTS.iter().map(|(e, _)| e).copied().collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    }
    let all = which.is_empty() || which.contains(&"all");

    let run = |id: &str| all || which.contains(&id);
    if run("e1") {
        experiment_e1(quick);
    }
    if run("e2") {
        experiment_e2(quick);
    }
    if run("e3") {
        experiment_e3(quick);
    }
    if run("e4") {
        experiment_e4(quick);
    }
    if run("e5") {
        experiment_e5(quick);
    }
    if run("e6") {
        experiment_e6(quick);
    }
    if run("e7") {
        experiment_e7(quick);
    }
    if run("e8") {
        experiment_e8(quick);
    }
    if run("e9") {
        experiment_e9(quick);
    }
    if run("e10") {
        experiment_e10(quick);
    }
    if run("e11") {
        experiment_e11(quick);
    }
    if run("e12") {
        experiment_e12(quick);
    }
    if run("e13") {
        experiment_e13(quick, large);
    }
    if run("e14") {
        experiment_e14(quick);
    }
    if run("e15") {
        experiment_e15(quick);
    }
}

fn bench_params() -> MsrpParams {
    MsrpParams::scaled_for_benchmarks()
}

/// E1 — SSRP scaling (Theorem 14): paper algorithm vs the two `Õ(mn)` baselines.
fn experiment_e1(quick: bool) {
    println!("\n=== E1: single-source scaling (Theorem 14) ===");
    let sizes: &[usize] = if quick { &[128, 256] } else { &[128, 256, 512, 1024, 2048] };
    let mut table = Table::new([
        "n",
        "m",
        "brute force (s)",
        "classical per-target (s)",
        "paper SSRP (s)",
        "speedup vs classical",
    ]);
    for &n in sizes {
        let g = standard_graph(WorkloadKind::SparseRandom, n, 42);
        let tree = ShortestPathTree::build(&g, 0);
        let (_, brute) = time_secs(|| single_source_brute_force(&g, &tree));
        let (_, classical) = time_secs(|| single_source_via_single_pair(&g, &tree));
        let (_, paper) = time_secs(|| solve_ssrp(&g, 0, &bench_params()));
        table.add_row([
            n.to_string(),
            g.edge_count().to_string(),
            format!("{brute:.3}"),
            format!("{classical:.3}"),
            format!("{paper:.3}"),
            format!("{:.2}x", classical / paper.max(1e-9)),
        ]);
    }
    table.print();
}

/// E2 — MSRP scaling in σ (Theorem 1/26): interpolation between the σ=1 and σ=n endpoints.
fn experiment_e2(quick: bool) {
    println!("\n=== E2: multi-source scaling in sigma (Theorem 1/26) ===");
    let n = if quick { 192 } else { 512 };
    let sigmas: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16, 32] };
    let g = standard_graph(WorkloadKind::SparseRandom, n, 7);
    let mut table = Table::new([
        "sigma",
        "paper MSRP path-cover (s)",
        "exact source-landmark ablation (s)",
        "per-source brute force (s)",
    ]);
    for &sigma in sigmas {
        let sources = evenly_spaced_sources(n, sigma);
        let (_, cover) = time_secs(|| solve_msrp(&g, &sources, &bench_params()));
        let (_, exact) = time_secs(|| {
            solve_msrp(&g, &sources, &bench_params().with_strategy(SourceToLandmarkStrategy::Exact))
        });
        let (_, brute) = time_secs(|| {
            for &s in &sources {
                let tree = ShortestPathTree::build(&g, s);
                let _ = single_source_brute_force(&g, &tree);
            }
        });
        table.add_row([
            sigma.to_string(),
            format!("{cover:.3}"),
            format!("{exact:.3}"),
            format!("{brute:.3}"),
        ]);
    }
    table.print();
}

/// E3 — exactness rate of the randomized algorithm under paper and scaled constants.
fn experiment_e3(quick: bool) {
    println!("\n=== E3: exactness of the randomized algorithm ===");
    let trials = if quick { 3 } else { 10 };
    let n = if quick { 48 } else { 96 };
    let mut table =
        Table::new(["parameters", "kind", "entries checked", "exact entries", "under-estimates"]);
    for (label, params) in [("paper", MsrpParams::default()), ("scaled", bench_params())] {
        for kind in [WorkloadKind::SparseRandom, WorkloadKind::Grid] {
            let mut total = 0usize;
            let mut good = 0usize;
            let mut under = 0usize;
            for trial in 0..trials {
                let g = standard_graph(kind, n, 100 + trial as u64);
                let sources = evenly_spaced_sources(g.vertex_count(), 3);
                let out = solve_msrp(&g, &sources, &params.clone().with_seed(trial as u64));
                let reports = verify_msrp(&g, &out);
                let (g_ok, g_total) = exactness(&reports);
                good += g_ok;
                total += g_total;
                under += reports.iter().map(|r| r.under_estimates).sum::<usize>();
            }
            table.add_row([
                label.to_string(),
                kind.label().to_string(),
                total.to_string(),
                good.to_string(),
                under.to_string(),
            ]);
        }
    }
    table.print();
}

/// E4 — the BMM reduction (Theorem 2/28).
fn experiment_e4(quick: bool) {
    println!("\n=== E4: BMM via the MSRP reduction (Theorem 2/28) ===");
    let sizes: &[usize] = if quick { &[12, 16] } else { &[16, 24, 32, 48] };
    let mut table = Table::new(["n", "density", "naive BMM (s)", "via MSRP (s)", "products agree"]);
    let mut rng = StdRng::seed_from_u64(3);
    for &n in sizes {
        let density = 0.15;
        let a = BoolMatrix::random(n, density, &mut rng);
        let b = BoolMatrix::random(n, density, &mut rng);
        let (expected, naive) = time_secs(|| a.multiply_naive(&b));
        let (got, reduced) = time_secs(|| multiply_via_msrp(&a, &b, 2, &MsrpParams::default()));
        table.add_row([
            n.to_string(),
            format!("{density:.2}"),
            format!("{naive:.4}"),
            format!("{reduced:.3}"),
            (expected == got).to_string(),
        ]);
    }
    table.print();
}

/// E5 — oracle construction and query latency (the σ = n / Bernstein–Karger endpoint).
fn experiment_e5(quick: bool) {
    println!("\n=== E5: fault-tolerant oracle build and query latency ===");
    let n = if quick { 128 } else { 384 };
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let mut table = Table::new([
        "sigma",
        "build via MSRP (s)",
        "build exact (s)",
        "oracle query (ns)",
        "BFS recompute (ns)",
    ]);
    for &sigma in &[2usize, 8, 32] {
        let sources = evenly_spaced_sources(n, sigma);
        let (oracle, build_fast) =
            time_secs(|| ReplacementPathOracle::build(&g, &sources, &bench_params()));
        let (_, build_exact) = time_secs(|| ReplacementPathOracle::build_exact(&g, &sources));
        // Query workload.
        let mut rng = StdRng::seed_from_u64(5);
        let edges = g.edge_vec();
        let queries: Vec<_> = (0..2000)
            .map(|_| {
                (
                    sources[rng.gen_range(0..sources.len())],
                    rng.gen_range(0..n),
                    edges[rng.gen_range(0..edges.len())],
                )
            })
            .collect();
        let (_, oracle_time) = time_secs(|| {
            let mut acc = 0u64;
            for &(s, t, e) in &queries {
                acc = acc.wrapping_add(oracle.replacement_distance(s, t, e).unwrap_or(0) as u64);
            }
            acc
        });
        let (_, bfs_time) = time_secs(|| {
            let mut acc = 0u64;
            for &(s, t, e) in queries.iter().take(200) {
                acc = acc.wrapping_add(bfs_avoiding_edge(&g, s, e).dist[t] as u64);
            }
            acc
        });
        table.add_row([
            sigma.to_string(),
            format!("{build_fast:.3}"),
            format!("{build_exact:.3}"),
            format!("{:.0}", oracle_time * 1e9 / queries.len() as f64),
            format!("{:.0}", bfs_time * 1e9 / 200.0),
        ]);
    }
    table.print();
}

/// E6 — ablations: path-cover vs exact tables, refinement sweeps, paper vs scaled constants.
fn experiment_e6(quick: bool) {
    println!("\n=== E6: ablations ===");
    let n = if quick { 128 } else { 320 };
    let sigma = 8;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 23);
    let sources = evenly_spaced_sources(n, sigma);
    let mut table = Table::new([
        "configuration",
        "time (s)",
        "landmarks",
        "centers",
        "exact entries",
        "total entries",
    ]);
    let configs: Vec<(&str, MsrpParams)> = vec![
        ("path-cover / scaled", bench_params()),
        ("exact tables / scaled", bench_params().with_strategy(SourceToLandmarkStrategy::Exact)),
        ("path-cover / no refinement", MsrpParams { refinement_sweeps: 0, ..bench_params() }),
        ("path-cover / paper constants", MsrpParams::default()),
    ];
    for (label, params) in configs {
        let (out, secs) = time_secs(|| solve_msrp(&g, &sources, &params));
        let reports = verify_msrp(&g, &out);
        let (good, total) = exactness(&reports);
        table.add_row([
            label.to_string(),
            format!("{secs:.3}"),
            out.stats.landmark_count.to_string(),
            out.stats.center_count.to_string(),
            good.to_string(),
            total.to_string(),
        ]);
    }
    table.print();
}

/// E7 — application-level link-failure simulation.
fn experiment_e7(quick: bool) {
    println!("\n=== E7: link-failure recovery simulation ===");
    let n = if quick { 100 } else { 256 };
    let mut table = Table::new([
        "workload",
        "queries",
        "mismatches",
        "disconnected",
        "avg stretch",
        "oracle query speedup",
    ]);
    for kind in
        [WorkloadKind::SparseRandom, WorkloadKind::Grid, WorkloadKind::PreferentialAttachment]
    {
        let g: Graph = standard_graph(kind, n, 31);
        let config = SimulationConfig {
            gateways: evenly_spaced_sources(g.vertex_count(), 4),
            failures: if quick { 20 } else { 100 },
            queries_per_failure: 20,
            seed: 9,
            params: bench_params(),
        };
        let report = run_simulation(&g, &config);
        table.add_row([
            kind.label().to_string(),
            report.total_queries.to_string(),
            report.mismatches.to_string(),
            report.disconnected_queries.to_string(),
            format!("{:.2}", report.average_stretch()),
            format!("{:.1}x", report.oracle_speedup()),
        ]);
    }
    table.print();
}

/// E8 — the serving subsystem: sharded parallel construction, concurrent query throughput
/// through the worker pool, and the E7 failure scenario routed through the service.
fn experiment_e8(quick: bool) {
    println!("\n=== E8: sharded replacement-path query service ===");
    let n = if quick { 128 } else { 256 };
    let sigma = 8;
    let g = standard_graph(WorkloadKind::SparseRandom, n, 11);
    let sources = evenly_spaced_sources(n, sigma);
    let params = bench_params();

    let mut table = Table::new([
        "threads=workers",
        "parallel build (s)",
        "build speedup",
        "throughput (q/s)",
        "batch p50",
        "batch p99",
        "unbalance",
    ]);
    let mut base_build = None;
    for &k in &[1usize, 2, 4] {
        // One timed sharded construction per row; the k = 1 row is the speedup baseline.
        let (oracle, build) = time_secs(|| ShardedOracle::build(&g, &sources, &params, k));
        let base_build = *base_build.get_or_insert(build);
        let service = QueryService::start(oracle, &ServiceConfig { workers: k });
        let load = LoadConfig {
            clients: k,
            batches_per_client: if quick { 10 } else { 40 },
            batch_size: 64,
            seed: 8,
        };
        let report = run_closed_loop(&service, &g, &load);
        let metrics = service.shutdown();
        // Shard-balance headline: max over min per-shard query count (1.0 = perfectly even).
        let max_shard = metrics.shard_queries.iter().copied().max().unwrap_or(0);
        let min_shard = metrics.shard_queries.iter().copied().min().unwrap_or(0);
        table.add_row([
            k.to_string(),
            format!("{build:.3}"),
            format!("{:.2}x", base_build / build.max(1e-9)),
            format!("{:.0}", report.throughput_qps()),
            format!("{:.1?}", report.latency.p50()),
            format!("{:.1?}", report.latency.p99()),
            format!("{:.2}", max_shard as f64 / min_shard.max(1) as f64),
        ]);
    }
    table.print();

    let config = SimulationConfig {
        gateways: sources.clone(),
        failures: if quick { 20 } else { 60 },
        queries_per_failure: 20,
        seed: 9,
        params,
    };
    let report = run_simulation_with_service(&g, &config, 2, 4);
    println!(
        "service-backed failure simulation: {} queries, {} mismatches, oracle speedup {:.1}x",
        report.total_queries,
        report.mismatches,
        report.oracle_speedup()
    );
}

/// E9 — weighted MSRP (Section 9): the subtree-Dijkstra solver against the per-tree-edge
/// weighted brute force, with the full replacement tables compared bit for bit.
fn experiment_e9(quick: bool) {
    println!("\n=== E9: weighted MSRP (Section 9 lift) ===");
    let sizes: &[usize] = if quick { &[96, 160] } else { &[128, 256, 512] };
    let sigma = 3;
    let mut table = Table::new([
        "kind",
        "n",
        "m",
        "solver (s)",
        "brute force (s)",
        "speedup",
        "entries",
        "all equal",
    ]);
    for kind in [WorkloadKind::SparseRandom, WorkloadKind::PreferentialAttachment] {
        for &n in sizes {
            let g = standard_weighted_graph(kind, n, 31, 1000).freeze();
            let sources = evenly_spaced_sources(g.vertex_count(), sigma);
            let (out, solver_secs) = time_secs(|| solve_msrp_weighted(&g, &sources));
            // One timed brute-force pass over the solver's own canonical trees (tree
            // construction is a negligible slice of either side) doubles as the
            // full-table comparison: every entry compared, nothing sampled.
            let (truth, brute_secs) = time_secs(|| {
                let mut scratch = DijkstraScratch::new();
                out.trees
                    .iter()
                    .map(|t| single_source_brute_force_weighted(&g, t, &mut scratch))
                    .collect::<Vec<_>>()
            });
            let all_equal = out.per_source == truth;
            table.add_row([
                kind.label().to_string(),
                g.vertex_count().to_string(),
                g.edge_count().to_string(),
                format!("{solver_secs:.3}"),
                format!("{brute_secs:.3}"),
                format!("{:.2}x", brute_secs / solver_secs.max(1e-9)),
                out.entry_count().to_string(),
                all_equal.to_string(),
            ]);
        }
    }
    table.print();
}

/// E10 — the Bernstein–Karger preprocessing (heavy-path cover + per-cut subtree searches)
/// against the per-tree-edge brute force, with the full replacement tables compared bit for
/// bit (`ReplacementPathOracle::per_source` row equality — every entry, nothing sampled).
fn experiment_e10(quick: bool) {
    println!("\n=== E10: Bernstein-Karger preprocessing vs per-tree-edge brute force ===");
    let sizes: &[usize] = if quick { &[96, 192] } else { &[128, 256, 512, 1024] };
    let sigma = 4;
    let mut table = Table::new([
        "kind",
        "n",
        "m",
        "sigma",
        "BK build (s)",
        "exact build (s)",
        "speedup",
        "entries",
        "all equal",
    ]);
    for kind in [WorkloadKind::SparseRandom, WorkloadKind::Grid] {
        for &n in sizes {
            let g = standard_graph(kind, n, 13).freeze();
            let sources = evenly_spaced_sources(g.vertex_count(), sigma);
            let (bk, bk_secs) = time_secs(|| ReplacementPathOracle::build_bk_csr(&g, &sources));
            let (exact, exact_secs) =
                time_secs(|| ReplacementPathOracle::build_exact_csr(&g, &sources));
            let all_equal = bk.per_source() == exact.per_source();
            table.add_row([
                kind.label().to_string(),
                g.vertex_count().to_string(),
                g.edge_count().to_string(),
                sources.len().to_string(),
                format!("{bk_secs:.3}"),
                format!("{exact_secs:.3}"),
                format!("{:.2}x", exact_secs / bk_secs.max(1e-9)),
                bk.entry_count().to_string(),
                all_equal.to_string(),
            ]);
        }
    }
    table.print();
}

/// E11 — live churn: seed-pinned failure/repair events streamed at a running epoch-swapping
/// service. Every batch is validated against per-epoch avoiding-BFS recompute (the
/// `mismatches` column must be 0 on every row), every incremental rebuild is differentially
/// pinned to a from-scratch build, and the work/time columns quantify the incremental win.
fn experiment_e11(quick: bool) {
    println!("\n=== E11: live churn — epoch-swap serving, incremental vs full rebuild ===");
    let sizes: &[usize] = if quick { &[48, 64] } else { &[64, 128, 256] };
    let events = if quick { 8 } else { 16 };
    let sigma = 4;
    let mut table = Table::new([
        "kind",
        "n",
        "events",
        "queries",
        "mismatches",
        "src reused/patched/rebuilt",
        "cuts redone/total",
        "inc (s)",
        "full (s)",
        "stale p99",
        "inc win",
    ]);
    for kind in [WorkloadKind::SparseRandom, WorkloadKind::Grid] {
        for &n in sizes {
            let g = standard_graph(kind, n, 17);
            let config = ChurnConfig {
                gateways: evenly_spaced_sources(g.vertex_count(), sigma),
                events,
                batches_in_flight: 3,
                batches_settled: 2,
                batch_size: 16,
                shards: 2,
                workers: 2,
                seed: 1000 + n as u64,
                verify_full: true,
            };
            let report = run_churn(&g, &config);
            assert_eq!(report.mismatched_batches, 0, "churn answers must be exact");
            assert!(report.incremental_win(), "incremental must beat full rebuild");
            let inc = &report.incremental;
            table.add_row([
                kind.label().to_string(),
                g.vertex_count().to_string(),
                format!("{} ({} repairs)", report.events, report.repairs),
                report.total_queries.to_string(),
                report.mismatched_batches.to_string(),
                format!(
                    "{}/{}/{} of {}",
                    inc.sources_reused, inc.sources_patched, inc.sources_rebuilt, inc.sources_total
                ),
                format!("{}/{}", inc.cuts_recomputed, inc.cuts_total),
                format!("{:.3}", report.incremental_rebuild_time.as_secs_f64()),
                format!("{:.3}", report.full_rebuild_time.as_secs_f64()),
                format!("{:.1?}", report.staleness.p99()),
                report.incremental_win().to_string(),
            ]);
        }
    }
    table.print();
}

/// E12 — build/rebuild stage profile: where the Bernstein–Karger preprocessing wall time
/// goes, stage by stage (`tree` BFS trees, `cover` heavy-path decomposition, `rows` table
/// allocation, `cuts` the multi-seed cut solves, `merge` the shard merge), and where the
/// incremental rebuild ladder spends its time (`reuse`/`patch`/`rebuild` rungs), at three
/// graph sizes. The acceptance bar asserted on every row: the staged times must account
/// for the measured wall within 10% (plus a small absolute epsilon so the timer-noise
/// floor cannot flake the `--quick` sizes on a loaded 1-CPU runner).
fn experiment_e12(quick: bool) {
    println!("\n=== E12: build/rebuild stage profile — where preprocessing time goes ===");
    let sizes: &[usize] = if quick { &[48, 96] } else { &[256, 512, 1024] };
    let sigma = 8;
    let shards = 2;
    let ms = |d: Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    let coverage = |staged: Duration, wall: Duration| {
        format!("{:.1}%", 100.0 * staged.as_secs_f64() / wall.as_secs_f64().max(1e-12))
    };
    // `accounted` must reach 100% − 10% on every row; the epsilon covers timer noise when
    // the whole build is a few milliseconds.
    let check_accounted = |what: &str, staged: Duration, wall: Duration| {
        let slack = wall.saturating_sub(staged);
        let tolerance = (wall / 10).max(Duration::from_millis(5));
        assert!(
            slack <= tolerance,
            "{what}: staged times {staged:?} leave {slack:?} of the {wall:?} wall \
             unaccounted (tolerance {tolerance:?})"
        );
    };
    let mut build_table = Table::new([
        "n",
        "sigma",
        "build (ms)",
        "tree",
        "cover",
        "rows",
        "cuts",
        "merge",
        "accounted",
    ]);
    let mut ladder_table =
        Table::new(["n", "rebuild (ms)", "reuse", "patch", "rebuild rung", "accounted"]);
    for &n in sizes {
        let g = standard_graph(WorkloadKind::SparseRandom, n, 53);
        let csr = g.freeze();
        let sources = evenly_spaced_sources(n, sigma);
        let mut profile = StageProfile::new();
        let build_start = Instant::now();
        let shard_oracles: Vec<ReplacementPathOracle> = shard_sources(&sources, shards)
            .into_iter()
            .map(|chunk| ReplacementPathOracle::build_bk_csr_profiled(&csr, chunk, &mut profile))
            .collect();
        let sharded = timed(&mut profile, "merge", || ShardedOracle::from_shards(shard_oracles));
        let build_wall = build_start.elapsed();
        let stage_time = |name: &str| profile.get(name).map_or(Duration::ZERO, |t| t.total);
        let staged: Duration = BK_STAGES.iter().map(|s| stage_time(s)).sum();
        assert_eq!(staged, profile.total(), "BK_STAGES must name every recorded stage");
        check_accounted("build", staged, build_wall);
        build_table.add_row([
            n.to_string(),
            sources.len().to_string(),
            ms(build_wall),
            ms(stage_time("tree")),
            ms(stage_time("cover")),
            ms(stage_time("rows")),
            ms(stage_time("cuts")),
            ms(stage_time("merge")),
            coverage(staged, build_wall),
        ]);
        // The rebuild ladder on one edge failure: remove an edge, rebuild incrementally,
        // and read where the time went off the per-rung stats.
        let mut g_post = g.clone();
        let e = g_post.edge_vec()[g_post.edge_count() / 2];
        let (u, v) = e.endpoints();
        g_post.remove_edge(u, v).expect("edge came from edge_vec");
        let post_csr = g_post.freeze();
        let rebuild_start = Instant::now();
        let (_rebuilt, stats) = sharded.rebuild_bk_csr(&post_csr, e);
        let rebuild_wall = rebuild_start.elapsed();
        let rungs = stats.rungs();
        assert_eq!(
            rungs.iter().map(|&(_, s, _)| s).sum::<usize>(),
            stats.sources_total,
            "every source must be charged to exactly one rung"
        );
        check_accounted("rebuild ladder", stats.rung_time(), rebuild_wall);
        let rung_cell = |i: usize| format!("{} src, {}", rungs[i].1, ms(rungs[i].2));
        ladder_table.add_row([
            n.to_string(),
            ms(rebuild_wall),
            rung_cell(0),
            rung_cell(1),
            rung_cell(2),
            coverage(stats.rung_time(), rebuild_wall),
        ]);
    }
    println!("\nBK build pipeline (per-stage wall time, {shards} shards built sequentially):");
    build_table.print();
    println!("\nincremental rebuild ladder (one edge failure per size):");
    ladder_table.print();
}

/// E13 — traversal kernels at scale: the direction-optimizing kernel and the 64-way
/// bit-parallel wave against the seed top-down BFS, on a low-diameter sparse-random
/// workload and a high-diameter grid, plus the Õ(m√(nσ)) scaling check on the
/// wave-powered `build_bk_csr`.
///
/// Three tiers share this body: `--quick` (CI; doubles as a kernel differential, because
/// every row *asserts* the three kernels' distance arrays are bit-identical before it is
/// printed), the default (desk-side sizes), and `--large` (opt-in, n up to 2²⁰,
/// memory-bound — the regime the kernels were written for). Each row records the peak
/// process RSS and the CSR bytes-per-edge footprint alongside wall time, because at the
/// large tier bandwidth, not instruction count, is what the columns move with.
fn experiment_e13(quick: bool, large: bool) {
    println!("\n=== E13: traversal kernels at scale — dir-opt and 64-way bit-parallel BFS ===");
    let sizes: &[usize] = if large {
        &[131_072, 524_288, 1_048_576]
    } else if quick {
        &[2_048, 8_192]
    } else {
        &[16_384, 65_536]
    };
    let mb = |bytes: Option<u64>| {
        bytes.map_or_else(|| "n/a".into(), |b| format!("{:.0}", b as f64 / (1024.0 * 1024.0)))
    };
    let mut kernel_table = Table::new([
        "kind",
        "n",
        "m",
        "top-down (ms)",
        "dir-opt (ms)",
        "wave/src (ms)",
        "dir-opt x",
        "wave x",
        "bytes/edge",
        "peak RSS (MB)",
    ]);
    for kind in [WorkloadKind::SparseRandom, WorkloadKind::Grid] {
        for &n in sizes {
            let csr = standard_graph(kind, n, 29).freeze();
            let n = csr.vertex_count();
            let m = csr.edge_count();
            let sources = evenly_spaced_sources(n, WAVE_LANES);
            // The sequential kernels are timed over a probe subset; the wave runs all 64
            // lanes at once and is reported per source.
            let probe: Vec<usize> = sources.iter().copied().step_by(8).collect();
            let mut td = BfsScratch::new();
            let mut dopt = DirOptScratch::new();
            let mut wave = MultiBfsScratch::new();
            // One untimed run per kernel: buffer allocation and first-touch page faults
            // happen here, so the timed loops measure the steady state (the regime every
            // oracle build and serving rebuild actually runs in).
            td.run(&csr, probe[0]);
            dopt.run(&csr, probe[0]);
            wave.run_wave(&csr, &sources);
            let (_, td_secs) = time_secs(|| {
                for &s in &probe {
                    td.run(&csr, s);
                }
            });
            let (_, dopt_secs) = time_secs(|| {
                for &s in &probe {
                    dopt.run(&csr, s);
                }
            });
            let (_, wave_secs) = time_secs(|| wave.run_wave(&csr, &sources));
            // The differential half of the experiment: every row is only printed after the
            // three kernels are proven bit-identical on its instance (this is the step the
            // CI `--quick` run relies on).
            for (lane, &s) in sources.iter().enumerate() {
                td.run(&csr, s);
                dopt.run(&csr, s);
                assert_eq!(dopt.dist(), td.dist(), "{} n={n} s={s}: dist", kind.label());
                assert_eq!(dopt.parent_raw(), td.parent_raw(), "{} n={n} s={s}", kind.label());
                assert_eq!(dopt.order(), td.order(), "{} n={n} s={s}: order", kind.label());
                assert_eq!(wave.lane_dist_vec(lane), td.dist(), "{} n={n} s={s}", kind.label());
            }
            let td_ms = td_secs / probe.len() as f64 * 1e3;
            let dopt_ms = dopt_secs / probe.len() as f64 * 1e3;
            let wave_ms = wave_secs / sources.len() as f64 * 1e3;
            kernel_table.add_row([
                kind.label().to_string(),
                n.to_string(),
                m.to_string(),
                format!("{td_ms:.3}"),
                format!("{dopt_ms:.3}"),
                format!("{wave_ms:.3}"),
                format!("{:.2}", td_ms / dopt_ms.max(1e-9)),
                format!("{:.2}", td_ms / wave_ms.max(1e-9)),
                format!("{:.1}", csr_bytes_per_edge(&csr)),
                mb(peak_rss_bytes()),
            ]);
        }
    }
    println!("\nkernel crossover (per-source BFS wall time; speedups are vs top-down):");
    kernel_table.print();

    // The product-side payoff: `build_bk_csr` now runs its tree stage through the wave, so
    // the Õ(m√(nσ)) preprocessing bound (Theorem 26 regime) is checked with the kernels in
    // place. The normalized column should drift only logarithmically if the bound holds.
    let (oracle_sizes, sigma): (&[usize], usize) = if large {
        (&[131_072, 262_144], 16)
    } else if quick {
        (&[1_024, 2_048], 8)
    } else {
        (&[16_384, 32_768], 16)
    };
    let mut oracle_table = Table::new([
        "kind",
        "n",
        "m",
        "sigma",
        "build_bk (s)",
        "t/(m·sqrt(n·σ)) (ns)",
        "peak RSS (MB)",
    ]);
    for &n in oracle_sizes {
        let csr = standard_graph(WorkloadKind::SparseRandom, n, 29).freeze();
        let m = csr.edge_count();
        let sources = evenly_spaced_sources(csr.vertex_count(), sigma);
        let (oracle, secs) =
            time_secs(|| msrp_oracle::ReplacementPathOracle::build_bk_csr(&csr, &sources));
        assert_eq!(oracle.sources().len(), sigma);
        let normalizer = m as f64 * ((csr.vertex_count() * sigma) as f64).sqrt();
        oracle_table.add_row([
            "sparse-random".to_string(),
            csr.vertex_count().to_string(),
            m.to_string(),
            sigma.to_string(),
            format!("{secs:.3}"),
            format!("{:.2}", secs * 1e9 / normalizer),
            mb(peak_rss_bytes()),
        ]);
    }
    println!("\nwave-powered BK preprocessing (Õ(m·sqrt(nσ)) scaling check):");
    oracle_table.print();
}

/// E14 — model-checker exploration stats: how many interleavings the bounded DFS walks
/// for each lock-free structure's invariant scenario (the `crates/check/tests/model_*`
/// scenarios, compacted), plus the lint wall's rule/allowlist counts. Only meaningful
/// with `--features model-stats` (the shim-instrumented build); without it the function
/// prints the rerun instructions and returns, so `all` works on any build.
#[cfg(not(feature = "model-stats"))]
fn experiment_e14(_quick: bool) {
    println!("\n=== E14: model-checker exploration (skipped) ===");
    println!(
        "rerun with: cargo run -p msrp-bench --release --features model-stats \
         --bin experiments -- e14 [--quick]"
    );
}

#[cfg(feature = "model-stats")]
fn experiment_e14(quick: bool) {
    use msrp_check::model::{explore, ModelConfig, Scenario};
    use msrp_obs::SpanJournal;
    use msrp_serve::{EpochOracle, LatencyHistogram, RouteOracle};
    use std::sync::Arc;

    println!("\n=== E14: model-checker exploration ===");
    let budget = if quick { 600 } else { ModelConfig::DEFAULT_BUDGET };
    let cfg = ModelConfig::with_budget(budget);
    let mut table =
        Table::new(["structure", "scenario", "schedules", "max depth", "total steps", "exhausted"]);
    let mut record = |structure: &str, scenario: &str, report: msrp_check::model::Report| {
        assert!(report.failure.is_none(), "{structure}: {:?}", report.failure);
        table.add_row([
            structure.to_string(),
            scenario.to_string(),
            report.schedules.to_string(),
            report.max_depth.to_string(),
            report.total_steps.to_string(),
            report.exhausted.to_string(),
        ]);
    };

    // SpanJournal: overwriting writer vs snapshotter on a one-slot ring (the torn-read
    // window the Release payload stores close).
    record(
        "SpanJournal",
        "overwrite vs snapshot",
        explore(&cfg, || {
            let j = Arc::new(SpanJournal::new(1));
            j.record(7, 1, 2, std::time::Duration::from_nanos(3));
            let (jw, jr) = (Arc::clone(&j), Arc::clone(&j));
            Scenario::new(vec![
                Box::new(move || jw.record(8, 2, 3, std::time::Duration::from_nanos(4))),
                Box::new(move || {
                    for e in jr.snapshot().events {
                        assert!(e.trace_id == 7 || e.trace_id == 8, "torn event: {e:?}");
                    }
                }),
            ])
        }),
    );

    // LatencyHistogram: one record racing one snapshot + quantile scan (the PR 6 race's
    // shipped fix under the model).
    record(
        "LatencyHistogram",
        "record vs quantile",
        explore(&cfg, || {
            let h = Arc::new(LatencyHistogram::new());
            let (hw, hr) = (Arc::clone(&h), Arc::clone(&h));
            Scenario::new(vec![
                Box::new(move || hw.record(std::time::Duration::from_nanos(100))),
                Box::new(move || {
                    let snap = hr.snapshot();
                    let _ = snap.p50();
                    let _ = snap.quantile(1.0);
                }),
            ])
        }),
    );

    // EpochOracle: one publish racing one pinned batch (the one-epoch-per-batch
    // invariant); answers themselves touch no atomics, so this explores exactly the
    // lock-acquisition interleavings.
    record(
        "EpochOracle",
        "publish vs pinned batch",
        explore(&cfg, || {
            let mut rng = StdRng::seed_from_u64(91);
            let mut g = msrp_graph::generators::connected_gnm(20, 50, &mut rng).unwrap();
            let sources = [0usize, 7, 14];
            let initial = ShardedOracle::build_bk_csr(&g.freeze(), &sources, 2);
            let e = g.edge_vec()[3];
            let (u, v) = e.endpoints();
            g.remove_edge(u, v).unwrap();
            let (next, _) = initial.rebuild_bk_csr(&g.freeze(), e);
            let epochs = Arc::new(EpochOracle::new(initial));
            let eb = Arc::clone(&epochs);
            Scenario::new(vec![
                Box::new(move || {
                    epochs.publish(next);
                }),
                Box::new(move || {
                    let queries: Vec<msrp_serve::Query> =
                        (0..4).map(|t| msrp_serve::Query::new(0, t, e)).collect();
                    let _ = eb.query_batch_routed(&queries);
                }),
            ])
        }),
    );

    println!("schedule budget: {budget} (MSRP_MODEL_EXHAUSTIVE=1 lifts it)");
    table.print();

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = msrp_check::lint::scan_workspace(&root.canonicalize().unwrap());
    println!(
        "\nlint wall: {} rules, {} files scanned, {} violations, {} allowlist entries",
        msrp_check::lint::RULES.len(),
        report.files_scanned,
        report.violations.len(),
        report.allowed.len()
    );
    assert!(report.violations.is_empty(), "lint wall must be clean: {:?}", report.violations);
}

/// E15 — snapshot persistence: boot a serving oracle from a `msrp-snap` buffer
/// (checksum walk + validated table adoption) against re-running the BK construction
/// from the frozen graph. The booted oracle is proven **bit-identical** before any row
/// is printed: re-encoding it must reproduce the snapshot byte-for-byte (the canonical
/// round trip the snapshot fuzz battery pins), so the speedup column compares two
/// routes to the same answers.
fn experiment_e15(quick: bool) {
    println!("\n=== E15: snapshot persistence — boot-from-snapshot vs rebuild ===");
    let sizes: &[usize] = if quick { &[512, 1024] } else { &[1 << 12, 1 << 14, 1 << 16] };
    let sigma = 2;
    let mut table = Table::new([
        "metric",
        "n",
        "m",
        "sigma",
        "bytes",
        "encode (s)",
        "build (s)",
        "boot (s)",
        "speedup",
        "bit-identical",
    ]);
    for &n in sizes {
        let g = standard_graph(WorkloadKind::SparseRandom, n, 7).freeze();
        let sources = evenly_spaced_sources(n, sigma);
        let (oracle, build_secs) = time_secs(|| ShardedOracle::build_bk_csr(&g, &sources, 2));
        let (bytes, encode_secs) = time_secs(|| oracle.to_snapshot(&g));
        let ((g2, booted), boot_secs) =
            time_secs(|| ShardedOracle::from_snapshot(&bytes).expect("pristine snapshot"));
        let identical = g2 == g && booted.to_snapshot(&g2) == bytes;
        table.add_row([
            "hop".to_string(),
            n.to_string(),
            g.edge_count().to_string(),
            sigma.to_string(),
            bytes.len().to_string(),
            format!("{encode_secs:.4}"),
            format!("{build_secs:.4}"),
            format!("{boot_secs:.4}"),
            format!("{:.1}x", build_secs / boot_secs.max(1e-9)),
            identical.to_string(),
        ]);
    }
    // One weighted row: the subtree-Dijkstra build is costlier per vertex, so the
    // boot-from-snapshot win is even larger — a smaller n keeps the harness fast.
    let n = if quick { 256 } else { 2048 };
    let g = standard_weighted_graph(WorkloadKind::SparseRandom, n, 7, 1000).freeze();
    let sources = evenly_spaced_sources(n, sigma);
    let (oracle, build_secs) = time_secs(|| WeightedShardedOracle::build(&g, &sources, 2));
    let (bytes, encode_secs) = time_secs(|| oracle.to_snapshot(&g));
    let ((g2, booted), boot_secs) =
        time_secs(|| WeightedShardedOracle::from_snapshot(&bytes).expect("pristine snapshot"));
    let identical = g2 == g && booted.to_snapshot(&g2) == bytes;
    table.add_row([
        "weighted".to_string(),
        n.to_string(),
        g.edge_count().to_string(),
        sigma.to_string(),
        bytes.len().to_string(),
        format!("{encode_secs:.4}"),
        format!("{build_secs:.4}"),
        format!("{boot_secs:.4}"),
        format!("{:.1}x", build_secs / boot_secs.max(1e-9)),
        identical.to_string(),
    ]);
    table.print();
}
