//! A tiny fixed-width table printer for the experiment harness output.

use std::fmt::Write as _;

/// A plain-text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn add_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&self.headers, &mut out);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{}", "-".repeat(w + 2));
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Prints the rendered table to standard output.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown_like_output() {
        let mut t = Table::new(["n", "time (ms)"]);
        t.add_row(["128", "3.5"]);
        t.add_row(["1024", "81.25"]);
        let s = t.render();
        assert!(s.contains("| n    |"));
        assert!(s.contains("| 1024 | 81.25"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["only one"]);
    }
}
