//! Shared infrastructure for the benchmark suite and the experiment harness:
//! standard workloads, timing helpers and plain-text table output.
//!
//! The paper has no empirical section, so the "tables and figures" regenerated here are the
//! derived experiments E1–E7 defined in `DESIGN.md` / `EXPERIMENTS.md`: runtime-shape studies
//! validating the complexity claims (Theorems 1, 14, 26), the exactness rate of the randomized
//! algorithm, the BMM reduction (Theorem 2/28), oracle query latency, and the application-level
//! simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod resources;
pub mod table;
pub mod timing;
pub mod workloads;

pub use resources::{csr_bytes, csr_bytes_per_edge, peak_rss_bytes};
pub use table::Table;
pub use timing::{time, time_secs};
pub use workloads::{
    evenly_spaced_sources, standard_graph, standard_weighted_graph, Workload, WorkloadKind,
};
