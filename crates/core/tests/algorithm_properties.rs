//! Property-based and randomized-stress tests of the core solvers, complementing the in-module
//! unit tests: invariants of the landmark hierarchy, structural properties of the output, and
//! agreement between both source→landmark strategies on random inputs.

use msrp_core::{
    solve_msrp, solve_ssrp, MsrpParams, SampledLevels, SourceToLandmarkStrategy,
};
use msrp_graph::{Graph, INFINITE_DISTANCE};
use msrp_rpath::{compare, single_source_brute_force};
use proptest::prelude::*;

fn connected_graph() -> impl Strategy<Value = Graph> {
    (4usize..26)
        .prop_flat_map(|n| {
            let parents = proptest::collection::vec(0usize..1000, n - 1);
            let extra = proptest::collection::vec((0usize..n, 0usize..n), 0..(2 * n));
            (Just(n), parents, extra)
        })
        .prop_map(|(n, parents, extra)| {
            let mut g = Graph::new(n);
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let _ = g.add_edge_if_absent(p % child, child);
            }
            for (u, v) in extra {
                if u != v {
                    let _ = g.add_edge_if_absent(u, v);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn landmark_hierarchy_invariants(n in 2usize..400, sigma in 1usize..16, seed in 0u64..1000) {
        let params = MsrpParams::default();
        let forced = vec![0, n - 1];
        let levels = SampledLevels::sample_seeded(n, sigma, &params, seed, &forced);
        // Forced vertices are present, priorities point at real levels, and the union is sorted.
        prop_assert!(levels.contains(0) && levels.contains(n - 1));
        for &v in levels.all() {
            let p = levels.priority(v).unwrap();
            prop_assert!(p < levels.level_count());
            prop_assert!(levels.level(p).contains(&v));
        }
        let mut sorted = levels.all().to_vec();
        sorted.sort_unstable();
        prop_assert_eq!(sorted.as_slice(), levels.all());
        prop_assert_eq!(levels.level_count(), params.max_level(n, sigma) + 1);
    }

    #[test]
    fn ssrp_output_shape_and_monotonicity(g in connected_graph(), seed in 0u64..50) {
        let out = solve_ssrp(&g, 0, &MsrpParams::default().with_seed(seed));
        for t in 0..g.vertex_count() {
            let depth = out.tree.distance(t).unwrap_or(0) as usize;
            prop_assert_eq!(out.distances.row(t).len(), if out.tree.is_reachable(t) { depth } else { 0 });
            for (i, &d) in out.distances.row(t).iter().enumerate() {
                // Replacement distances are at least the original distance and at least the
                // length forced by the failed edge's position.
                prop_assert!(d >= depth as u32 || d == INFINITE_DISTANCE);
                let _ = i;
            }
        }
    }

    #[test]
    fn both_strategies_agree_on_random_graphs(g in connected_graph(), seed in 0u64..50) {
        let n = g.vertex_count();
        let sources = vec![0, n / 2];
        let sources: Vec<usize> = if sources[0] == sources[1] { vec![0] } else { sources };
        let pc = solve_msrp(&g, &sources, &MsrpParams::default().with_seed(seed));
        let ex = solve_msrp(
            &g,
            &sources,
            &MsrpParams::default().with_seed(seed).with_strategy(SourceToLandmarkStrategy::Exact),
        );
        for i in 0..sources.len() {
            prop_assert_eq!(&pc.per_source[i], &ex.per_source[i]);
        }
    }

    #[test]
    fn msrp_is_exact_on_random_graphs(g in connected_graph(), seed in 0u64..50) {
        let n = g.vertex_count();
        let mut sources = vec![0, n / 3, (2 * n) / 3];
        sources.sort_unstable();
        sources.dedup();
        let out = solve_msrp(&g, &sources, &MsrpParams::default().with_seed(seed));
        for (i, dist) in out.per_source.iter().enumerate() {
            let truth = single_source_brute_force(&g, &out.trees[i]);
            let report = compare(&truth, dist);
            prop_assert!(report.is_exact(), "{:?}", report.mismatches.first());
        }
    }
}
