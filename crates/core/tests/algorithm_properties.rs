//! Property-based and randomized-stress tests of the core solvers, complementing the in-module
//! unit tests: invariants of the landmark hierarchy, structural properties of the output, and
//! agreement between both source→landmark strategies on random inputs.
//!
//! Each property is checked over a fixed number of cases generated from a pinned
//! `StdRng` seed, so a failure is reproducible from the case index alone (the suite used
//! to rely on `proptest`, whose default configuration reruns with fresh entropy).

use msrp_core::{solve_msrp, solve_ssrp, MsrpParams, SampledLevels, SourceToLandmarkStrategy};
use msrp_graph::{Graph, INFINITE_DISTANCE};
use msrp_rpath::{compare, single_source_brute_force};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 20;

fn connected_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(4usize..26);
    let mut g = Graph::new(n);
    for child in 1..n {
        let parent = rng.gen_range(0usize..1000) % child;
        let _ = g.add_edge_if_absent(parent, child);
    }
    for _ in 0..rng.gen_range(0..2 * n) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            let _ = g.add_edge_if_absent(u, v);
        }
    }
    g
}

#[test]
fn landmark_hierarchy_invariants() {
    let mut rng = StdRng::seed_from_u64(0x1A4D);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..400);
        let sigma = rng.gen_range(1usize..16);
        let seed = rng.gen_range(0u64..1000);
        let params = MsrpParams::default();
        let forced = vec![0, n - 1];
        let levels = SampledLevels::sample_seeded(n, sigma, &params, seed, &forced);
        // Forced vertices are present, priorities point at real levels, and the union is sorted.
        assert!(levels.contains(0) && levels.contains(n - 1), "case {case}");
        for &v in levels.all() {
            let p = levels.priority(v).unwrap();
            assert!(p < levels.level_count(), "case {case}");
            assert!(levels.level(p).contains(&v), "case {case}");
        }
        let mut sorted = levels.all().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted.as_slice(), levels.all(), "case {case}");
        assert_eq!(levels.level_count(), params.max_level(n, sigma) + 1, "case {case}");
    }
}

#[test]
fn ssrp_output_shape_and_monotonicity() {
    let mut rng = StdRng::seed_from_u64(0x5542);
    for case in 0..CASES {
        let g = connected_graph(&mut rng);
        let seed = rng.gen_range(0u64..50);
        let out = solve_ssrp(&g, 0, &MsrpParams::default().with_seed(seed));
        for t in 0..g.vertex_count() {
            let depth = out.tree.distance(t).unwrap_or(0) as usize;
            assert_eq!(
                out.distances.row(t).len(),
                if out.tree.is_reachable(t) { depth } else { 0 },
                "case {case}"
            );
            for &d in out.distances.row(t).iter() {
                // Replacement distances are at least the original distance and at least the
                // length forced by the failed edge's position.
                assert!(d >= depth as u32 || d == INFINITE_DISTANCE, "case {case}");
            }
        }
    }
}

#[test]
fn both_strategies_agree_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0x57247);
    for case in 0..CASES {
        let g = connected_graph(&mut rng);
        let seed = rng.gen_range(0u64..50);
        let n = g.vertex_count();
        let sources = vec![0, n / 2];
        let sources: Vec<usize> = if sources[0] == sources[1] { vec![0] } else { sources };
        let pc = solve_msrp(&g, &sources, &MsrpParams::default().with_seed(seed));
        let ex = solve_msrp(
            &g,
            &sources,
            &MsrpParams::default().with_seed(seed).with_strategy(SourceToLandmarkStrategy::Exact),
        );
        for i in 0..sources.len() {
            assert_eq!(&pc.per_source[i], &ex.per_source[i], "case {case}");
        }
    }
}

#[test]
fn msrp_is_exact_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xE44C7);
    for case in 0..CASES {
        let g = connected_graph(&mut rng);
        let seed = rng.gen_range(0u64..50);
        let n = g.vertex_count();
        let mut sources = vec![0, n / 3, (2 * n) / 3];
        sources.sort_unstable();
        sources.dedup();
        let out = solve_msrp(&g, &sources, &MsrpParams::default().with_seed(seed));
        for (i, dist) in out.per_source.iter().enumerate() {
            let truth = single_source_brute_force(&g, &out.trees[i]);
            let report = compare(&truth, dist);
            assert!(report.is_exact(), "case {case}: {:?}", report.mismatches.first());
        }
    }
}
