//! The multi-source solver (Theorem 1 / Theorem 26): replacement paths from every source in `S`
//! to every vertex, avoiding every edge on the corresponding canonical shortest path.

use std::time::Instant;

use msrp_graph::{CsrGraph, Graph, ShortestPathTree, Vertex};

use crate::multi_source::{build_path_cover_table, PathCoverInputs};
use crate::near_small::build_near_small;
use crate::output::MsrpOutput;
use crate::params::{MsrpParams, SourceToLandmarkStrategy};
use crate::preprocess::BfsIndex;
use crate::sampling::SampledLevels;
use crate::source_landmark::SourceLandmarkTable;
use crate::ssrp::complete_source;
use crate::stats::AlgorithmStats;

/// Solves the multiple-source replacement path problem for the given sources
/// (`Õ(m·sqrt(nσ) + σn²)` expected time with the paper's constants and the
/// [`SourceToLandmarkStrategy::PathCover`] strategy).
///
/// The output is exact with high probability over the landmark/center sampling; every reported
/// value is always the length of a real path avoiding the corresponding edge.
///
/// # Panics
///
/// Panics if `sources` is empty, contains duplicates, or contains an out-of-range vertex.
///
/// ```
/// use msrp_core::{solve_msrp, MsrpParams};
/// use msrp_graph::generators::cycle_graph;
///
/// let g = cycle_graph(10);
/// let out = solve_msrp(&g, &[0, 5], &MsrpParams::default());
/// assert_eq!(out.per_source[1].get(7, 0), Some(8));
/// ```
pub fn solve_msrp(g: &Graph, sources: &[Vertex], params: &MsrpParams) -> MsrpOutput {
    solve_msrp_csr(&g.freeze(), sources, params)
}

/// CSR entry point of [`solve_msrp`]: every phase traverses the frozen view. The oracle's
/// parallel shard build shares one `CsrGraph` across all its worker threads instead of
/// cloning the adjacency structure per shard.
///
/// # Panics
///
/// Panics if `sources` is empty, contains duplicates, or contains an out-of-range vertex.
pub fn solve_msrp_csr(g: &CsrGraph, sources: &[Vertex], params: &MsrpParams) -> MsrpOutput {
    let n = g.vertex_count();
    assert!(!sources.is_empty(), "at least one source is required");
    for &s in sources {
        assert!(s < n, "source {s} out of range (n = {n})");
    }
    let mut dedup = sources.to_vec();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), sources.len(), "sources must be distinct");

    let sigma = sources.len();
    let mut stats = AlgorithmStats { sigma, ..Default::default() };

    let start = Instant::now();
    let trees: Vec<ShortestPathTree> =
        sources.iter().map(|&s| ShortestPathTree::build_csr(g, s)).collect();
    stats.record_phase("source BFS trees", start.elapsed());

    let start = Instant::now();
    let landmarks = SampledLevels::sample_seeded(n, sigma, params, params.seed, sources);
    stats.record_phase("landmark sampling", start.elapsed());
    stats.landmark_count = landmarks.len();
    stats.landmark_level_sizes = landmarks.level_sizes();

    let start = Instant::now();
    let landmark_index = BfsIndex::build(g, landmarks.all());
    stats.record_phase("landmark BFS", start.elapsed());

    let start = Instant::now();
    let near_small: Vec<_> =
        trees.iter().map(|tree| build_near_small(g, tree, params, sigma)).collect();
    stats.record_phase("near-small auxiliary graphs", start.elapsed());
    stats.near_small_nodes = near_small.iter().map(|r| r.node_count()).sum();
    stats.near_small_edges = near_small.iter().map(|r| r.edge_count()).sum();

    let table = match params.strategy {
        SourceToLandmarkStrategy::Exact => {
            let start = Instant::now();
            let table = SourceLandmarkTable::exact(g, &trees, &landmark_index);
            stats.record_phase("source-landmark replacement paths (exact)", start.elapsed());
            table
        }
        SourceToLandmarkStrategy::PathCover => {
            let inputs = PathCoverInputs {
                g,
                params,
                sigma,
                sources,
                source_trees: &trees,
                landmarks: &landmarks,
                landmark_index: &landmark_index,
                near_small: &near_small,
            };
            build_path_cover_table(&inputs, &mut stats)
        }
    };
    stats.source_landmark_entries = table.entry_count();

    let start = Instant::now();
    let per_source: Vec<_> = trees
        .iter()
        .enumerate()
        .map(|(s_idx, tree)| {
            let view = table.view(s_idx, tree, &landmark_index);
            complete_source(
                g,
                tree,
                &landmarks,
                &landmark_index,
                &view,
                &near_small[s_idx],
                params,
                sigma,
            )
        })
        .collect();
    stats.record_phase("far/near completion", start.elapsed());
    stats.output_entries = per_source.iter().map(|d| d.entry_count()).sum();

    MsrpOutput { sources: sources.to_vec(), trees, per_source, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{exactness, verify_msrp};
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph, torus_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_exact(g: &Graph, sources: &[Vertex], params: &MsrpParams) {
        let out = solve_msrp(g, sources, params);
        let reports = verify_msrp(g, &out);
        let (good, total) = exactness(&reports);
        assert_eq!(
            good,
            total,
            "first mismatch: {:?}",
            reports.iter().flat_map(|r| r.mismatches.first()).next()
        );
    }

    #[test]
    fn exact_on_structured_graphs_path_cover() {
        let params = MsrpParams::default();
        assert_exact(&cycle_graph(16), &[0, 5, 11], &params);
        assert_exact(&grid_graph(4, 5), &[0, 19], &params);
        assert_exact(&torus_graph(4, 4), &[0, 7, 9], &params);
    }

    #[test]
    fn exact_on_random_graphs_path_cover() {
        let mut rng = StdRng::seed_from_u64(4242);
        for n in [20usize, 30] {
            let g = connected_gnm(n, 2 * n, &mut rng).unwrap();
            assert_exact(&g, &[0, n / 2, n - 1], &MsrpParams::default());
        }
    }

    #[test]
    fn exact_with_exact_strategy() {
        let mut rng = StdRng::seed_from_u64(99);
        let g = connected_gnm(30, 70, &mut rng).unwrap();
        let params = MsrpParams::default().with_strategy(SourceToLandmarkStrategy::Exact);
        assert_exact(&g, &[1, 7, 20, 29], &params);
    }

    #[test]
    fn strategies_agree_on_the_answer() {
        let mut rng = StdRng::seed_from_u64(123);
        let g = connected_gnm(24, 60, &mut rng).unwrap();
        let sources = [2usize, 13, 21];
        let a = solve_msrp(&g, &sources, &MsrpParams::default());
        let b = solve_msrp(
            &g,
            &sources,
            &MsrpParams::default().with_strategy(SourceToLandmarkStrategy::Exact),
        );
        for s_idx in 0..sources.len() {
            assert_eq!(a.per_source[s_idx], b.per_source[s_idx]);
        }
    }

    #[test]
    fn single_source_msrp_matches_ssrp() {
        let g = grid_graph(4, 4);
        let msrp = solve_msrp(&g, &[5], &MsrpParams::default());
        let ssrp = crate::solve_ssrp(&g, 5, &MsrpParams::default());
        assert_eq!(msrp.per_source[0], ssrp.distances);
    }

    #[test]
    fn sigma_equal_n_works() {
        let g = cycle_graph(9);
        let sources: Vec<usize> = (0..9).collect();
        assert_exact(&g, &sources, &MsrpParams::default());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_sources_panic() {
        let g = cycle_graph(5);
        let _ = solve_msrp(&g, &[1, 1], &MsrpParams::default());
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_panic() {
        let g = cycle_graph(5);
        let _ = solve_msrp(&g, &[], &MsrpParams::default());
    }

    #[test]
    fn never_under_estimates_with_scaled_constants() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = connected_gnm(40, 90, &mut rng).unwrap();
        let out = solve_msrp(&g, &[0, 10, 20, 30], &MsrpParams::scaled_for_benchmarks());
        let reports = verify_msrp(&g, &out);
        for r in &reports {
            assert_eq!(r.under_estimates, 0);
        }
    }
}
