//! Section 6: replacement paths avoiding *far* edges (Algorithm 3).
//!
//! For a target `t` and a `k`-far edge `e` on the canonical `s–t` path (its distance to `t` lies
//! in `[2^{k+1}·X, 2^{k+2}·X)` with `X = sqrt(n/σ)·log n`), the replacement path's suffix is
//! longer than `2^{k+1}·X`, so with high probability a level-`k` landmark `r ∈ L_k` lies on the
//! suffix within distance `2^k·X` of `t` (Lemma 9). Because the edge is farther from `t` than
//! the landmark radius, no shortest `r–t` path can contain `e`, so
//! `d(s, t, e) = d(s, r, e) + d(r, t)` for that landmark; the algorithm simply tries every
//! landmark of the level within the radius.

use msrp_graph::{dist_add, CsrGraph, ShortestPathTree, Vertex};
use msrp_rpath::SourceReplacementDistances;

use crate::params::MsrpParams;
use crate::preprocess::BfsIndex;
use crate::sampling::SampledLevels;
use crate::source_landmark::SourceLandmarkView;

/// Relaxes the entries of `out` for every far edge on the canonical path to `target`
/// (Algorithm 3 of the paper, for one `(s, t)` pair).
#[allow(clippy::too_many_arguments)]
pub fn relax_far_edges(
    g: &CsrGraph,
    tree_s: &ShortestPathTree,
    target: Vertex,
    landmarks: &SampledLevels,
    landmark_index: &BfsIndex,
    view: &SourceLandmarkView<'_>,
    params: &MsrpParams,
    sigma: usize,
    out: &mut SourceReplacementDistances,
) {
    let n = g.vertex_count();
    let path = match tree_s.path_from_source(target) {
        Some(p) if p.len() >= 2 => p,
        _ => return,
    };
    let k = path.len() - 1;
    for i in 0..k {
        let dist_to_target = (k - i - 1) as u32;
        let level = match params.far_level(dist_to_target, n, sigma) {
            Some(level) => level,
            None => continue,
        };
        let e = msrp_graph::Edge::new(path[i], path[i + 1]);
        let radius = params.landmark_radius(level, n, sigma);
        for &r in landmarks.level(level) {
            let r_idx = landmark_index.index(r).expect("landmark has a BFS tree");
            let d_rt = landmark_index.distance(r_idx, target);
            if (d_rt as f64) > radius {
                continue;
            }
            let candidate = dist_add(view.replacement(r_idx, e), d_rt);
            out.relax(target, i, candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SampledLevels;
    use crate::source_landmark::SourceLandmarkTable;
    use msrp_graph::generators::cycle_graph;
    use msrp_graph::INFINITE_DISTANCE;
    use msrp_rpath::{replacement_distance, single_source_brute_force};

    /// Parameters shrunk so that a 40-cycle actually has far edges.
    fn tiny_params() -> MsrpParams {
        MsrpParams {
            near_constant: 1.0,
            log_scale: 0.2,
            sampling_constant: 4.0,
            ..MsrpParams::default()
        }
    }

    #[test]
    fn far_edges_exist_and_are_solved_exactly_on_a_long_cycle() {
        let g = cycle_graph(48);
        let csr = g.freeze();
        let params = tiny_params();
        let tree = ShortestPathTree::build(&g, 0);
        let sources = [0usize];
        let landmarks =
            SampledLevels::sample_seeded(g.vertex_count(), 1, &params, params.seed, &sources);
        let landmark_index = BfsIndex::build(&csr, landmarks.all());
        let table = SourceLandmarkTable::exact(&csr, std::slice::from_ref(&tree), &landmark_index);
        let view = table.view(0, &tree, &landmark_index);
        let truth = single_source_brute_force(&g, &tree);

        let mut out = SourceReplacementDistances::new(&tree);
        let mut far_edges_seen = 0;
        for t in 1..g.vertex_count() {
            relax_far_edges(
                &csr,
                &tree,
                t,
                &landmarks,
                &landmark_index,
                &view,
                &params,
                1,
                &mut out,
            );
            // Count how many far positions this target has, so the test is not vacuous.
            let depth = tree.distance(t).unwrap() as usize;
            for i in 0..depth {
                if params.far_level((depth - i - 1) as u32, g.vertex_count(), 1).is_some() {
                    far_edges_seen += 1;
                    let got = out.get(t, i).unwrap();
                    assert!(got >= truth.get(t, i).unwrap(), "never under-estimates");
                    assert_eq!(got, truth.get(t, i).unwrap(), "far edge t={t} i={i}");
                }
            }
        }
        assert!(far_edges_seen > 0, "the parameters must produce at least one far edge");
    }

    #[test]
    fn near_only_targets_are_left_untouched() {
        let g = cycle_graph(10);
        let csr = g.freeze();
        // Paper constants: every edge of such a short path is near, so Algorithm 3 is a no-op.
        let params = MsrpParams::default();
        let tree = ShortestPathTree::build(&g, 0);
        let landmarks = SampledLevels::sample_seeded(10, 1, &params, 1, &[0]);
        let landmark_index = BfsIndex::build(&csr, landmarks.all());
        let table = SourceLandmarkTable::exact(&csr, std::slice::from_ref(&tree), &landmark_index);
        let view = table.view(0, &tree, &landmark_index);
        let mut out = SourceReplacementDistances::new(&tree);
        relax_far_edges(&csr, &tree, 5, &landmarks, &landmark_index, &view, &params, 1, &mut out);
        assert!(out.row(5).iter().all(|&d| d == INFINITE_DISTANCE));
    }

    #[test]
    fn candidates_never_under_estimate_even_with_sparse_landmarks() {
        let g = cycle_graph(64);
        let csr = g.freeze();
        let params = MsrpParams { sampling_constant: 0.3, ..tiny_params() };
        let tree = ShortestPathTree::build(&g, 0);
        let landmarks = SampledLevels::sample_seeded(64, 1, &params, 3, &[0]);
        let landmark_index = BfsIndex::build(&csr, landmarks.all());
        let table = SourceLandmarkTable::exact(&csr, std::slice::from_ref(&tree), &landmark_index);
        let view = table.view(0, &tree, &landmark_index);
        let mut out = SourceReplacementDistances::new(&tree);
        for t in 1..64 {
            relax_far_edges(
                &csr,
                &tree,
                t,
                &landmarks,
                &landmark_index,
                &view,
                &params,
                1,
                &mut out,
            );
            for (i, &got) in out.row(t).iter().enumerate() {
                if got != INFINITE_DISTANCE {
                    let e = tree.path_edge(t, i).unwrap();
                    assert!(got >= replacement_distance(&g, 0, t, e));
                }
            }
        }
    }
}
