//! Section 7.2: *large* replacement paths avoiding a *near* edge (Algorithm 4).
//!
//! When the avoided edge `e` is close to the target `t` but the replacement path is long
//! (`|st ⋄ e| > |se| + 2·sqrt(n/σ)·log n`), the suffix of the replacement path is longer than
//! `2·sqrt(n/σ)·log n` (Lemma 11), so with high probability a level-0 landmark `r ∈ L_0` lies on
//! it close to `t`, and Lemma 13 shows the canonical `r–t` path cannot contain `e`. The
//! algorithm therefore tries every `r ∈ L_0` whose canonical path to `t` avoids `e` and relaxes
//! with `d(s, r, e) + d(r, t)`.
//!
//! Every candidate is the length of a real `e`-avoiding walk (the `s→r` part avoids `e` by
//! definition of `d(s, r, e)` and the `r→t` part is the canonical path, checked to avoid `e`),
//! so running the relaxation for *every* near edge — not only those whose replacement turns out
//! to be large — is safe; the small case is simply won by the Section 7.1 candidate.

use msrp_graph::{dist_add, CsrGraph, Edge, ShortestPathTree, Vertex};
use msrp_rpath::SourceReplacementDistances;

use crate::params::MsrpParams;
use crate::preprocess::BfsIndex;
use crate::sampling::SampledLevels;
use crate::source_landmark::SourceLandmarkView;

/// Relaxes the entries of `out` for every near edge on the canonical path to `target`
/// (Algorithm 4 of the paper, for one `(s, t)` pair).
#[allow(clippy::too_many_arguments)]
pub fn relax_near_large(
    g: &CsrGraph,
    tree_s: &ShortestPathTree,
    target: Vertex,
    landmarks: &SampledLevels,
    landmark_index: &BfsIndex,
    view: &SourceLandmarkView<'_>,
    params: &MsrpParams,
    sigma: usize,
    out: &mut SourceReplacementDistances,
) {
    let n = g.vertex_count();
    let path = match tree_s.path_from_source(target) {
        Some(p) if p.len() >= 2 => p,
        _ => return,
    };
    let k = path.len() - 1;
    let near = params.near_threshold(n, sigma);
    for i in (0..k).rev() {
        let dist_to_target = (k - i - 1) as f64;
        if dist_to_target >= near {
            break;
        }
        let e = Edge::new(path[i], path[i + 1]);
        for &r in landmarks.level(0) {
            let r_idx = landmark_index.index(r).expect("landmark has a BFS tree");
            let r_tree = landmark_index.tree(r_idx);
            if r_tree.path_contains_edge(target, e) {
                continue;
            }
            let candidate =
                dist_add(view.replacement(r_idx, e), r_tree.distance_or_infinite(target));
            out.relax(target, i, candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_landmark::SourceLandmarkTable;
    use msrp_graph::generators::{connected_gnm, cycle_graph};
    use msrp_graph::{Graph, INFINITE_DISTANCE};
    use msrp_rpath::{replacement_distance, single_source_brute_force};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        g: &Graph,
        source: Vertex,
        params: &MsrpParams,
    ) -> (ShortestPathTree, SampledLevels, BfsIndex) {
        let tree = ShortestPathTree::build(g, source);
        let landmarks =
            SampledLevels::sample_seeded(g.vertex_count(), 1, params, params.seed, &[source]);
        let index = BfsIndex::build(&g.freeze(), landmarks.all());
        (tree, landmarks, index)
    }

    #[test]
    fn solves_cycle_replacements_exactly() {
        // On a cycle every replacement path is "large" (it goes all the way round), which is
        // exactly the case Algorithm 4 exists for.
        let g = cycle_graph(12);
        let params = MsrpParams::default();
        let (tree, landmarks, index) = setup(&g, 0, &params);
        let csr = g.freeze();
        let table = SourceLandmarkTable::exact(&csr, std::slice::from_ref(&tree), &index);
        let view = table.view(0, &tree, &index);
        let truth = single_source_brute_force(&g, &tree);
        let mut out = SourceReplacementDistances::new(&tree);
        for t in 1..12 {
            relax_near_large(&csr, &tree, t, &landmarks, &index, &view, &params, 1, &mut out);
        }
        for (t, i, expected) in truth.iter() {
            assert_eq!(out.get(t, i), Some(expected), "target {t} edge {i}");
        }
    }

    #[test]
    fn candidates_never_under_estimate() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = connected_gnm(26, 52, &mut rng).unwrap();
        let params = MsrpParams { sampling_constant: 0.5, ..MsrpParams::default() };
        let (tree, landmarks, index) = setup(&g, 0, &params);
        let csr = g.freeze();
        let table = SourceLandmarkTable::exact(&csr, std::slice::from_ref(&tree), &index);
        let view = table.view(0, &tree, &index);
        let mut out = SourceReplacementDistances::new(&tree);
        for t in 1..g.vertex_count() {
            relax_near_large(&csr, &tree, t, &landmarks, &index, &view, &params, 1, &mut out);
            for (i, &got) in out.row(t).iter().enumerate() {
                if got != INFINITE_DISTANCE {
                    let e = tree.path_edge(t, i).unwrap();
                    assert!(got >= replacement_distance(&g, 0, t, e));
                }
            }
        }
    }

    #[test]
    fn unreachable_targets_are_ignored() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let params = MsrpParams::default();
        let (tree, landmarks, index) = setup(&g, 0, &params);
        let csr = g.freeze();
        let table = SourceLandmarkTable::exact(&csr, std::slice::from_ref(&tree), &index);
        let view = table.view(0, &tree, &index);
        let mut out = SourceReplacementDistances::new(&tree);
        relax_near_large(&csr, &tree, 2, &landmarks, &index, &view, &params, 1, &mut out);
        assert!(out.row(2).is_empty());
    }
}
