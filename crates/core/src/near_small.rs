//! Section 7.1: *small* replacement paths avoiding a *near* edge, via an auxiliary graph.
//!
//! For a fixed source `s`, the auxiliary graph `G_s` has a node `[v]` for every vertex, a node
//! `[t, e]` for every target `t` and every near edge `e` on the canonical `s–t` path, and the
//! following edges:
//!
//! * `[s] → [v]` with weight `d(s, v)`;
//! * `[v] → [t, e]` with weight 1 when `v` is a neighbour of `t`, `e` does not lie on the
//!   canonical `s–v` path, **and `(v, t)` is not the avoided edge `e` itself** (the extra guard
//!   documented in `DESIGN.md`);
//! * `[v, e] → [t, e]` with weight 1 when `v` is a neighbour of `t` and the node `[v, e]` exists.
//!
//! A Dijkstra run from `[s]` then labels every `[t, e]` with a length `w[t, e]` that is always
//! the length of a real `e`-avoiding `s–t` walk (so it can be used as a candidate everywhere)
//! and is exactly `|st ⋄ e|` whenever the replacement path is *small*
//! (`|st ⋄ e| ≤ |se| + 2·sqrt(n/σ)·log n`, Lemma 10).
//!
//! The Dijkstra predecessors are kept so that Section 8.2.1 can enumerate the actual paths.

use std::collections::HashMap;

use msrp_graph::{
    CsrGraph, DijkstraResult, Distance, ShortestPathTree, Vertex, WeightedDigraph, INFINITE_WEIGHT,
};
use msrp_rpath::SourceReplacementDistances;

use crate::params::MsrpParams;

/// The role of a node of the auxiliary graph `G_s`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum AuxNode {
    /// The source node `[s]`.
    Source,
    /// A plain vertex node `[v]`.
    Plain(Vertex),
    /// A pair node `[t, e]`, where the near edge `e` is identified by its deeper endpoint
    /// (child) in the source's BFS tree.
    Pair { target: Vertex, edge_child: Vertex },
}

/// The result of the Section 7.1 computation for one source.
#[derive(Clone, Debug)]
pub struct NearSmallResult {
    source: Vertex,
    /// `(target, edge_child)` → auxiliary-path length `w[t, e]`.
    dist: HashMap<(Vertex, Vertex), Distance>,
    /// `(target, edge_child)` → auxiliary node index (for path reconstruction).
    node_of_pair: HashMap<(Vertex, Vertex), usize>,
    nodes: Vec<AuxNode>,
    dijkstra: DijkstraResult,
    node_count: usize,
    edge_count: usize,
}

/// Builds the auxiliary graph for one source and runs Dijkstra on it.
pub fn build_near_small(
    g: &CsrGraph,
    tree_s: &ShortestPathTree,
    params: &MsrpParams,
    sigma: usize,
) -> NearSmallResult {
    let n = g.vertex_count();
    let s = tree_s.source();
    let near = params.near_threshold(n, sigma);

    let mut nodes: Vec<AuxNode> = Vec::with_capacity(2 * n);
    let mut aux = WeightedDigraph::new(0);
    // Node 0: [s].
    nodes.push(AuxNode::Source);
    aux.add_node();
    // Plain nodes [v] for every reachable vertex.
    let mut plain_node: Vec<Option<usize>> = vec![None; n];
    for (v, node) in plain_node.iter_mut().enumerate() {
        if tree_s.is_reachable(v) {
            let idx = aux.add_node();
            nodes.push(AuxNode::Plain(v));
            *node = Some(idx);
            aux.add_edge(0, idx, tree_s.distance_or_infinite(v) as u64);
        }
    }
    // Pair nodes [t, e] for every target and every near edge on its canonical path.
    let mut node_of_pair: HashMap<(Vertex, Vertex), usize> = HashMap::new();
    for t in 0..n {
        if t == s || !tree_s.is_reachable(t) {
            continue;
        }
        let depth = tree_s.distance_or_infinite(t) as usize;
        // Walk up from t; the child vertex at position i is encountered first (i = depth-1).
        let mut child = t;
        for i in (0..depth).rev() {
            let dist_to_target = (depth - 1 - i) as f64;
            if dist_to_target >= near {
                break;
            }
            let idx = aux.add_node();
            nodes.push(AuxNode::Pair { target: t, edge_child: child });
            node_of_pair.insert((t, child), idx);
            child = match tree_s.parent(child) {
                Some(p) => p,
                None => break,
            };
        }
    }
    // Edges into pair nodes.
    for (&(t, edge_child), &pair_idx) in &node_of_pair {
        let edge_parent = tree_s.parent(edge_child).expect("near edge child has a parent");
        for v in g.neighbors(t) {
            if !tree_s.is_reachable(v) {
                continue;
            }
            // [v] -> [t, e]: the canonical s–v path must avoid e, and (v, t) must not be e.
            let crossing_is_e = edge_child == t && v == edge_parent;
            if !crossing_is_e && !tree_s.is_ancestor(edge_child, v) {
                aux.add_edge(plain_node[v].expect("reachable"), pair_idx, 1);
            }
            // [v, e] -> [t, e].
            if let Some(&v_pair) = node_of_pair.get(&(v, edge_child)) {
                aux.add_edge(v_pair, pair_idx, 1);
            }
        }
    }
    let dijkstra = aux.dijkstra(0);

    let mut dist = HashMap::with_capacity(node_of_pair.len());
    for (&key, &idx) in &node_of_pair {
        let d = dijkstra.dist[idx];
        if d != INFINITE_WEIGHT {
            dist.insert(key, d.min(Distance::MAX as u64 - 1) as Distance);
        }
    }
    NearSmallResult {
        source: s,
        dist,
        node_of_pair,
        nodes,
        dijkstra,
        node_count: aux.node_count(),
        edge_count: aux.edge_count(),
    }
}

impl NearSmallResult {
    /// The source this result belongs to.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Number of nodes of the auxiliary graph (statistics).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges of the auxiliary graph (statistics).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The auxiliary-path length `w[t, e]` for the near edge identified by its deeper endpoint
    /// `edge_child`, if the pair node exists and is reachable.
    pub fn distance(&self, target: Vertex, edge_child: Vertex) -> Option<Distance> {
        self.dist.get(&(target, edge_child)).copied()
    }

    /// Relaxes every known `(t, e)` entry of `out` with the auxiliary-path lengths.
    pub fn apply_to(&self, tree_s: &ShortestPathTree, out: &mut SourceReplacementDistances) {
        for (&(t, edge_child), &w) in &self.dist {
            let pos = tree_s.distance_or_infinite(edge_child) as usize - 1;
            out.relax(t, pos, w);
        }
    }

    /// Iterates over all `(target, edge_child, distance)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (Vertex, Vertex, Distance)> + '_ {
        self.dist.iter().map(|(&(t, c), &d)| (t, c, d))
    }

    /// Reconstructs the actual vertex sequence of the auxiliary shortest path for `(t, e)`
    /// (used by Section 8.2.1 to find centers lying on small replacement paths).
    ///
    /// The returned path starts at the source and ends at `target`; consecutive vertices are
    /// adjacent in `g`, and the number of edges equals [`NearSmallResult::distance`].
    pub fn small_path(
        &self,
        tree_s: &ShortestPathTree,
        target: Vertex,
        edge_child: Vertex,
    ) -> Option<Vec<Vertex>> {
        let &idx = self.node_of_pair.get(&(target, edge_child))?;
        let aux_path = self.dijkstra.path_to(idx)?;
        let mut real: Vec<Vertex> = Vec::new();
        for &node in &aux_path {
            match self.nodes[node] {
                AuxNode::Source => {
                    // The source is emitted as part of the first Plain node's canonical path.
                }
                AuxNode::Plain(v) => {
                    let prefix = tree_s.path_from_source(v)?;
                    real.extend(prefix);
                }
                AuxNode::Pair { target: t, .. } => real.push(t),
            }
        }
        if real.is_empty() {
            real.push(self.source);
        }
        Some(real)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph};
    use msrp_graph::{Edge, INFINITE_DISTANCE};
    use msrp_rpath::{replacement_distance, single_source_brute_force};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> MsrpParams {
        MsrpParams::default()
    }

    #[test]
    fn matches_truth_when_every_replacement_is_small() {
        // With the paper constants on a small dense-ish graph every edge is near and every
        // replacement path is small, so the Section 7.1 graph alone already solves SSRP.
        let mut rng = StdRng::seed_from_u64(9);
        let g = connected_gnm(30, 75, &mut rng).unwrap();
        let tree = ShortestPathTree::build(&g, 0);
        let truth = single_source_brute_force(&g, &tree);
        let near = build_near_small(&g.freeze(), &tree, &params(), 1);
        let mut out = SourceReplacementDistances::new(&tree);
        near.apply_to(&tree, &mut out);
        for (t, i, d) in truth.iter() {
            let got = out.get(t, i).unwrap();
            assert!(got >= d, "candidate may never under-estimate");
            if d != INFINITE_DISTANCE {
                assert_eq!(got, d, "target {t} edge {i}");
            }
        }
    }

    #[test]
    fn candidates_are_always_valid_paths() {
        let g = grid_graph(4, 4);
        let tree = ShortestPathTree::build(&g, 0);
        let near = build_near_small(&g.freeze(), &tree, &params(), 1);
        for (t, child, w) in near.iter() {
            let parent = tree.parent(child).unwrap();
            let truth = replacement_distance(&g, 0, t, Edge::new(parent, child));
            assert!(w >= truth, "w[{t},{child}] = {w} under-estimates {truth}");
        }
    }

    #[test]
    fn reconstructed_paths_avoid_the_edge_and_have_the_right_length() {
        let g = cycle_graph(9);
        let tree = ShortestPathTree::build(&g, 0);
        let near = build_near_small(&g.freeze(), &tree, &params(), 1);
        for (t, child, w) in near.iter() {
            let parent = tree.parent(child).unwrap();
            let avoided = Edge::new(parent, child);
            let path = near.small_path(&tree, t, child).expect("path exists");
            assert_eq!(path.first(), Some(&0));
            assert_eq!(path.last(), Some(&t));
            assert_eq!(path.len() as Distance - 1, w, "length mismatch for ({t}, {child})");
            for pair in path.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "non-edge in reconstructed path");
                assert_ne!(Edge::new(pair[0], pair[1]), avoided, "path uses the avoided edge");
            }
        }
    }

    #[test]
    fn bridge_edges_have_no_pair_distance() {
        // In a path graph, removing any edge disconnects the target: no [t, e] label.
        let g = msrp_graph::generators::path_graph(6);
        let tree = ShortestPathTree::build(&g, 0);
        let near = build_near_small(&g.freeze(), &tree, &params(), 1);
        assert_eq!(near.iter().count(), 0);
        assert!(near.distance(3, 2).is_none());
        assert!(near.node_count() > 0);
        assert!(near.edge_count() > 0);
        assert_eq!(near.source(), 0);
    }

    #[test]
    fn guard_prevents_walking_over_the_avoided_edge() {
        // Without the (v, t) != e guard, the path 0-1 avoiding edge (0, 1) would be "found" with
        // length 1 by stepping from [0] straight over the forbidden edge.
        let g = cycle_graph(5);
        let tree = ShortestPathTree::build(&g, 0);
        let near = build_near_small(&g.freeze(), &tree, &params(), 1);
        assert_eq!(near.distance(1, 1), Some(4));
    }
}
