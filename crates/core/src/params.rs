//! Tunable parameters of the randomized MSRP algorithm.
//!
//! The paper fixes its constants for the sake of the high-probability analysis (sampling
//! probability `4/2^k · sqrt(σ/n)`, near/far threshold `2 · sqrt(n/σ) · log n`, window constant
//! `ℓ ≥ 2`). At laptop scale those thresholds exceed the diameter of most interesting graphs, so
//! every edge is "near" and almost every vertex is a landmark; the algorithm is then exact but
//! its asymptotic structure is not exercised. [`MsrpParams`] therefore exposes every constant:
//! the defaults follow the paper (used by the correctness tests), and
//! [`MsrpParams::scaled_for_benchmarks`] shrinks them so the far-edge and interval machinery
//! actually runs in the experiments (documented in `EXPERIMENTS.md`).

use msrp_graph::Distance;

/// How the replacement paths from every source to every landmark are computed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SourceToLandmarkStrategy {
    /// Run the classical `Õ(m + n)` single-pair routine once per (source, landmark) pair.
    ///
    /// This is what the paper does for `σ = 1` (Section 3) and is the natural-but-slower
    /// approach for larger `σ` (`Õ((m + n)·σ·sqrt(nσ))`); it serves as the ablation baseline.
    Exact,
    /// Use the path-cover machinery of Section 8 (centers, intervals, MTC, bottleneck edges),
    /// the paper's contribution for general `σ`.
    PathCover,
}

/// Parameters controlling sampling probabilities, near/far thresholds and window sizes.
#[derive(Clone, Debug, PartialEq)]
pub struct MsrpParams {
    /// Multiplier of the sampling probability (the paper uses 4).
    pub sampling_constant: f64,
    /// Multiplier of the near/far threshold (the paper uses 2).
    pub near_constant: f64,
    /// The window constant `ℓ` of Sections 8.1 and 8.2 (the paper requires `ℓ ≥ 2`).
    pub window_constant: f64,
    /// Scale applied to the `log n` factor in every threshold (1.0 follows the paper; the
    /// benchmark presets shrink it so that thresholds stay below graph diameters).
    pub log_scale: f64,
    /// Number of Algorithm-4-style refinement sweeps applied to the path-cover table
    /// (see `multi_source`); 0 disables refinement.
    pub refinement_sweeps: usize,
    /// Seed for landmark and center sampling (the algorithm is otherwise deterministic).
    pub seed: u64,
    /// Strategy for the source→landmark replacement tables when `σ > 1`.
    pub strategy: SourceToLandmarkStrategy,
}

impl Default for MsrpParams {
    fn default() -> Self {
        MsrpParams {
            sampling_constant: 4.0,
            near_constant: 2.0,
            window_constant: 4.0,
            log_scale: 1.0,
            refinement_sweeps: 2,
            seed: 0xC0FF_EE00_D15E_A5E5,
            strategy: SourceToLandmarkStrategy::PathCover,
        }
    }
}

impl MsrpParams {
    /// Paper-faithful constants (same as `Default`), exact with high probability.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Constants scaled down so that the sampling hierarchy and the far-edge machinery are
    /// exercised on graphs that fit on a laptop. Still correct (every candidate the algorithm
    /// adds is a real path), but the high-probability guarantee is weaker; experiment E3
    /// measures the empirical exactness rate under this preset.
    pub fn scaled_for_benchmarks() -> Self {
        MsrpParams {
            sampling_constant: 1.0,
            near_constant: 1.0,
            window_constant: 2.0,
            log_scale: 0.25,
            refinement_sweeps: 1,
            ..Self::default()
        }
    }

    /// Returns a copy with a different sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different source→landmark strategy.
    pub fn with_strategy(mut self, strategy: SourceToLandmarkStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The `log n` term used by every threshold (never below 1).
    pub fn log_term(&self, n: usize) -> f64 {
        ((n.max(2)) as f64).ln().max(1.0) * self.log_scale
    }

    /// The base unit `X = sqrt(n/σ) · log n` that all distance thresholds are multiples of.
    pub fn base_unit(&self, n: usize, sigma: usize) -> f64 {
        let sigma = sigma.max(1);
        ((n.max(1)) as f64 / sigma as f64).sqrt() * self.log_term(n)
    }

    /// An edge at distance `< near_threshold` from the target (measured along the canonical
    /// path) is a *near* edge (Section 5).
    pub fn near_threshold(&self, n: usize, sigma: usize) -> f64 {
        self.near_constant * self.base_unit(n, sigma)
    }

    /// The largest sampling level `K = ⌊log₂ sqrt(nσ)⌋` (Definition 3).
    pub fn max_level(&self, n: usize, sigma: usize) -> usize {
        let v = ((n.max(1) * sigma.max(1)) as f64).sqrt().log2().floor();
        if v.is_finite() && v > 0.0 {
            v as usize
        } else {
            0
        }
    }

    /// Sampling probability of level `k` (Definition 3): `min(1, c/2^k · sqrt(σ/n))`.
    pub fn sampling_probability(&self, k: usize, n: usize, sigma: usize) -> f64 {
        let n = n.max(1) as f64;
        let sigma = sigma.max(1) as f64;
        (self.sampling_constant / (1u64 << k.min(62)) as f64 * (sigma / n).sqrt()).min(1.0)
    }

    /// Classifies an edge by its distance to the target: `None` means the edge is *near*,
    /// `Some(k)` means the edge is *k-far* (distance in `[2^{k+1}·X, 2^{k+2}·X)`), with `k`
    /// capped at [`MsrpParams::max_level`].
    pub fn far_level(&self, distance_to_target: Distance, n: usize, sigma: usize) -> Option<usize> {
        let x = self.base_unit(n, sigma);
        let d = distance_to_target as f64;
        if d < self.near_constant * x {
            return None;
        }
        let k = (d / x).log2().floor() as i64 - 1;
        let k = k.max(0) as usize;
        Some(k.min(self.max_level(n, sigma)))
    }

    /// The landmark radius of level `k`: Algorithm 3 only considers landmarks within distance
    /// `2^k · X` of the target.
    pub fn landmark_radius(&self, k: usize, n: usize, sigma: usize) -> f64 {
        (1u64 << k.min(62)) as f64 * self.base_unit(n, sigma)
    }

    /// The Section 8 window: how many edges (counted from the center's side) a priority-`k`
    /// center is responsible for, `ℓ · 2^k · X`.
    pub fn window_size(&self, k: usize, n: usize, sigma: usize) -> usize {
        (self.window_constant * (1u64 << k.min(62)) as f64 * self.base_unit(n, sigma))
            .ceil()
            .max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let p = MsrpParams::default();
        assert_eq!(p.sampling_constant, 4.0);
        assert_eq!(p.near_constant, 2.0);
        assert!(p.window_constant >= 2.0);
        assert_eq!(p.strategy, SourceToLandmarkStrategy::PathCover);
        assert_eq!(MsrpParams::paper(), MsrpParams::default());
    }

    #[test]
    fn probabilities_are_valid_and_decreasing_in_k() {
        let p = MsrpParams::default();
        let (n, sigma) = (10_000, 4);
        let mut prev = f64::INFINITY;
        for k in 0..=p.max_level(n, sigma) {
            let prob = p.sampling_probability(k, n, sigma);
            assert!((0.0..=1.0).contains(&prob));
            assert!(prob <= prev);
            prev = prob;
        }
        // Small graphs saturate at probability 1.
        assert_eq!(p.sampling_probability(0, 16, 4), 1.0);
    }

    #[test]
    fn far_levels_partition_distances() {
        let p = MsrpParams { log_scale: 1.0, ..MsrpParams::default() };
        let (n, sigma) = (1 << 14, 1);
        let x = p.base_unit(n, sigma);
        assert!(p.far_level((0.5 * x) as Distance, n, sigma).is_none());
        assert_eq!(p.far_level((2.5 * x) as Distance, n, sigma), Some(0));
        assert_eq!(p.far_level((5.0 * x) as Distance, n, sigma), Some(1));
        assert_eq!(p.far_level((10.0 * x) as Distance, n, sigma), Some(2));
        // Very large distances are capped at the maximum level.
        let far = p.far_level(Distance::MAX / 2, n, sigma).unwrap();
        assert_eq!(far, p.max_level(n, sigma));
    }

    #[test]
    fn far_edges_are_farther_than_their_landmark_radius() {
        // The key invariant behind Algorithm 3: a k-far edge is at distance >= 2^{k+1}·X from
        // the target while considered landmarks are within 2^k·X, so no considered landmark's
        // shortest path to the target can contain the edge.
        let p = MsrpParams::default();
        let (n, sigma) = (1 << 12, 2);
        for d in [20u32, 50, 120, 400, 1000] {
            if let Some(k) = p.far_level(d, n, sigma) {
                assert!(
                    (d as f64) >= p.landmark_radius(k, n, sigma),
                    "distance {d} must exceed radius at level {k}"
                );
            }
        }
    }

    #[test]
    fn max_level_matches_definition() {
        let p = MsrpParams::default();
        assert_eq!(p.max_level(1 << 10, 1), 5); // sqrt(1024) = 32, log2 = 5
        assert_eq!(p.max_level(1 << 10, 4), 6); // sqrt(4096) = 64
        assert_eq!(p.max_level(1, 1), 0);
    }

    #[test]
    fn window_is_at_least_one_and_monotone() {
        let p = MsrpParams::default();
        let (n, sigma) = (4096, 8);
        let mut prev = 0;
        for k in 0..=p.max_level(n, sigma) {
            let w = p.window_size(k, n, sigma);
            assert!(w >= 1);
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn builder_style_modifiers() {
        let p = MsrpParams::default().with_seed(7).with_strategy(SourceToLandmarkStrategy::Exact);
        assert_eq!(p.seed, 7);
        assert_eq!(p.strategy, SourceToLandmarkStrategy::Exact);
    }

    #[test]
    fn benchmark_preset_shrinks_thresholds() {
        let paper = MsrpParams::paper();
        let bench = MsrpParams::scaled_for_benchmarks();
        let (n, sigma) = (2048, 4);
        assert!(bench.near_threshold(n, sigma) < paper.near_threshold(n, sigma));
        assert!(bench.sampling_probability(0, n, sigma) < paper.sampling_probability(0, n, sigma));
    }
}
