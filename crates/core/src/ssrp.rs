//! The single-source solver (Theorem 14) and the per-source completion phase shared with the
//! multi-source solver.
//!
//! Pipeline for one source `s` (Sections 5–7 of the paper):
//!
//! 1. build the canonical BFS tree `T_s`;
//! 2. sample the landmark hierarchy `L_0 ⊇ L_1 ⊇ …` and run BFS from every landmark;
//! 3. compute the replacement paths from `s` to every landmark (classical routine for `σ = 1`);
//! 4. build the Section 7.1 auxiliary graph and run Dijkstra (small near-edge paths);
//! 5. for every target, relax far edges with Algorithm 3 and near edges with Algorithm 4.

use std::time::Instant;

use msrp_graph::{CsrGraph, Graph, ShortestPathTree, Vertex};
use msrp_rpath::SourceReplacementDistances;

use crate::far::relax_far_edges;
use crate::near_large::relax_near_large;
use crate::near_small::{build_near_small, NearSmallResult};
use crate::output::SsrpOutput;
use crate::params::MsrpParams;
use crate::preprocess::BfsIndex;
use crate::sampling::SampledLevels;
use crate::source_landmark::{SourceLandmarkTable, SourceLandmarkView};
use crate::stats::AlgorithmStats;

/// Completes the answer for one source given the preprocessed structures: applies the
/// Section 7.1 candidates, copies the source→landmark table for landmark targets, and runs
/// Algorithms 3 and 4 for every target.
#[allow(clippy::too_many_arguments)]
pub(crate) fn complete_source(
    g: &CsrGraph,
    tree_s: &ShortestPathTree,
    landmarks: &SampledLevels,
    landmark_index: &BfsIndex,
    view: &SourceLandmarkView<'_>,
    near_small: &NearSmallResult,
    params: &MsrpParams,
    sigma: usize,
) -> SourceReplacementDistances {
    let mut out = SourceReplacementDistances::new(tree_s);

    // Small near-edge replacement paths (Section 7.1).
    near_small.apply_to(tree_s, &mut out);

    // The table itself *is* the answer for landmark targets; seed those rows.
    for (r_idx, &r) in landmark_index.vertices().iter().enumerate() {
        if r == tree_s.source() || !tree_s.is_reachable(r) {
            continue;
        }
        for (pos, e) in tree_s.path_edges(r).iter().enumerate() {
            out.relax(r, pos, view.replacement(r_idx, *e));
        }
    }

    // Far edges (Algorithm 3) and near edges with large replacement paths (Algorithm 4).
    for t in 0..g.vertex_count() {
        if t == tree_s.source() || !tree_s.is_reachable(t) {
            continue;
        }
        relax_far_edges(g, tree_s, t, landmarks, landmark_index, view, params, sigma, &mut out);
        relax_near_large(g, tree_s, t, landmarks, landmark_index, view, params, sigma, &mut out);
    }
    out
}

/// Solves the single-source replacement path problem for `source` (Theorem 14,
/// `Õ(m√n + n²)` expected time with the paper's constants).
///
/// The output is exact with high probability over the landmark sampling; every reported value is
/// always the length of a real path avoiding the corresponding edge (never an under-estimate).
///
/// # Panics
///
/// Panics if `source` is out of range for `g`.
///
/// ```
/// use msrp_core::{solve_ssrp, MsrpParams};
/// use msrp_graph::generators::cycle_graph;
///
/// let g = cycle_graph(10);
/// let out = solve_ssrp(&g, 0, &MsrpParams::default());
/// // Avoiding the first edge of the path 0-1-2 forces the long way round (length 8).
/// assert_eq!(out.distances.get(2, 0), Some(8));
/// ```
pub fn solve_ssrp(g: &Graph, source: Vertex, params: &MsrpParams) -> SsrpOutput {
    solve_ssrp_csr(&g.freeze(), source, params)
}

/// CSR entry point of [`solve_ssrp`]: the whole pipeline (source tree, landmark BFS, the
/// auxiliary-graph Dijkstra, the completion sweeps) traverses the frozen view, so callers
/// holding a long-lived [`CsrGraph`] (the oracle's parallel shard build, the serving layer)
/// freeze once and share it.
///
/// # Panics
///
/// Panics if `source` is out of range for `g`.
pub fn solve_ssrp_csr(g: &CsrGraph, source: Vertex, params: &MsrpParams) -> SsrpOutput {
    assert!(source < g.vertex_count(), "source {source} out of range");
    let n = g.vertex_count();
    let sigma = 1;
    let mut stats = AlgorithmStats { sigma, ..Default::default() };

    let start = Instant::now();
    let tree = ShortestPathTree::build_csr(g, source);
    stats.record_phase("source BFS tree", start.elapsed());

    let start = Instant::now();
    let landmarks = SampledLevels::sample_seeded(n, sigma, params, params.seed, &[source]);
    stats.record_phase("landmark sampling", start.elapsed());
    stats.landmark_count = landmarks.len();
    stats.landmark_level_sizes = landmarks.level_sizes();

    let start = Instant::now();
    let landmark_index = BfsIndex::build(g, landmarks.all());
    stats.record_phase("landmark BFS", start.elapsed());

    let start = Instant::now();
    let table = SourceLandmarkTable::exact(g, std::slice::from_ref(&tree), &landmark_index);
    stats.record_phase("source-landmark replacement paths", start.elapsed());
    stats.source_landmark_entries = table.entry_count();

    let start = Instant::now();
    let near_small = build_near_small(g, &tree, params, sigma);
    stats.record_phase("near-small auxiliary graph", start.elapsed());
    stats.near_small_nodes = near_small.node_count();
    stats.near_small_edges = near_small.edge_count();

    let start = Instant::now();
    let view = table.view(0, &tree, &landmark_index);
    let distances =
        complete_source(g, &tree, &landmarks, &landmark_index, &view, &near_small, params, sigma);
    stats.record_phase("far/near completion", start.elapsed());
    stats.output_entries = distances.entry_count();

    SsrpOutput { source, tree, distances, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{
        barabasi_albert, connected_gnm, cycle_graph, grid_graph, hypercube, path_graph, torus_graph,
    };
    use msrp_rpath::{compare, single_source_brute_force};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_exact(g: &Graph, source: Vertex, params: &MsrpParams) {
        let out = solve_ssrp(g, source, params);
        let truth = single_source_brute_force(g, &out.tree);
        let report = compare(&truth, &out.distances);
        assert!(
            report.is_exact(),
            "source {source}: {} mismatches, first: {:?}",
            report.mismatches.len(),
            report.mismatches.first()
        );
    }

    #[test]
    fn exact_on_structured_graphs_with_paper_constants() {
        let params = MsrpParams::default();
        assert_exact(&cycle_graph(15), 0, &params);
        assert_exact(&grid_graph(4, 5), 3, &params);
        assert_exact(&torus_graph(4, 4), 0, &params);
        assert_exact(&hypercube(4), 5, &params);
        assert_exact(&path_graph(9), 2, &params);
    }

    #[test]
    fn exact_on_random_graphs_with_paper_constants() {
        let mut rng = StdRng::seed_from_u64(1234);
        for n in [20usize, 35, 50] {
            let g = connected_gnm(n, 2 * n, &mut rng).unwrap();
            assert_exact(&g, 0, &MsrpParams::default());
            assert_exact(&g, n / 2, &MsrpParams::default().with_seed(n as u64));
        }
    }

    #[test]
    fn exact_on_preferential_attachment() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = barabasi_albert(60, 2, &mut rng).unwrap();
        assert_exact(&g, 0, &MsrpParams::default());
    }

    #[test]
    fn never_under_estimates_even_with_tiny_samples() {
        // With an absurdly small sampling constant the answer may be an over-estimate, but it
        // must remain a valid path length (>= the true replacement distance).
        let mut rng = StdRng::seed_from_u64(5);
        let g = connected_gnm(40, 80, &mut rng).unwrap();
        let params = MsrpParams {
            sampling_constant: 0.05,
            log_scale: 0.1,
            near_constant: 0.5,
            ..MsrpParams::default()
        };
        let out = solve_ssrp(&g, 0, &params);
        let truth = single_source_brute_force(&g, &out.tree);
        let report = compare(&truth, &out.distances);
        assert_eq!(report.under_estimates, 0, "{:?}", report.mismatches.first());
    }

    #[test]
    fn stats_are_populated() {
        let g = grid_graph(5, 5);
        let out = solve_ssrp(&g, 0, &MsrpParams::default());
        assert_eq!(out.stats.sigma, 1);
        assert!(out.stats.landmark_count > 0);
        assert!(out.stats.output_entries > 0);
        assert!(out.stats.phases.len() >= 5);
        assert!(out.stats.total_time().as_nanos() > 0);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let g = grid_graph(4, 6);
        let a = solve_ssrp(&g, 1, &MsrpParams::default());
        let b = solve_ssrp(&g, 1, &MsrpParams::default());
        assert_eq!(a.distances, b.distances);
    }
}
