//! Verification helpers: compare solver outputs against the brute-force ground truth
//! (experiment E3 and the integration tests are built on these).

use msrp_graph::{BfsScratch, Graph};
use msrp_rpath::{
    compare, single_source_brute_force, single_source_brute_force_with_scratch, ComparisonReport,
};

use crate::output::{MsrpOutput, SsrpOutput};

/// Compares an SSRP output against the brute-force ground truth.
pub fn verify_ssrp(g: &Graph, output: &SsrpOutput) -> ComparisonReport {
    let truth = single_source_brute_force(g, &output.tree);
    compare(&truth, &output.distances)
}

/// Compares every source of an MSRP output against the brute-force ground truth (one frozen
/// CSR view and one set of BFS scratch buffers shared across all the sources).
pub fn verify_msrp(g: &Graph, output: &MsrpOutput) -> Vec<ComparisonReport> {
    let csr = g.freeze();
    let mut scratch = BfsScratch::new();
    output
        .per_source
        .iter()
        .zip(output.trees.iter())
        .map(|(dist, tree)| {
            let truth = single_source_brute_force_with_scratch(&csr, tree, &mut scratch);
            compare(&truth, dist)
        })
        .collect()
}

/// Aggregate exactness over all sources: `(agreeing entries, total entries)`.
pub fn exactness(reports: &[ComparisonReport]) -> (usize, usize) {
    let total: usize = reports.iter().map(|r| r.total_entries).sum();
    let bad: usize = reports.iter().map(|r| r.mismatches.len()).sum();
    (total - bad, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_msrp, solve_ssrp, MsrpParams};
    use msrp_graph::generators::grid_graph;

    #[test]
    fn ssrp_verifies_exactly_on_a_grid() {
        let g = grid_graph(4, 4);
        let out = solve_ssrp(&g, 0, &MsrpParams::default());
        let report = verify_ssrp(&g, &out);
        assert!(report.is_exact());
    }

    #[test]
    fn msrp_verifies_exactly_on_a_grid() {
        let g = grid_graph(4, 4);
        let out = solve_msrp(&g, &[0, 5, 15], &MsrpParams::default());
        let reports = verify_msrp(&g, &out);
        assert_eq!(reports.len(), 3);
        let (good, total) = exactness(&reports);
        assert_eq!(good, total);
        assert!(total > 0);
    }
}
