//! The weighted multi-source solver: replacement paths over Dijkstra shortest-path trees.
//!
//! Section 9 of the paper discusses lifting MSRP from hop distances to non-negative edge
//! weights; the structural facts the lift rests on are classical (Malik–Mittal–Gupta 1989
//! and the replacement-path literature the paper cites):
//!
//! For an undirected graph, a source `s` with Dijkstra tree `T_s`, and a tree edge
//! `e = (p, c)` (with `c` the child), removing `e` only affects the targets in the subtree
//! of `c`, and every replacement path from `s` to a target `t` in that subtree decomposes at
//! its **last crossing** of the cut `(V \ subtree(c), subtree(c))`:
//!
//! 1. a prefix from `s` to some `x ∉ subtree(c)` — the canonical path to `x` avoids `e`
//!    (tree paths use `e` iff their endpoint is below `c`), so the prefix costs exactly
//!    `d(s, x)`, already known from `T_s`;
//! 2. one crossing edge `(x, y)` with `y ∈ subtree(c)`, any such edge except `e` itself;
//! 3. a suffix from `y` to `t` that stays **inside** the subtree (it is below the last
//!    crossing by definition).
//!
//! So `d(s, t ⋄ e)` for *all* targets in the subtree is one multi-seed Dijkstra restricted
//! to the subtree: seed every `y ∈ subtree(c)` with `min over crossing edges (x, y)` of
//! `d(s, x) + w(x, y)`, then relax only subtree-internal edges. [`solve_msrp_weighted`]
//! runs that search once per tree edge per source — `O(Σ_c (|subtree(c)| + vol(subtree(c)))
//! · log n)` per source, an *output-sensitive* bound (`Σ_c |subtree(c)| = Σ_t depth(t)` is
//! exactly the output size), versus the full `Θ(n)`-vertex Dijkstra per tree edge of the
//! brute force it is validated against. The two are asserted equal bit-for-bit in this
//! module's tests, the oracle tests, and experiment E9.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use msrp_graph::{
    DijkstraScratch, Edge, Vertex, Weight, WeightedCsrGraph, WeightedTree, INFINITE_WEIGHT,
};
use msrp_rpath::WeightedReplacementDistances;

/// Result of the weighted multi-source solver ([`solve_msrp_weighted`]).
#[derive(Clone, Debug)]
pub struct WeightedMsrpOutput {
    /// The sources, in the order they were given.
    pub sources: Vec<Vertex>,
    /// Canonical Dijkstra tree per source.
    pub trees: Vec<WeightedTree>,
    /// Replacement distances per source.
    pub per_source: Vec<WeightedReplacementDistances>,
}

impl WeightedMsrpOutput {
    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Index of a source vertex, if it is one of the sources.
    pub fn source_index(&self, s: Vertex) -> Option<usize> {
        self.sources.iter().position(|&x| x == s)
    }

    /// Convenience query for source `s`: `|st ⋄ e|` (ordinary distance when `e` is
    /// off-path). Returns `None` when `s` is not one of the sources.
    pub fn distance_avoiding(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Weight> {
        let i = self.source_index(s)?;
        Some(self.per_source[i].distance_avoiding(&self.trees[i], t, e))
    }

    /// Total number of `(s, t, e)` entries produced.
    pub fn entry_count(&self) -> usize {
        self.per_source.iter().map(|d| d.entry_count()).sum()
    }
}

/// Solves the weighted multiple-source replacement path problem: for every source `s`, every
/// target `t`, and every edge on the canonical `s–t` Dijkstra path, the weighted length of
/// the shortest `s–t` path avoiding that edge.
///
/// Exact and deterministic (no sampling is involved; the crossing-edge decomposition in the
/// module docs replaces the unweighted solver's landmark machinery).
///
/// # Panics
///
/// Panics if `sources` is empty, contains duplicates, or contains an out-of-range vertex.
///
/// ```
/// use msrp_core::solve_msrp_weighted;
/// use msrp_graph::{Edge, WeightedGraph};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// // A weighted 4-cycle: the replacement for a failed path edge is the complementary arc.
/// let g = WeightedGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 10)])?;
/// let out = solve_msrp_weighted(&g.freeze(), &[0]);
/// assert_eq!(out.distance_avoiding(0, 2, Edge::new(0, 1)), Some(11));
/// # Ok(())
/// # }
/// ```
pub fn solve_msrp_weighted(g: &WeightedCsrGraph, sources: &[Vertex]) -> WeightedMsrpOutput {
    let n = g.vertex_count();
    assert!(!sources.is_empty(), "at least one source is required");
    for &s in sources {
        assert!(s < n, "source {s} out of range (n = {n})");
    }
    let mut dedup = sources.to_vec();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), sources.len(), "sources must be distinct");

    let mut scratch = DijkstraScratch::new();
    let trees: Vec<WeightedTree> =
        sources.iter().map(|&s| WeightedTree::build_with_scratch(g, s, &mut scratch)).collect();
    let mut aux = SubtreeSearch::new(n);
    let per_source: Vec<WeightedReplacementDistances> =
        trees.iter().map(|tree| solve_one_source(g, tree, &mut aux)).collect();

    WeightedMsrpOutput { sources: sources.to_vec(), trees, per_source }
}

/// Reusable buffers for the per-tree-edge restricted search: a stamp array marking the
/// current subtree (no `O(n)` clearing between edges), the local distance array (reset via
/// the subtree list), the subtree worklist, and the heap.
struct SubtreeSearch {
    stamp: Vec<u64>,
    cur: u64,
    dist: Vec<Weight>,
    subtree: Vec<Vertex>,
    heap: BinaryHeap<Reverse<(Weight, u32)>>,
}

impl SubtreeSearch {
    fn new(n: usize) -> Self {
        SubtreeSearch {
            stamp: vec![0; n],
            cur: 0,
            dist: vec![INFINITE_WEIGHT; n],
            subtree: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }
}

/// Fills one source's replacement table with the crossing-edge decomposition (module docs).
fn solve_one_source(
    g: &WeightedCsrGraph,
    tree: &WeightedTree,
    aux: &mut SubtreeSearch,
) -> WeightedReplacementDistances {
    let n = g.vertex_count();
    let mut out = WeightedReplacementDistances::new(tree);
    // Children lists in settle order (parents settle before children, so a forward sweep of
    // the worklist enumerates each subtree completely).
    let children = tree.children_of();
    for c in 0..n {
        let p = match tree.parent(c) {
            Some(p) => p,
            None => continue, // the root and unreachable vertices head no tree edge
        };
        let pos = tree.depth(c) - 1;
        aux.cur += 1;
        let cur = aux.cur;
        // Collect and stamp the subtree of c.
        aux.subtree.clear();
        aux.subtree.push(c);
        aux.stamp[c] = cur;
        let mut i = 0;
        while i < aux.subtree.len() {
            let v = aux.subtree[i];
            i += 1;
            for &ch in &children[v] {
                aux.stamp[ch] = cur;
                aux.subtree.push(ch);
            }
        }
        // Seed every subtree vertex with its best entry over a crossing edge. The failed
        // edge (p, c) is itself a crossing edge and must be excluded; every other crossing
        // edge (x, y) contributes d(s, x) + w(x, y), with d(s, x) read off the intact tree
        // (the canonical path to x ∉ subtree(c) avoids the failed edge).
        for idx in 0..aux.subtree.len() {
            let y = aux.subtree[idx];
            for (x, w) in g.neighbors(y) {
                if aux.stamp[x] == cur || (y == c && x == p) {
                    continue;
                }
                let dx = tree.distance_or_infinite(x);
                if dx == INFINITE_WEIGHT {
                    continue;
                }
                // A saturated sum equals INFINITE_WEIGHT and cannot pass the strict `<`,
                // so a saturating entry is simply never seeded.
                let cand = dx.saturating_add(w);
                if cand < aux.dist[y] {
                    aux.dist[y] = cand;
                    aux.heap.push(Reverse((cand, y as u32)));
                }
            }
        }
        // Multi-seed Dijkstra restricted to subtree-internal edges.
        while let Some(Reverse((d, v))) = aux.heap.pop() {
            let v = v as usize;
            if d > aux.dist[v] {
                continue;
            }
            for (u, w) in g.neighbors(v) {
                if aux.stamp[u] != cur {
                    continue;
                }
                let nd = d.saturating_add(w);
                if nd < aux.dist[u] {
                    aux.dist[u] = nd;
                    aux.heap.push(Reverse((nd, u as u32)));
                }
            }
        }
        // Record the row entries and reset the touched distances.
        for &y in &aux.subtree {
            out.set(y, pos, aux.dist[y]);
            aux.dist[y] = INFINITE_WEIGHT;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{
        cycle_graph, grid_graph, random_weights, weighted_barabasi_albert, weighted_connected_gnm,
    };
    use msrp_graph::WeightedGraph;
    use msrp_rpath::single_source_brute_force_weighted;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Bit-for-bit equality of the solver against the brute-force ground truth.
    fn assert_matches_brute_force(g: &WeightedCsrGraph, sources: &[Vertex]) {
        let out = solve_msrp_weighted(g, sources);
        let mut scratch = DijkstraScratch::new();
        for (i, tree) in out.trees.iter().enumerate() {
            let truth = single_source_brute_force_weighted(g, tree, &mut scratch);
            assert_eq!(out.per_source[i], truth, "source {}", sources[i]);
        }
    }

    #[test]
    fn exact_on_structured_weighted_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for topo in [cycle_graph(16), grid_graph(4, 5)] {
            let g = random_weights(&topo, 50, &mut rng).freeze();
            let sources: Vec<Vertex> = vec![0, topo.vertex_count() - 1];
            assert_matches_brute_force(&g, &sources);
        }
    }

    #[test]
    fn exact_on_seeded_random_weighted_graphs() {
        for seed in [4242u64, 77, 2026] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = weighted_connected_gnm(30, 70, 1000, &mut rng).unwrap().freeze();
            assert_matches_brute_force(&g, &[0, 10, 15, 29]);
        }
    }

    #[test]
    fn exact_on_preferential_attachment_with_skewed_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = weighted_barabasi_albert(40, 3, 9999, &mut rng).unwrap().freeze();
        assert_matches_brute_force(&g, &[0, 20, 39]);
    }

    #[test]
    fn exact_on_disconnected_weighted_graphs() {
        // Two weighted components; targets across the cut have empty rows, and failures on
        // the source side still resolve exactly.
        let g = WeightedGraph::from_edges(
            7,
            &[(0, 1, 2), (1, 2, 3), (2, 0, 9), (3, 4, 1), (4, 5, 1), (5, 6, 1), (6, 3, 1)],
        )
        .unwrap()
        .freeze();
        assert_matches_brute_force(&g, &[0, 3]);
        let out = solve_msrp_weighted(&g, &[0]);
        assert!(out.per_source[0].row(4).is_empty());
        assert_eq!(out.distance_avoiding(0, 2, Edge::new(1, 2)), Some(9));
    }

    #[test]
    fn unit_weights_match_hop_semantics() {
        let topo = grid_graph(4, 4);
        let g = WeightedGraph::from_graph(&topo, |_| 1).freeze();
        let out = solve_msrp_weighted(&g, &[0, 15]);
        // Losing the first edge of the canonical path from 0 to 3 costs a detour of 2,
        // mirroring the unweighted doctest in `msrp-core`.
        assert_eq!(out.distance_avoiding(0, 3, Edge::new(0, 1)), Some(5));
        assert_matches_brute_force(&g, &[0, 15]);
    }

    #[test]
    fn output_accessors() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = weighted_connected_gnm(12, 20, 9, &mut rng).unwrap().freeze();
        let out = solve_msrp_weighted(&g, &[3, 7]);
        assert_eq!(out.source_count(), 2);
        assert_eq!(out.source_index(7), Some(1));
        assert_eq!(out.source_index(8), None);
        assert_eq!(out.distance_avoiding(8, 0, Edge::new(0, 1)), None);
        assert!(out.entry_count() > 0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_sources_panic() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap().freeze();
        let _ = solve_msrp_weighted(&g, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_panic() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1)]).unwrap().freeze();
        let _ = solve_msrp_weighted(&g, &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1)]).unwrap().freeze();
        let _ = solve_msrp_weighted(&g, &[5]);
    }
}
