//! Section 8: computing the source→landmark replacement tables for *many* sources within the
//! `Õ(m·sqrt(nσ) + σn²)` budget (the paper's main contribution beyond Chechik–Cohen).
//!
//! The pipeline, per the paper:
//!
//! 1. sample **centers** `C_k` like landmarks; we additionally force all sources *and all
//!    landmarks* into `C_0` (see `DESIGN.md`) so that every source→landmark path starts and
//!    ends at a center, closing the boundary intervals of the path-cover decomposition;
//! 2. **Section 8.1** — replacement paths from every source to every center for edges within
//!    the center's window (auxiliary graph per source);
//! 3. **Section 8.2** — replacement paths from every center to every landmark for edges within
//!    the center's window (8.2.1 small paths through centers, 8.2.2 auxiliary graph per center);
//! 4. **Section 8.3** — interval decomposition of every source→landmark path, MTC values, the
//!    bottleneck edge of every interval, and one more auxiliary graph per source whose Dijkstra
//!    yields the replacement distances avoiding each bottleneck edge;
//! 5. assembly: `d(s, r, e) = min(small(s, r, e), MTC(s, r, e), d(s, r, B[s, r, i(e)]))`, plus
//!    an optional Algorithm-4-style refinement sweep (`MsrpParams::refinement_sweeps`) that
//!    relaxes the table through level-0 landmarks — this mops up the boundary configurations the
//!    paper's prose glosses over; every candidate is a valid path length, so the sweep can only
//!    improve entries.

mod center_to_landmark;
mod intervals;
mod source_to_center;

pub use center_to_landmark::{
    center_to_landmark_replacements, small_paths_through_centers, CenterLandmarkMap,
};
pub use intervals::{
    anchor_positions, decompose_path, interval_of_edge, mtc_value, Interval, MtcInputs,
};
pub use source_to_center::{source_to_center_replacements, SourceCenterMap};

use std::collections::HashMap;

use msrp_graph::{
    dist_add, CsrGraph, Distance, Edge, ShortestPathTree, Vertex, WeightedDigraph,
    INFINITE_DISTANCE, INFINITE_WEIGHT,
};

use crate::near_small::NearSmallResult;
use crate::params::MsrpParams;
use crate::preprocess::BfsIndex;
use crate::sampling::SampledLevels;
use crate::source_landmark::SourceLandmarkTable;
use crate::stats::AlgorithmStats;

/// Everything the path-cover construction needs from the earlier phases.
pub struct PathCoverInputs<'a> {
    /// The input graph (frozen CSR view).
    pub g: &'a CsrGraph,
    /// Algorithm parameters.
    pub params: &'a MsrpParams,
    /// Number of sources (σ).
    pub sigma: usize,
    /// The sources.
    pub sources: &'a [Vertex],
    /// Canonical BFS tree per source.
    pub source_trees: &'a [ShortestPathTree],
    /// The sampled landmark hierarchy.
    pub landmarks: &'a SampledLevels,
    /// BFS trees of the landmarks.
    pub landmark_index: &'a BfsIndex,
    /// Section 7.1 results, one per source.
    pub near_small: &'a [NearSmallResult],
}

/// Builds the source→landmark replacement table with the Section 8 machinery.
pub fn build_path_cover_table(
    inputs: &PathCoverInputs<'_>,
    stats: &mut AlgorithmStats,
) -> SourceLandmarkTable {
    let g = inputs.g;
    let params = inputs.params;
    let sigma = inputs.sigma;
    let n = g.vertex_count();

    // --- Centers (forced: sources ∪ landmarks). ---
    let mut forced: Vec<Vertex> = inputs.sources.to_vec();
    forced.extend_from_slice(inputs.landmarks.all());
    let centers = stats.time_phase("center sampling", || {
        SampledLevels::sample_seeded(n, sigma, params, params.seed ^ 0x9E37_79B9, &forced)
    });
    stats.center_count = centers.len();
    let center_index = stats.time_phase("center BFS", || BfsIndex::build(g, centers.all()));

    // --- Section 8.1: source → center. ---
    let source_center: Vec<SourceCenterMap> = stats.time_phase("source-to-center (8.1)", || {
        inputs
            .source_trees
            .iter()
            .zip(inputs.near_small.iter())
            .map(|(tree_s, near)| {
                source_to_center_replacements(
                    g,
                    tree_s,
                    &centers,
                    &center_index,
                    near,
                    params,
                    sigma,
                )
            })
            .collect()
    });

    // --- Section 8.2: center → landmark. ---
    let small_through = stats.time_phase("small paths through centers (8.2.1)", || {
        small_paths_through_centers(
            inputs.source_trees,
            inputs.near_small,
            inputs.landmark_index,
            &centers,
        )
    });
    let center_landmark = stats.time_phase("center-to-landmark (8.2.2)", || {
        center_to_landmark_replacements(
            g,
            &centers,
            &center_index,
            inputs.landmark_index,
            &small_through,
            params,
            sigma,
        )
    });

    // --- Section 8.3 + assembly, per source. ---
    let rows = stats.time_phase("intervals, bottlenecks, assembly (8.3)", || {
        inputs
            .source_trees
            .iter()
            .enumerate()
            .map(|(s_idx, tree_s)| {
                assemble_source_rows(
                    inputs,
                    tree_s,
                    &centers,
                    &center_index,
                    &source_center[s_idx],
                    &center_landmark,
                    &inputs.near_small[s_idx],
                )
            })
            .collect::<Vec<_>>()
    });

    let mut table_rows = rows;
    if params.refinement_sweeps > 0 {
        stats.time_phase("refinement sweeps", || {
            for (s_idx, tree_s) in inputs.source_trees.iter().enumerate() {
                refine_rows(inputs, tree_s, &mut table_rows[s_idx]);
            }
        });
    }
    SourceLandmarkTable::from_rows(table_rows)
}

/// Builds the `d(s, r, ·)` rows for one source: MTC values, bottleneck edges, the Section 8.3
/// auxiliary graph, and the final minimum.
#[allow(clippy::too_many_arguments)]
fn assemble_source_rows(
    inputs: &PathCoverInputs<'_>,
    tree_s: &ShortestPathTree,
    centers: &SampledLevels,
    center_index: &BfsIndex,
    source_center: &SourceCenterMap,
    center_landmark: &CenterLandmarkMap,
    near_small: &NearSmallResult,
) -> Vec<Vec<Distance>> {
    let landmark_index = inputs.landmark_index;
    let landmark_count = landmark_index.len();

    // Lookup closures shared by the MTC evaluation.
    let c2l_lookup = |c: Vertex, r: Vertex, e: Edge| -> Distance {
        let c_tree = match center_index.tree_of(c) {
            Some(t) => t,
            None => return INFINITE_DISTANCE,
        };
        if !c_tree.path_contains_edge(r, e) {
            c_tree.distance_or_infinite(r)
        } else {
            center_landmark.get(&(c, r, e)).copied().unwrap_or(INFINITE_DISTANCE)
        }
    };
    let s2c_lookup = |c: Vertex, edge_child: Vertex| -> Distance {
        source_center.get(&(c, edge_child)).copied().unwrap_or(INFINITE_DISTANCE)
    };

    // Per landmark: the canonical path, its anchors/intervals, and the MTC value per edge.
    let mut paths: Vec<Option<Vec<Vertex>>> = Vec::with_capacity(landmark_count);
    let mut anchors_per: Vec<Vec<usize>> = Vec::with_capacity(landmark_count);
    let mut intervals_per: Vec<Vec<Interval>> = Vec::with_capacity(landmark_count);
    let mut mtc_per: Vec<Vec<Distance>> = Vec::with_capacity(landmark_count);
    for r_idx in 0..landmark_count {
        let r = landmark_index.vertices()[r_idx];
        let path = if r == tree_s.source() { None } else { tree_s.path_from_source(r) };
        match path {
            Some(path) if path.len() >= 2 => {
                let anchors = anchor_positions(&path, centers);
                let intervals = decompose_path(&path, centers);
                let c2l = |c: Vertex, e: Edge| c2l_lookup(c, r, e);
                let mtc_inputs = MtcInputs {
                    path: &path,
                    anchors: &anchors,
                    center_to_landmark: &c2l,
                    source_to_center: &s2c_lookup,
                };
                let mtc: Vec<Distance> =
                    (0..path.len() - 1).map(|pos| mtc_value(&mtc_inputs, pos)).collect();
                paths.push(Some(path));
                anchors_per.push(anchors);
                intervals_per.push(intervals);
                mtc_per.push(mtc);
            }
            _ => {
                paths.push(None);
                anchors_per.push(Vec::new());
                intervals_per.push(Vec::new());
                mtc_per.push(Vec::new());
            }
        }
    }

    // Bottleneck edge per (landmark, interval): the edge position maximizing the MTC value.
    let mut bottleneck_pos: Vec<Vec<usize>> = Vec::with_capacity(landmark_count);
    for r_idx in 0..landmark_count {
        let mut per_interval = Vec::with_capacity(intervals_per[r_idx].len());
        for iv in &intervals_per[r_idx] {
            let mut best_pos = iv.start_pos;
            let mut best_val = 0u64;
            for (pos, &mtc) in mtc_per[r_idx].iter().enumerate().take(iv.end_pos).skip(iv.start_pos)
            {
                let v = mtc as u64;
                if v >= best_val {
                    best_val = v;
                    best_pos = pos;
                }
            }
            per_interval.push(best_pos);
        }
        bottleneck_pos.push(per_interval);
    }

    // --- Section 8.3 auxiliary graph. ---
    // Node 0 = [s]; nodes [r] per landmark; nodes [s, r, i] per (landmark, interval).
    let mut aux = WeightedDigraph::new(1);
    let mut landmark_node: Vec<Option<usize>> = vec![None; landmark_count];
    for (r_idx, node) in landmark_node.iter_mut().enumerate() {
        let r = landmark_index.vertices()[r_idx];
        if !tree_s.is_reachable(r) {
            continue;
        }
        let idx = aux.add_node();
        *node = Some(idx);
        aux.add_edge(0, idx, tree_s.distance_or_infinite(r) as u64);
    }
    let mut interval_node: HashMap<(usize, usize), usize> = HashMap::new();
    for (r_idx, ivs) in intervals_per.iter().enumerate() {
        for i in 0..ivs.len() {
            let idx = aux.add_node();
            interval_node.insert((r_idx, i), idx);
        }
    }
    // Helper: MTC(s, r', B) for an arbitrary landmark r' and an arbitrary edge B; falls back to
    // d(s, r') when B is not on the canonical s–r' path.
    let mtc_for = |r_idx: usize, e: Edge, edge_child: Vertex| -> Distance {
        match &paths[r_idx] {
            None => INFINITE_DISTANCE,
            Some(path) => {
                let r = landmark_index.vertices()[r_idx];
                match tree_s.edge_position_on_path(r, e) {
                    None => tree_s.distance_or_infinite(r),
                    Some(pos) => {
                        let _ = path;
                        let _ = edge_child;
                        mtc_per[r_idx][pos]
                    }
                }
            }
        }
    };
    for r_idx in 0..landmark_count {
        let r = landmark_index.vertices()[r_idx];
        for (i, iv) in intervals_per[r_idx].iter().enumerate() {
            let node = interval_node[&(r_idx, i)];
            let path = paths[r_idx].as_ref().expect("intervals exist only for real paths");
            let b_pos = bottleneck_pos[r_idx][i];
            let b_edge = Edge::new(path[b_pos], path[b_pos + 1]);
            let b_child = path[b_pos + 1];
            let _ = iv;
            // Small near-edge path avoiding the bottleneck, when Section 7.1 labelled it.
            if let Some(w) = near_small.distance(r, b_child) {
                aux.add_edge(0, node, w as u64);
            }
            // MTC of the bottleneck itself.
            let own_mtc = mtc_per[r_idx][b_pos];
            if own_mtc != INFINITE_DISTANCE {
                aux.add_edge(0, node, own_mtc as u64);
            }
            // Candidates through every other landmark r'.
            for rp_idx in 0..landmark_count {
                if rp_idx == r_idx {
                    continue;
                }
                let rp = landmark_index.vertices()[rp_idx];
                let rp_tree = landmark_index.tree(rp_idx);
                if rp_tree.path_contains_edge(r, b_edge) {
                    continue; // canonical r'–r path must avoid B
                }
                let rp_to_r = rp_tree.distance_or_infinite(r);
                if rp_to_r == INFINITE_DISTANCE {
                    continue;
                }
                // [s] -> [s, r, i] with weight MTC(s, r', B) + d(r', r).
                let through = dist_add(mtc_for(rp_idx, b_edge, b_child), rp_to_r);
                if through != INFINITE_DISTANCE {
                    aux.add_edge(0, node, through as u64);
                }
                // [s, r', j] -> [s, r, i] when B lies in interval j of the s–r' path.
                if let Some(b_pos_on_rp) = tree_s.edge_position_on_path(rp, b_edge) {
                    if let Some(j) = interval_of_edge(&intervals_per[rp_idx], b_pos_on_rp) {
                        let from = interval_node[&(rp_idx, j)];
                        aux.add_edge(from, node, rp_to_r as u64);
                    }
                }
            }
        }
    }
    let bottleneck_result = aux.dijkstra(0);
    let bottleneck_value = |r_idx: usize, interval: usize| -> Distance {
        match interval_node.get(&(r_idx, interval)) {
            None => INFINITE_DISTANCE,
            Some(&idx) => {
                let d = bottleneck_result.dist[idx];
                if d == INFINITE_WEIGHT {
                    INFINITE_DISTANCE
                } else {
                    d.min(Distance::MAX as u64 - 1) as Distance
                }
            }
        }
    };

    // --- Final assembly. ---
    let mut rows: Vec<Vec<Distance>> = Vec::with_capacity(landmark_count);
    for r_idx in 0..landmark_count {
        let r = landmark_index.vertices()[r_idx];
        let row = match &paths[r_idx] {
            None => Vec::new(),
            Some(path) => {
                let k = path.len() - 1;
                let mut row = vec![INFINITE_DISTANCE; k];
                for pos in 0..k {
                    let mut best = mtc_per[r_idx][pos];
                    if let Some(i) = interval_of_edge(&intervals_per[r_idx], pos) {
                        best = best.min(bottleneck_value(r_idx, i));
                    }
                    if let Some(w) = near_small.distance(r, path[pos + 1]) {
                        best = best.min(w);
                    }
                    row[pos] = best;
                }
                row
            }
        };
        rows.push(row);
    }
    rows
}

/// Algorithm-4-style refinement of one source's rows: relax every `(r, e)` entry through every
/// level-0 landmark `r'` whose canonical path to `r` avoids `e`. Entries only decrease and every
/// candidate is a valid path length.
fn refine_rows(
    inputs: &PathCoverInputs<'_>,
    tree_s: &ShortestPathTree,
    rows: &mut [Vec<Distance>],
) {
    let landmark_index = inputs.landmark_index;
    let level0 = inputs.landmarks.level(0);
    // Process landmarks in increasing order of distance from the source so that most
    // dependencies are already settled when they are read.
    let mut order: Vec<usize> = (0..landmark_index.len()).collect();
    order.sort_by_key(|&r_idx| tree_s.distance_or_infinite(landmark_index.vertices()[r_idx]));

    for _ in 0..inputs.params.refinement_sweeps {
        for &r_idx in &order {
            let r = landmark_index.vertices()[r_idx];
            if r == tree_s.source() || !tree_s.is_reachable(r) {
                continue;
            }
            let path = match tree_s.path_from_source(r) {
                Some(p) => p,
                None => continue,
            };
            for pos in 0..path.len() - 1 {
                let e = Edge::new(path[pos], path[pos + 1]);
                let mut best = rows[r_idx][pos];
                for &rp in level0 {
                    if rp == r {
                        continue;
                    }
                    let rp_idx = match landmark_index.index(rp) {
                        Some(i) => i,
                        None => continue,
                    };
                    let rp_tree = landmark_index.tree(rp_idx);
                    if rp_tree.path_contains_edge(r, e) {
                        continue;
                    }
                    let d_rp_r = rp_tree.distance_or_infinite(r);
                    let s_to_rp = match tree_s.edge_position_on_path(rp, e) {
                        Some(p) => rows[rp_idx].get(p).copied().unwrap_or(INFINITE_DISTANCE),
                        None => tree_s.distance_or_infinite(rp),
                    };
                    best = best.min(dist_add(s_to_rp, d_rp_r));
                }
                rows[r_idx][pos] = best;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::near_small::build_near_small;
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph};
    use msrp_graph::Graph;
    use msrp_rpath::replacement_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_inputs(
        g: &CsrGraph,
        sources: &[Vertex],
        params: &MsrpParams,
    ) -> (Vec<ShortestPathTree>, SampledLevels, BfsIndex, Vec<NearSmallResult>) {
        let sigma = sources.len();
        let trees: Vec<_> = sources.iter().map(|&s| ShortestPathTree::build_csr(g, s)).collect();
        let landmarks =
            SampledLevels::sample_seeded(g.vertex_count(), sigma, params, params.seed, sources);
        let landmark_index = BfsIndex::build(g, landmarks.all());
        let near: Vec<_> = trees.iter().map(|t| build_near_small(g, t, params, sigma)).collect();
        (trees, landmarks, landmark_index, near)
    }

    fn table_matches_truth(g: &Graph, sources: &[Vertex], params: &MsrpParams) {
        let csr = g.freeze();
        let (trees, landmarks, landmark_index, near) = build_inputs(&csr, sources, params);
        let inputs = PathCoverInputs {
            g: &csr,
            params,
            sigma: sources.len(),
            sources,
            source_trees: &trees,
            landmarks: &landmarks,
            landmark_index: &landmark_index,
            near_small: &near,
        };
        let mut stats = AlgorithmStats::default();
        let table = build_path_cover_table(&inputs, &mut stats);
        for (s_idx, &s) in sources.iter().enumerate() {
            for (r_idx, &r) in landmark_index.vertices().iter().enumerate() {
                let edges = trees[s_idx].path_edges(r);
                for (pos, e) in edges.iter().enumerate() {
                    let truth = replacement_distance(g, s, r, *e);
                    let got = table.row(s_idx, r_idx)[pos];
                    assert!(got >= truth, "under-estimate at s={s}, r={r}, e={e}");
                    assert_eq!(got, truth, "s={s}, r={r}, e={e}: got {got}, want {truth}");
                }
            }
        }
        assert!(stats.center_count >= landmarks.len());
    }

    #[test]
    fn path_cover_table_is_exact_on_cycles() {
        table_matches_truth(&cycle_graph(14), &[0, 7], &MsrpParams::default());
    }

    #[test]
    fn path_cover_table_is_exact_on_grids() {
        table_matches_truth(&grid_graph(4, 4), &[0, 15], &MsrpParams::default());
    }

    #[test]
    fn path_cover_table_is_exact_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [18usize, 26] {
            let g = connected_gnm(n, 2 * n, &mut rng).unwrap();
            table_matches_truth(&g, &[0, n / 3, 2 * n / 3], &MsrpParams::default());
        }
    }

    #[test]
    fn refinement_never_increases_entries() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = connected_gnm(24, 48, &mut rng).unwrap();
        let params = MsrpParams { refinement_sweeps: 0, ..MsrpParams::default() };
        let sources = [0usize, 12];
        let csr = g.freeze();
        let (trees, landmarks, landmark_index, near) = build_inputs(&csr, &sources, &params);
        let inputs = PathCoverInputs {
            g: &csr,
            params: &params,
            sigma: 2,
            sources: &sources,
            source_trees: &trees,
            landmarks: &landmarks,
            landmark_index: &landmark_index,
            near_small: &near,
        };
        let mut stats = AlgorithmStats::default();
        let without = build_path_cover_table(&inputs, &mut stats);
        let params2 = MsrpParams { refinement_sweeps: 2, ..params.clone() };
        let inputs2 = PathCoverInputs { params: &params2, ..inputs };
        let with = build_path_cover_table(&inputs2, &mut AlgorithmStats::default());
        for s_idx in 0..2 {
            for r_idx in 0..landmark_index.len() {
                for (a, b) in without.row(s_idx, r_idx).iter().zip(with.row(s_idx, r_idx)) {
                    assert!(b <= a, "refinement must only lower entries");
                }
            }
        }
    }
}
