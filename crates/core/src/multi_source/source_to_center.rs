//! Section 8.1: replacement paths from every source to every center, for edges close to the
//! center on the canonical center→source path.
//!
//! For a fixed source `s`, the auxiliary graph has a node `[c]` per center, and a node `[c, e]`
//! per center `c` of priority `k` and each of the first `ℓ·2^k·sqrt(n/σ)·log n` edges `e` on the
//! canonical `c→s` path (counted from `c`). Edges:
//!
//! * `[s] → [c]` with weight `d(s, c)`;
//! * `[s] → [c, e]` with the Section 7.1 small-path weight `w[c, e]` when it exists;
//! * `[c'] → [c, e]` with weight `d(c', c)` when `e` lies neither on the canonical `s–c'` path
//!   nor on the canonical `c'–c` path;
//! * `[c', e] → [c, e]` with weight `d(c', c)` when `e` does not lie on the canonical `c'–c`
//!   path (same physical edge `e` on both sides).
//!
//! Dijkstra from `[s]` labels every `[c, e]` with a valid `e`-avoiding `s→c` walk length; by
//! Lemma 20 it equals `|sc ⋄ e|` for every edge in the window, with high probability.

use std::collections::HashMap;

use msrp_graph::{
    CsrGraph, Distance, Edge, ShortestPathTree, Vertex, WeightedDigraph, INFINITE_WEIGHT,
};

use crate::near_small::NearSmallResult;
use crate::params::MsrpParams;
use crate::preprocess::BfsIndex;
use crate::sampling::SampledLevels;

/// Replacement distances from one source to every center, keyed by
/// `(center vertex, deeper endpoint of the avoided edge in the source tree)`.
pub type SourceCenterMap = HashMap<(Vertex, Vertex), Distance>;

/// Builds the Section 8.1 auxiliary graph for one source and extracts `d(s, c, e)`.
#[allow(clippy::too_many_arguments)]
pub fn source_to_center_replacements(
    g: &CsrGraph,
    tree_s: &ShortestPathTree,
    centers: &SampledLevels,
    center_index: &BfsIndex,
    near_small: &NearSmallResult,
    params: &MsrpParams,
    sigma: usize,
) -> SourceCenterMap {
    let n = g.vertex_count();
    let s = tree_s.source();

    // Node 0 = [s].
    let mut aux = WeightedDigraph::new(1);
    // [c] nodes.
    let mut center_node: HashMap<Vertex, usize> = HashMap::new();
    for &c in centers.all() {
        if !tree_s.is_reachable(c) {
            continue;
        }
        let idx = aux.add_node();
        center_node.insert(c, idx);
        aux.add_edge(0, idx, tree_s.distance_or_infinite(c) as u64);
    }
    // [c, e] nodes: e identified by its deeper endpoint (child) in T_s.
    // pair_node[(c, child)] = aux index; nodes_by_child[child] lists (center, idx) pairs.
    let mut pair_node: HashMap<(Vertex, Vertex), usize> = HashMap::new();
    let mut nodes_by_child: HashMap<Vertex, Vec<(Vertex, usize)>> = HashMap::new();
    for &c in centers.all() {
        if c == s || !tree_s.is_reachable(c) {
            continue;
        }
        let priority = centers.priority(c).unwrap_or(0);
        let window = params.window_size(priority, n, sigma);
        let depth = tree_s.distance_or_infinite(c) as usize;
        let mut child = c;
        for _ in 0..window.min(depth) {
            let idx = aux.add_node();
            pair_node.insert((c, child), idx);
            nodes_by_child.entry(child).or_default().push((c, idx));
            // [s] -> [c, e] via the small near-edge path, when Section 7.1 found one.
            if let Some(w) = near_small.distance(c, child) {
                aux.add_edge(0, idx, w as u64);
            }
            child = match tree_s.parent(child) {
                Some(p) => p,
                None => break,
            };
        }
    }
    // Incoming edges from other centers.
    for (&(c, child), &idx) in &pair_node {
        let parent = tree_s.parent(child).expect("window edges are tree edges");
        let e = Edge::new(parent, child);
        for &c_prime in centers.all() {
            if c_prime == c || !tree_s.is_reachable(c_prime) {
                continue;
            }
            let cp_idx = center_index.index(c_prime).expect("center has a BFS tree");
            let cp_tree = center_index.tree(cp_idx);
            if cp_tree.path_contains_edge(c, e) {
                continue; // the canonical c'–c path must avoid e
            }
            let weight = cp_tree.distance_or_infinite(c) as u64;
            // [c'] -> [c, e] additionally requires the canonical s–c' path to avoid e.
            if !tree_s.is_ancestor(child, c_prime) {
                aux.add_edge(center_node[&c_prime], idx, weight);
            }
            // [c', e] -> [c, e] when the same physical edge is within c''s window.
            if let Some(&cp_pair) = pair_node.get(&(c_prime, child)) {
                aux.add_edge(cp_pair, idx, weight);
            }
        }
    }

    let result = aux.dijkstra(0);
    let mut out = HashMap::with_capacity(pair_node.len());
    for (&key, &idx) in &pair_node {
        let d = result.dist[idx];
        if d != INFINITE_WEIGHT {
            out.insert(key, d.min(Distance::MAX as u64 - 1) as Distance);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::near_small::build_near_small;
    use msrp_graph::generators::{connected_gnm, cycle_graph};
    use msrp_graph::Graph;
    use msrp_rpath::replacement_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(
        g: &Graph,
        s: Vertex,
        params: &MsrpParams,
        sigma: usize,
    ) -> (ShortestPathTree, SourceCenterMap) {
        let csr = g.freeze();
        let tree = ShortestPathTree::build(g, s);
        let centers =
            SampledLevels::sample_seeded(g.vertex_count(), sigma, params, params.seed ^ 1, &[s]);
        let center_index = BfsIndex::build(&csr, centers.all());
        let near_small = build_near_small(&csr, &tree, params, sigma);
        let map = source_to_center_replacements(
            &csr,
            &tree,
            &centers,
            &center_index,
            &near_small,
            params,
            sigma,
        );
        (tree, map)
    }

    #[test]
    fn window_entries_match_brute_force_on_small_graphs() {
        // With paper constants on small graphs every vertex is a center and the window covers
        // every edge, so the map must be exactly the replacement distances to all vertices.
        let mut rng = StdRng::seed_from_u64(3);
        for n in [16usize, 24] {
            let g = connected_gnm(n, 2 * n, &mut rng).unwrap();
            let (tree, map) = run(&g, 0, &MsrpParams::default(), 1);
            assert!(!map.is_empty());
            for (&(c, child), &d) in &map {
                let parent = tree.parent(child).unwrap();
                let truth = replacement_distance(&g, 0, c, Edge::new(parent, child));
                assert_eq!(d, truth, "center {c}, child {child}");
            }
        }
    }

    #[test]
    fn entries_never_under_estimate_with_sparse_centers() {
        let g = cycle_graph(40);
        let params = MsrpParams { sampling_constant: 0.4, log_scale: 0.3, ..MsrpParams::default() };
        let (tree, map) = run(&g, 0, &params, 2);
        for (&(c, child), &d) in &map {
            let parent = tree.parent(child).unwrap();
            let truth = replacement_distance(&g, 0, c, Edge::new(parent, child));
            assert!(d >= truth, "({c}, {child}): {d} < {truth}");
        }
    }

    #[test]
    fn unreachable_centers_are_skipped() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (_, map) = run(&g, 0, &MsrpParams::default(), 1);
        assert!(map.keys().all(|&(c, _)| c <= 2));
    }
}
