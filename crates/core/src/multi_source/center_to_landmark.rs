//! Section 8.2: replacement paths from every center to every landmark, for edges close to the
//! center on the canonical center→landmark path.
//!
//! Two pieces:
//!
//! * **8.2.1** — enumerate the *small* near-edge replacement paths found by Section 7.1 for
//!   landmark targets, and record, for every center lying on such a path, the length of the
//!   path's suffix from that center (a valid `e`-avoiding center→landmark path).
//! * **8.2.2** — per center `c`, an auxiliary graph over landmark nodes `[r]` and pair nodes
//!   `[r, e]` (for `e` among the first `window` edges of the canonical `c→r` path), with edges
//!   mirroring Section 8.1; Dijkstra from `[c]` labels `[r, e]` with `d(c, r, e)`.

use std::collections::HashMap;

use msrp_graph::{
    CsrGraph, Distance, Edge, ShortestPathTree, Vertex, WeightedDigraph, INFINITE_DISTANCE,
    INFINITE_WEIGHT,
};

use crate::near_small::NearSmallResult;
use crate::params::MsrpParams;
use crate::preprocess::BfsIndex;
use crate::sampling::SampledLevels;

/// `d(c, r, e)` entries keyed by `(center vertex, landmark vertex, avoided edge)`.
pub type CenterLandmarkMap = HashMap<(Vertex, Vertex, Edge), Distance>;

/// Section 8.2.1: lengths of center→landmark suffixes of the small near-edge replacement paths,
/// keyed like [`CenterLandmarkMap`].
pub fn small_paths_through_centers(
    source_trees: &[ShortestPathTree],
    near_small: &[NearSmallResult],
    landmark_index: &BfsIndex,
    centers: &SampledLevels,
) -> CenterLandmarkMap {
    let mut out: CenterLandmarkMap = HashMap::new();
    for (tree_s, near) in source_trees.iter().zip(near_small.iter()) {
        for &r in landmark_index.vertices() {
            if !tree_s.is_reachable(r) || r == tree_s.source() {
                continue;
            }
            // Near edges on the canonical s–r path that have a small-path label.
            for (pos, e) in tree_s.path_edges(r).iter().enumerate() {
                let child =
                    tree_s.deeper_endpoint(*e).expect("canonical path edges are tree edges");
                debug_assert_eq!(pos, tree_s.distance_or_infinite(child) as usize - 1);
                let Some(path) = near.small_path(tree_s, r, child) else { continue };
                let total = path.len() - 1;
                for (offset, &x) in path.iter().enumerate() {
                    if !centers.contains(x) {
                        continue;
                    }
                    let suffix = (total - offset) as Distance;
                    out.entry((x, r, *e)).and_modify(|d| *d = (*d).min(suffix)).or_insert(suffix);
                }
            }
        }
    }
    out
}

/// Section 8.2.2: for every center, the replacement distances to every landmark for edges within
/// the center's window on the canonical center→landmark path.
#[allow(clippy::too_many_arguments)]
pub fn center_to_landmark_replacements(
    g: &CsrGraph,
    centers: &SampledLevels,
    center_index: &BfsIndex,
    landmark_index: &BfsIndex,
    small_through: &CenterLandmarkMap,
    params: &MsrpParams,
    sigma: usize,
) -> CenterLandmarkMap {
    let n = g.vertex_count();
    let mut out: CenterLandmarkMap = HashMap::new();

    for (c_idx, &c) in center_index.vertices().iter().enumerate() {
        let c_tree = center_index.tree(c_idx);
        let priority = centers.priority(c).unwrap_or(0);
        let window = params.window_size(priority, n, sigma);

        let mut aux = WeightedDigraph::new(1); // node 0 = [c]
        let mut landmark_node: HashMap<Vertex, usize> = HashMap::new();
        for &r in landmark_index.vertices() {
            if !c_tree.is_reachable(r) {
                continue;
            }
            let idx = aux.add_node();
            landmark_node.insert(r, idx);
            aux.add_edge(0, idx, c_tree.distance_or_infinite(r) as u64);
        }
        // Pair nodes [r, e]: e among the first `window` edges of the canonical c→r path.
        let mut pair_node: HashMap<(Vertex, Edge), usize> = HashMap::new();
        for &r in landmark_index.vertices() {
            if r == c || !c_tree.is_reachable(r) {
                continue;
            }
            let path = c_tree.path_from_source(r).expect("reachable");
            for pos in 0..window.min(path.len() - 1) {
                let e = Edge::new(path[pos], path[pos + 1]);
                let idx = aux.add_node();
                pair_node.insert((r, e), idx);
                if let Some(&w) = small_through.get(&(c, r, e)) {
                    aux.add_edge(0, idx, w as u64);
                }
            }
        }
        // Incoming edges from other landmarks.
        for (&(r, e), &idx) in &pair_node {
            for &r_prime in landmark_index.vertices() {
                if r_prime == r {
                    continue;
                }
                let rp_idx = landmark_index.index(r_prime).expect("indexed");
                let rp_tree = landmark_index.tree(rp_idx);
                if rp_tree.path_contains_edge(r, e) {
                    continue; // canonical r'–r path must avoid e
                }
                let weight = rp_tree.distance_or_infinite(r) as u64;
                if weight == INFINITE_DISTANCE as u64 {
                    continue;
                }
                // [r'] -> [r, e] also needs the canonical c–r' path to avoid e.
                if let Some(&rp_node) = landmark_node.get(&r_prime) {
                    if !c_tree.path_contains_edge(r_prime, e) {
                        aux.add_edge(rp_node, idx, weight);
                    }
                }
                // [r', e] -> [r, e].
                if let Some(&rp_pair) = pair_node.get(&(r_prime, e)) {
                    aux.add_edge(rp_pair, idx, weight);
                }
            }
        }

        let result = aux.dijkstra(0);
        for (&(r, e), &idx) in &pair_node {
            let d = result.dist[idx];
            if d != INFINITE_WEIGHT {
                out.insert((c, r, e), d.min(Distance::MAX as u64 - 1) as Distance);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::near_small::build_near_small;
    use msrp_graph::generators::connected_gnm;
    use msrp_graph::Graph;
    use msrp_rpath::replacement_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        g: Graph,
        csr: CsrGraph,
        centers: SampledLevels,
        center_index: BfsIndex,
        landmark_index: BfsIndex,
        small_through: CenterLandmarkMap,
    }

    fn fixture(n: usize, seed: u64, params: &MsrpParams) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = connected_gnm(n, 2 * n, &mut rng).unwrap();
        let csr = g.freeze();
        let sources = vec![0usize, n / 2];
        let sigma = sources.len();
        let landmarks = SampledLevels::sample_seeded(n, sigma, params, params.seed, &sources);
        let landmark_index = BfsIndex::build(&csr, landmarks.all());
        let mut forced: Vec<Vertex> = sources.clone();
        forced.extend_from_slice(landmarks.all());
        let centers = SampledLevels::sample_seeded(n, sigma, params, params.seed ^ 1, &forced);
        let center_index = BfsIndex::build(&csr, centers.all());
        let source_trees: Vec<_> =
            sources.iter().map(|&s| ShortestPathTree::build(&g, s)).collect();
        let near_small: Vec<_> =
            source_trees.iter().map(|t| build_near_small(&csr, t, params, sigma)).collect();
        let small_through =
            small_paths_through_centers(&source_trees, &near_small, &landmark_index, &centers);
        Fixture { g, csr, centers, center_index, landmark_index, small_through }
    }

    #[test]
    fn small_suffixes_are_valid_center_to_landmark_paths() {
        let params = MsrpParams::default();
        let f = fixture(20, 11, &params);
        assert!(!f.small_through.is_empty());
        for (&(c, r, e), &d) in &f.small_through {
            let truth = replacement_distance(&f.g, c, r, e);
            assert!(d >= truth, "suffix from {c} to {r} avoiding {e}: {d} < {truth}");
        }
    }

    #[test]
    fn window_entries_are_valid_and_source_rows_exist() {
        // Exactness of individual entries is only required (and only guaranteed by the paper)
        // for triples that some source's replacement path actually uses; the end-to-end MSRP
        // tests check that. Here we check validity of every entry and that the map is populated.
        let params = MsrpParams::default();
        let f = fixture(18, 4, &params);
        let map = center_to_landmark_replacements(
            &f.csr,
            &f.centers,
            &f.center_index,
            &f.landmark_index,
            &f.small_through,
            &params,
            2,
        );
        assert!(!map.is_empty());
        for (&(c, r, e), &d) in &map {
            let truth = replacement_distance(&f.g, c, r, e);
            assert!(d >= truth, "center {c}, landmark {r}, edge {e}: {d} < {truth}");
        }
    }

    #[test]
    fn entries_never_under_estimate_with_scaled_constants() {
        let params = MsrpParams::scaled_for_benchmarks();
        let f = fixture(30, 9, &params);
        let map = center_to_landmark_replacements(
            &f.csr,
            &f.centers,
            &f.center_index,
            &f.landmark_index,
            &f.small_through,
            &params,
            2,
        );
        for (&(c, r, e), &d) in &map {
            let truth = replacement_distance(&f.g, c, r, e);
            assert!(d >= truth);
        }
    }
}
