//! Interval decomposition of source→landmark paths (Definition 15 and Lemma 18) and the
//! "minimum through centers" (MTC) terms of the path cover lemma (Definition 17).
//!
//! The anchors of a path are the positions of the centers on it, selected by an ascending sweep
//! from the source side and a descending sweep from the landmark side (Definition 15); both the
//! source and the landmark are themselves centers in our construction (sources and landmarks are
//! forced into `C_0`, see `DESIGN.md`), so every path starts and ends with an anchor. The
//! intervals are the stretches between consecutive anchors; Lemma 18 bounds their length by the
//! priority of the lower endpoint.

use msrp_graph::{dist_add, Distance, Edge, Vertex, INFINITE_DISTANCE};

use crate::sampling::SampledLevels;

/// An interval of a source→landmark path: the half-open range of *edge positions*
/// `[start_pos, end_pos)` between two consecutive anchors at path positions `start_pos` and
/// `end_pos`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Path position of the left anchor (a center).
    pub start_pos: usize,
    /// Path position of the right anchor (a center, possibly the landmark itself).
    pub end_pos: usize,
}

impl Interval {
    /// `true` when the edge at position `pos` (spanning path positions `pos` and `pos + 1`)
    /// belongs to this interval.
    pub fn contains_edge(&self, pos: usize) -> bool {
        pos >= self.start_pos && pos < self.end_pos
    }

    /// Number of edges in the interval.
    pub fn edge_count(&self) -> usize {
        self.end_pos - self.start_pos
    }
}

/// Positions of the anchors (centers selected per Definition 15) on `path`, always including
/// position 0 and the last position.
pub fn anchor_positions(path: &[Vertex], centers: &SampledLevels) -> Vec<usize> {
    let last = path.len() - 1;
    let mut anchors = vec![0, last];
    // Ascending-priority sweep from the source side.
    let mut current = centers.priority(path[0]).unwrap_or(0);
    for (pos, &v) in path.iter().enumerate().skip(1) {
        if let Some(p) = centers.priority(v) {
            if p > current {
                anchors.push(pos);
                current = p;
            }
        }
    }
    // Ascending-priority sweep from the landmark side.
    let mut current = centers.priority(path[last]).unwrap_or(0);
    for pos in (1..last).rev() {
        if let Some(p) = centers.priority(path[pos]) {
            if p > current {
                anchors.push(pos);
                current = p;
            }
        }
    }
    anchors.sort_unstable();
    anchors.dedup();
    anchors
}

/// Splits `path` into intervals between consecutive anchors.
pub fn decompose_path(path: &[Vertex], centers: &SampledLevels) -> Vec<Interval> {
    if path.len() < 2 {
        return Vec::new();
    }
    let anchors = anchor_positions(path, centers);
    anchors.windows(2).map(|w| Interval { start_pos: w[0], end_pos: w[1] }).collect()
}

/// Index of the interval containing the edge at position `pos`, assuming `intervals` partition
/// the path.
pub fn interval_of_edge(intervals: &[Interval], pos: usize) -> Option<usize> {
    intervals.iter().position(|iv| iv.contains_edge(pos))
}

/// Everything needed to evaluate MTC terms for one source→landmark path.
pub struct MtcInputs<'a> {
    /// The canonical path from the source to the landmark.
    pub path: &'a [Vertex],
    /// Anchor positions on that path (from [`anchor_positions`]).
    pub anchors: &'a [usize],
    /// `d(c, r, e)` lookup for a center `c` (by vertex), the path's landmark, and an edge; must
    /// return `INFINITE_DISTANCE` when unknown and the ordinary `d(c, r)` when `e` is known to
    /// be off the canonical `c–r` path.
    pub center_to_landmark: &'a dyn Fn(Vertex, Edge) -> Distance,
    /// `d(s, c, e)` lookup for the path's source, a center `c` (by vertex), and an edge
    /// identified by its deeper endpoint in the source tree; `INFINITE_DISTANCE` when unknown.
    pub source_to_center: &'a dyn Fn(Vertex, Vertex) -> Distance,
}

/// Evaluates the MTC value (Definition 17) for the edge at position `pos`, taking the best
/// candidate over *all* anchors before and after the edge (a superset of the paper's two
/// adjacent anchors; every candidate is individually valid, see the module docs of
/// `multi_source`).
pub fn mtc_value(inputs: &MtcInputs<'_>, pos: usize) -> Distance {
    let path = inputs.path;
    let k = path.len() - 1;
    let edge_child = path[pos + 1];
    let e = Edge::new(path[pos], path[pos + 1]);
    let mut best = INFINITE_DISTANCE;
    for &a in inputs.anchors {
        if a <= pos {
            // Anchor before the edge: d(s, c) along the path prefix (which avoids e) plus the
            // replacement from the center to the landmark.
            let c = path[a];
            let term = dist_add(a as Distance, (inputs.center_to_landmark)(c, e));
            best = best.min(term);
        } else {
            // Anchor after the edge: replacement from the source to the center plus the path
            // suffix from the center to the landmark (which avoids e).
            let c = path[a];
            let term = dist_add((inputs.source_to_center)(c, edge_child), (k - a) as Distance);
            best = best.min(term);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MsrpParams;

    fn centers_with_everyone(n: usize) -> SampledLevels {
        // Paper constants on a small n put every vertex in level 0.
        SampledLevels::sample_seeded(n, 1, &MsrpParams::default(), 3, &[])
    }

    #[test]
    fn anchors_always_include_both_ends() {
        let centers = centers_with_everyone(20);
        let path: Vec<usize> = (0..12).collect();
        let anchors = anchor_positions(&path, &centers);
        assert_eq!(*anchors.first().unwrap(), 0);
        assert_eq!(*anchors.last().unwrap(), 11);
        let intervals = decompose_path(&path, &centers);
        assert!(!intervals.is_empty());
        let covered: usize = intervals.iter().map(|iv| iv.edge_count()).sum();
        assert_eq!(covered, 11, "intervals partition the path's edges");
    }

    #[test]
    fn interval_lookup_finds_each_edge_once() {
        let centers = centers_with_everyone(30);
        let path: Vec<usize> = (0..9).collect();
        let intervals = decompose_path(&path, &centers);
        for pos in 0..8 {
            let idx = interval_of_edge(&intervals, pos).expect("edge covered");
            assert!(intervals[idx].contains_edge(pos));
        }
        assert_eq!(interval_of_edge(&intervals, 8), None);
    }

    #[test]
    fn trivial_paths_have_no_intervals() {
        let centers = centers_with_everyone(5);
        assert!(decompose_path(&[3], &centers).is_empty());
        assert!(decompose_path(&[], &centers).is_empty());
    }

    #[test]
    fn mtc_takes_the_best_side() {
        // Path 0-1-2-3-4; anchors at 0, 2, 4; edge at position 1 (between vertices 1 and 2).
        let path = vec![0usize, 1, 2, 3, 4];
        let anchors = vec![0usize, 2, 4];
        // Left-anchor candidate: d(s, c=0)=0 + d(0, r, e)=7 => 7. For the anchor at 2 (after
        // the edge): d(s, 2, e)=3 + suffix 2 => 5. Anchor at 4: d(s, 4, e)=9 + 0 => 9.
        let c2l = |c: Vertex, _e: Edge| if c == 0 { 7 } else { INFINITE_DISTANCE };
        let s2c = |c: Vertex, _child: Vertex| match c {
            2 => 3,
            4 => 9,
            _ => INFINITE_DISTANCE,
        };
        let inputs = MtcInputs {
            path: &path,
            anchors: &anchors,
            center_to_landmark: &c2l,
            source_to_center: &s2c,
        };
        assert_eq!(mtc_value(&inputs, 1), 5);
        // Edge at position 3: anchors before it are 0 and 2; the best is min(0+7, 2+INF, 9+0)...
        // anchor 4 is after? position 3 edge spans (3,4); anchor 4 > 3 so it counts as "after".
        assert_eq!(mtc_value(&inputs, 3), 7);
    }

    #[test]
    fn mtc_of_unknown_everything_is_infinite() {
        let path = vec![0usize, 1, 2];
        let anchors = vec![0usize, 2];
        let c2l = |_c: Vertex, _e: Edge| INFINITE_DISTANCE;
        let s2c = |_c: Vertex, _child: Vertex| INFINITE_DISTANCE;
        let inputs = MtcInputs {
            path: &path,
            anchors: &anchors,
            center_to_landmark: &c2l,
            source_to_center: &s2c,
        };
        assert_eq!(mtc_value(&inputs, 0), INFINITE_DISTANCE);
    }
}
