//! Landmark and center sampling (Definition 3 and Section 8 of the paper).
//!
//! Both landmarks (`L_k`) and centers (`C_k`) are sampled the same way: level `k` contains each
//! vertex independently with probability `min(1, c/2^k · sqrt(σ/n))`, for `k = 0 … ⌊log₂√(nσ)⌋`.
//! A vertex may belong to several levels; its *priority* is the largest such level. The paper
//! additionally forces all sources into `L` and into `C_0`; our implementation also forces all
//! landmarks into `C_0` (see `DESIGN.md`, "Substitutions"), which closes the boundary case of
//! the path-cover decomposition at the landmark end of the path without changing the asymptotic
//! size of `C`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_graph::Vertex;

use crate::params::MsrpParams;

/// A levelled sample of vertices (used for both landmarks and centers).
#[derive(Clone, Debug)]
pub struct SampledLevels {
    levels: Vec<Vec<Vertex>>,
    priority_of: Vec<Option<usize>>,
    all: Vec<Vertex>,
}

impl SampledLevels {
    /// Samples levels `0..=max_level` over `n` vertices. Vertices in `forced` are added to
    /// level 0 regardless of the coin flips.
    pub fn sample(
        n: usize,
        sigma: usize,
        params: &MsrpParams,
        rng: &mut StdRng,
        forced: &[Vertex],
    ) -> Self {
        let max_level = params.max_level(n, sigma);
        let mut membership: Vec<Vec<bool>> = vec![vec![false; n]; max_level + 1];
        for (k, level) in membership.iter_mut().enumerate() {
            let p = params.sampling_probability(k, n, sigma);
            for slot in level.iter_mut() {
                if rng.gen_bool(p) {
                    *slot = true;
                }
            }
        }
        for &v in forced {
            assert!(v < n, "forced vertex {v} out of range");
            membership[0][v] = true;
        }
        let mut levels: Vec<Vec<Vertex>> = Vec::with_capacity(max_level + 1);
        let mut priority_of: Vec<Option<usize>> = vec![None; n];
        for (k, level) in membership.iter().enumerate() {
            let mut vs = Vec::new();
            for (v, &is_in) in level.iter().enumerate() {
                if is_in {
                    vs.push(v);
                    priority_of[v] = Some(k);
                }
            }
            levels.push(vs);
        }
        let mut all: Vec<Vertex> =
            priority_of.iter().enumerate().filter(|(_, p)| p.is_some()).map(|(v, _)| v).collect();
        all.sort_unstable();
        SampledLevels { levels, priority_of, all }
    }

    /// Builds a deterministic sample from the given seed (wrapper used by the solvers).
    pub fn sample_seeded(
        n: usize,
        sigma: usize,
        params: &MsrpParams,
        seed: u64,
        forced: &[Vertex],
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::sample(n, sigma, params, &mut rng, forced)
    }

    /// The vertices of level `k` (empty slice if `k` is beyond the sampled levels).
    pub fn level(&self, k: usize) -> &[Vertex] {
        self.levels.get(k).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of levels sampled (`max_level + 1`).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// All sampled vertices (union of all levels), sorted.
    pub fn all(&self) -> &[Vertex] {
        &self.all
    }

    /// Total number of distinct sampled vertices.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// `true` when no vertex was sampled.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// The priority (largest level) of `v`, or `None` when `v` was not sampled.
    pub fn priority(&self, v: Vertex) -> Option<usize> {
        self.priority_of.get(v).copied().flatten()
    }

    /// `true` when `v` belongs to some level.
    pub fn contains(&self, v: Vertex) -> bool {
        self.priority(v).is_some()
    }

    /// Sizes of the individual levels (for statistics).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MsrpParams {
        MsrpParams::default()
    }

    #[test]
    fn forced_vertices_are_always_present() {
        let s = SampledLevels::sample_seeded(100, 1, &params(), 1, &[13, 57]);
        assert!(s.contains(13));
        assert!(s.contains(57));
        assert!(s.level(0).contains(&13));
        assert!(s.level(0).contains(&57));
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let a = SampledLevels::sample_seeded(200, 2, &params(), 99, &[0]);
        let b = SampledLevels::sample_seeded(200, 2, &params(), 99, &[0]);
        assert_eq!(a.all(), b.all());
        for k in 0..a.level_count() {
            assert_eq!(a.level(k), b.level(k));
        }
        let c = SampledLevels::sample_seeded(200, 2, &params(), 100, &[0]);
        // Different seed almost surely gives a different sample on 200 vertices.
        assert_ne!(a.all(), c.all());
    }

    #[test]
    fn priority_is_the_largest_level() {
        let s = SampledLevels::sample_seeded(500, 4, &params(), 7, &[]);
        for v in s.all() {
            let p = s.priority(*v).unwrap();
            assert!(s.level(p).contains(v));
            for k in (p + 1)..s.level_count() {
                assert!(!s.level(k).contains(v));
            }
        }
    }

    #[test]
    fn small_graphs_saturate_level_zero() {
        // With the paper constants and n small, the level-0 probability is 1.
        let s = SampledLevels::sample_seeded(30, 2, &params(), 3, &[]);
        assert_eq!(s.level(0).len(), 30);
        assert_eq!(s.len(), 30);
        assert!(!s.is_empty());
    }

    #[test]
    fn level_sizes_roughly_match_expectation() {
        let n = 5000;
        let sigma = 1;
        let p = params();
        let s = SampledLevels::sample_seeded(n, sigma, &p, 11, &[]);
        let expected0 = p.sampling_probability(0, n, sigma) * n as f64;
        let actual0 = s.level(0).len() as f64;
        assert!(
            (actual0 - expected0).abs() < 6.0 * expected0.sqrt() + 10.0,
            "level 0 size {actual0} far from expectation {expected0}"
        );
        assert_eq!(s.level_sizes().len(), s.level_count());
        // Higher levels are sparser in expectation; check the extremes.
        assert!(s.level(s.level_count() - 1).len() <= s.level(0).len());
    }

    #[test]
    fn out_of_range_queries_are_safe() {
        let s = SampledLevels::sample_seeded(10, 1, &params(), 1, &[]);
        assert!(s.level(999).is_empty());
        assert_eq!(s.priority(999), None);
        assert!(!s.contains(999));
    }
}
