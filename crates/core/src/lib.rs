//! The paper's algorithms: Single Source Replacement Paths (SSRP, Theorem 14) and Multiple
//! Source Replacement Paths (MSRP, Theorems 1 and 26) for undirected, unweighted graphs.
//!
//! Reproduction of Gupta, Jain, Modi, *Multiple Source Replacement Path Problem*
//! (PODC 2020 / arXiv:2005.09262). Given a graph `G`, a set of sources `S` (`|S| = σ`) and, for
//! every source `s` and target `t`, the canonical shortest `s–t` path, the solvers report the
//! length of the shortest `s–t` path avoiding each edge of that path, in
//! `Õ(m·sqrt(nσ) + σn²)` expected time.
//!
//! # Crate layout
//!
//! | module | paper section | content |
//! |---|---|---|
//! | [`params`] | Definitions 3, 5, constants | sampling probabilities, near/far thresholds |
//! | [`sampling`] | Definition 3, Section 8 | landmark and center hierarchies |
//! | [`preprocess`] | Section 5 | BFS trees from landmarks / centers |
//! | [`source_landmark`] | Sections 3, 8 | the `d(s, r, e)` tables |
//! | [`near_small`] | Section 7.1 | auxiliary graph for small near-edge replacement paths |
//! | [`near_large`] | Section 7.2 | Algorithm 4 |
//! | [`far`] | Section 6 | Algorithm 3 |
//! | [`multi_source`] | Section 8 | centers, intervals, MTC, bottleneck edges |
//! | [`ssrp`] / [`msrp`] | Theorems 14, 26 | the end-to-end solvers |
//! | [`verify`] | — | comparison against the brute-force ground truth |
//!
//! # Example
//!
//! ```
//! use msrp_core::{solve_msrp, MsrpParams};
//! use msrp_graph::generators::grid_graph;
//! use msrp_graph::Edge;
//!
//! let g = grid_graph(4, 4);
//! let out = solve_msrp(&g, &[0, 15], &MsrpParams::default());
//! // Losing the first edge of the canonical path from 0 to 3 costs a detour of 2.
//! let d = out.distance_avoiding(0, 3, Edge::new(0, 1)).unwrap();
//! assert_eq!(d, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod far;
pub mod msrp;
pub mod multi_source;
pub mod near_large;
pub mod near_small;
pub mod output;
pub mod params;
pub mod preprocess;
pub mod sampling;
pub mod source_landmark;
pub mod ssrp;
pub mod stats;
pub mod verify;
pub mod weighted;

pub use msrp::{solve_msrp, solve_msrp_csr};
pub use output::{MsrpOutput, SsrpOutput};
pub use params::{MsrpParams, SourceToLandmarkStrategy};
pub use sampling::SampledLevels;
pub use source_landmark::SourceLandmarkTable;
pub use ssrp::{solve_ssrp, solve_ssrp_csr};
pub use stats::AlgorithmStats;
pub use weighted::{solve_msrp_weighted, WeightedMsrpOutput};
