//! Preprocessing shared by every phase: BFS trees from a set of special vertices
//! (landmarks or centers) with an index for constant-time lookups.

use std::collections::HashMap;

use msrp_graph::{BfsScratch, CsrGraph, Distance, ShortestPathTree, Vertex, INFINITE_DISTANCE};

/// BFS trees rooted at a list of special vertices (landmarks in Section 5, centers in
/// Section 8), plus a vertex → index map.
#[derive(Clone, Debug)]
pub struct BfsIndex {
    vertices: Vec<Vertex>,
    index_of: HashMap<Vertex, usize>,
    trees: Vec<ShortestPathTree>,
}

impl BfsIndex {
    /// Runs BFS from every vertex in `vertices` (`O(|vertices|·(m + n))` total) over the CSR
    /// view, sharing one set of scratch buffers across all the searches.
    pub fn build(g: &CsrGraph, vertices: &[Vertex]) -> Self {
        let mut scratch = BfsScratch::new();
        let mut index_of = HashMap::with_capacity(vertices.len());
        let mut trees = Vec::with_capacity(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            index_of.insert(v, i);
            trees.push(ShortestPathTree::build_with_scratch(g, v, &mut scratch));
        }
        BfsIndex { vertices: vertices.to_vec(), index_of, trees }
    }

    /// The special vertices, in index order.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// Number of special vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The index of `v` among the special vertices, if it is one.
    pub fn index(&self, v: Vertex) -> Option<usize> {
        self.index_of.get(&v).copied()
    }

    /// The BFS tree rooted at the `i`-th special vertex.
    pub fn tree(&self, i: usize) -> &ShortestPathTree {
        &self.trees[i]
    }

    /// The BFS tree rooted at `v`, if `v` is a special vertex.
    pub fn tree_of(&self, v: Vertex) -> Option<&ShortestPathTree> {
        self.index(v).map(|i| &self.trees[i])
    }

    /// Distance from the `i`-th special vertex to `t` (`INFINITE_DISTANCE` if unreachable).
    pub fn distance(&self, i: usize, t: Vertex) -> Distance {
        self.trees[i].distance_or_infinite(t)
    }

    /// Distance between a special vertex `v` and `t`, if `v` is special and `t` reachable.
    pub fn distance_between(&self, v: Vertex, t: Vertex) -> Distance {
        match self.index(v) {
            Some(i) => self.distance(i, t),
            None => INFINITE_DISTANCE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::cycle_graph;

    #[test]
    fn builds_one_tree_per_vertex() {
        let g = cycle_graph(10).freeze();
        let idx = BfsIndex::build(&g, &[0, 3, 7]);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        assert_eq!(idx.vertices(), &[0, 3, 7]);
        assert_eq!(idx.index(3), Some(1));
        assert_eq!(idx.index(4), None);
        assert_eq!(idx.tree(1).source(), 3);
        assert_eq!(idx.tree_of(7).unwrap().source(), 7);
        assert!(idx.tree_of(5).is_none());
    }

    #[test]
    fn distances_match_bfs() {
        let g = cycle_graph(12).freeze();
        let idx = BfsIndex::build(&g, &[2, 9]);
        assert_eq!(idx.distance(0, 8), 6);
        assert_eq!(idx.distance(1, 0), 3);
        assert_eq!(idx.distance_between(9, 0), 3);
        assert_eq!(idx.distance_between(5, 0), INFINITE_DISTANCE);
    }

    #[test]
    fn empty_index_is_fine() {
        let g = cycle_graph(5).freeze();
        let idx = BfsIndex::build(&g, &[]);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }
}
