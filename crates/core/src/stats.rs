//! Lightweight statistics collected by the solvers (sizes of sampled sets and auxiliary graphs,
//! per-phase wall-clock times). Used by the experiment harness to report where time goes.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-run statistics of the SSRP / MSRP solvers.
#[derive(Clone, Debug, Default)]
pub struct AlgorithmStats {
    /// Number of sources.
    pub sigma: usize,
    /// Total number of landmarks.
    pub landmark_count: usize,
    /// Landmark count per level `L_k`.
    pub landmark_level_sizes: Vec<usize>,
    /// Total number of centers (0 when the path-cover machinery was not used).
    pub center_count: usize,
    /// Sum of node counts of the Section 7.1 auxiliary graphs over all sources.
    pub near_small_nodes: usize,
    /// Sum of edge counts of the Section 7.1 auxiliary graphs over all sources.
    pub near_small_edges: usize,
    /// Total entries of the source→landmark replacement table.
    pub source_landmark_entries: usize,
    /// Total `(s, t, e)` entries produced.
    pub output_entries: usize,
    /// Named phase timings, in execution order.
    pub phases: Vec<(String, Duration)>,
}

impl AlgorithmStats {
    /// Records the duration of a named phase.
    pub fn record_phase(&mut self, name: &str, duration: Duration) {
        self.phases.push((name.to_string(), duration));
    }

    /// Runs `f`, records its duration under `name`, and returns its result.
    pub fn time_phase<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_phase(name, start.elapsed());
        out
    }

    /// Total time across all recorded phases.
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of a phase by name, if it was recorded.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }
}

impl fmt::Display for AlgorithmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sigma = {}", self.sigma)?;
        writeln!(
            f,
            "landmarks = {} (levels: {:?}), centers = {}",
            self.landmark_count, self.landmark_level_sizes, self.center_count
        )?;
        writeln!(
            f,
            "near-small aux graphs: {} nodes, {} edges",
            self.near_small_nodes, self.near_small_edges
        )?;
        writeln!(
            f,
            "source-landmark entries = {}, output entries = {}",
            self.source_landmark_entries, self.output_entries
        )?;
        for (name, d) in &self.phases {
            writeln!(f, "  {name:<28} {:>10.3} ms", d.as_secs_f64() * 1e3)?;
        }
        write!(f, "  total {:>10.3} ms", self.total_time().as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate() {
        let mut s = AlgorithmStats::default();
        let x = s.time_phase("one", || 41 + 1);
        assert_eq!(x, 42);
        s.record_phase("two", Duration::from_millis(5));
        assert_eq!(s.phases.len(), 2);
        assert!(s.phase("two").unwrap() >= Duration::from_millis(5));
        assert!(s.phase("missing").is_none());
        assert!(s.total_time() >= Duration::from_millis(5));
    }

    #[test]
    fn display_contains_the_key_numbers() {
        let mut s = AlgorithmStats { sigma: 3, landmark_count: 17, ..Default::default() };
        s.record_phase("sampling", Duration::from_millis(1));
        let text = format!("{s}");
        assert!(text.contains("sigma = 3"));
        assert!(text.contains("landmarks = 17"));
        assert!(text.contains("sampling"));
    }
}
