//! The source→landmark replacement tables `d(s, r, e)`.
//!
//! The preprocessing phase of the paper's algorithm stores, for every source `s ∈ S`, every
//! landmark `r ∈ L` and every edge `e` on the canonical `s–r` path, the replacement distance
//! `d(s, r, e)`. For `σ = 1` the paper obtains these with the classical single-pair routine
//! ([`SourceLandmarkTable::exact`]); for general `σ` Section 8's path-cover machinery builds the
//! same table within the `Õ(m√(nσ) + σn²)` budget (see the `multi_source` module).

use msrp_graph::{CsrGraph, Distance, Edge, ShortestPathTree, INFINITE_DISTANCE};
use msrp_rpath::single_pair_replacement_paths;

use crate::preprocess::BfsIndex;

/// Replacement distances from every source to every landmark, indexed by the position of the
/// avoided edge on the canonical source→landmark path.
#[derive(Clone, Debug)]
pub struct SourceLandmarkTable {
    /// `rows[s_idx][r_idx][pos]` = `d(s, r, e_pos)`.
    rows: Vec<Vec<Vec<Distance>>>,
}

impl SourceLandmarkTable {
    /// Creates a table from raw rows (used by the path-cover construction).
    pub fn from_rows(rows: Vec<Vec<Vec<Distance>>>) -> Self {
        SourceLandmarkTable { rows }
    }

    /// Builds the table with the classical `Õ(m + n)` routine per (source, landmark) pair
    /// (`Õ((m + n)·σ·|L|)` total) — exact, no randomness. Runs over the frozen CSR view.
    pub fn exact(g: &CsrGraph, source_trees: &[ShortestPathTree], landmarks: &BfsIndex) -> Self {
        let mut rows = Vec::with_capacity(source_trees.len());
        for tree_s in source_trees {
            let mut per_landmark = Vec::with_capacity(landmarks.len());
            for r_idx in 0..landmarks.len() {
                let r = landmarks.vertices()[r_idx];
                let dist_from_r = landmarks.tree(r_idx).distances();
                per_landmark.push(single_pair_replacement_paths(g, tree_s, r, dist_from_r));
            }
            rows.push(per_landmark);
        }
        SourceLandmarkTable { rows }
    }

    /// Number of sources covered.
    pub fn source_count(&self) -> usize {
        self.rows.len()
    }

    /// Raw row for a (source, landmark) pair.
    pub fn row(&self, s_idx: usize, r_idx: usize) -> &[Distance] {
        &self.rows[s_idx][r_idx]
    }

    /// Total number of stored entries.
    pub fn entry_count(&self) -> usize {
        self.rows.iter().flat_map(|per_l| per_l.iter().map(|r| r.len())).sum()
    }

    /// A borrowed view for one source, usable by the per-target phases.
    pub fn view<'a>(
        &'a self,
        s_idx: usize,
        source_tree: &'a ShortestPathTree,
        landmarks: &'a BfsIndex,
    ) -> SourceLandmarkView<'a> {
        SourceLandmarkView { source_tree, landmarks, rows: &self.rows[s_idx] }
    }
}

/// A per-source view of the table answering "what is `d(s, r, e)`" for arbitrary edges `e`.
#[derive(Clone, Copy, Debug)]
pub struct SourceLandmarkView<'a> {
    source_tree: &'a ShortestPathTree,
    landmarks: &'a BfsIndex,
    rows: &'a [Vec<Distance>],
}

impl SourceLandmarkView<'_> {
    /// `d(s, r, e)` for the `r_idx`-th landmark: the stored entry when `e` lies on the canonical
    /// `s–r` path, and the ordinary distance `d(s, r)` otherwise (the canonical path then avoids
    /// `e`, so the ordinary distance is attainable).
    pub fn replacement(&self, r_idx: usize, e: Edge) -> Distance {
        let r = self.landmarks.vertices()[r_idx];
        match self.source_tree.edge_position_on_path(r, e) {
            Some(pos) => self.rows[r_idx].get(pos).copied().unwrap_or(INFINITE_DISTANCE),
            None => self.source_tree.distance_or_infinite(r),
        }
    }

    /// The ordinary distance from the source to the `r_idx`-th landmark.
    pub fn base_distance(&self, r_idx: usize) -> Distance {
        self.source_tree.distance_or_infinite(self.landmarks.vertices()[r_idx])
    }

    /// The landmark index this view resolves against.
    pub fn landmarks(&self) -> &BfsIndex {
        self.landmarks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, cycle_graph};
    use msrp_rpath::replacement_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_table_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = connected_gnm(24, 48, &mut rng).unwrap();
        let csr = g.freeze();
        let sources = [0usize, 5];
        let landmark_vertices: Vec<usize> = vec![2, 7, 11, 19, 23];
        let landmarks = BfsIndex::build(&csr, &landmark_vertices);
        let trees: Vec<_> = sources.iter().map(|&s| ShortestPathTree::build(&g, s)).collect();
        let table = SourceLandmarkTable::exact(&csr, &trees, &landmarks);
        assert_eq!(table.source_count(), 2);
        assert!(table.entry_count() > 0);
        for (s_idx, &s) in sources.iter().enumerate() {
            let view = table.view(s_idx, &trees[s_idx], &landmarks);
            for (r_idx, &r) in landmark_vertices.iter().enumerate() {
                let edges = trees[s_idx].path_edges(r);
                for (pos, e) in edges.iter().enumerate() {
                    let expected = replacement_distance(&g, s, r, *e);
                    assert_eq!(table.row(s_idx, r_idx)[pos], expected);
                    assert_eq!(view.replacement(r_idx, *e), expected);
                }
            }
        }
    }

    #[test]
    fn view_falls_back_to_base_distance_off_path() {
        let g = cycle_graph(8);
        let csr = g.freeze();
        let landmarks = BfsIndex::build(&csr, &[3]);
        let tree = ShortestPathTree::build(&g, 0);
        let table = SourceLandmarkTable::exact(&csr, std::slice::from_ref(&tree), &landmarks);
        let view = table.view(0, &tree, &landmarks);
        // Edge (5, 6) is not on the canonical path 0-1-2-3.
        assert_eq!(view.replacement(0, Edge::new(5, 6)), 3);
        assert_eq!(view.base_distance(0), 3);
        // Edge on the path: the replacement goes the other way round (length 5).
        assert_eq!(view.replacement(0, Edge::new(1, 2)), 5);
        assert_eq!(view.landmarks().len(), 1);
    }
}
