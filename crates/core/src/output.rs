//! Output types of the SSRP and MSRP solvers.

use msrp_graph::{Distance, Edge, ShortestPathTree, Vertex};
use msrp_rpath::SourceReplacementDistances;

use crate::stats::AlgorithmStats;

/// Result of the single-source solver ([`crate::solve_ssrp`], Theorem 14).
#[derive(Clone, Debug)]
pub struct SsrpOutput {
    /// The source vertex.
    pub source: Vertex,
    /// The canonical BFS tree of the source (defines which `(t, e)` pairs exist).
    pub tree: ShortestPathTree,
    /// Replacement distances for every target and every edge on its canonical path.
    pub distances: SourceReplacementDistances,
    /// Sizes and timings collected while solving.
    pub stats: AlgorithmStats,
}

impl SsrpOutput {
    /// Convenience query: `|st ⋄ e|` for an arbitrary edge (ordinary distance when `e` is not on
    /// the canonical path).
    pub fn distance_avoiding(&self, t: Vertex, e: Edge) -> Distance {
        self.distances.distance_avoiding(&self.tree, t, e)
    }
}

/// Result of the multi-source solver ([`crate::solve_msrp`], Theorem 1 / 26).
#[derive(Clone, Debug)]
pub struct MsrpOutput {
    /// The sources, in the order they were given.
    pub sources: Vec<Vertex>,
    /// Canonical BFS tree per source.
    pub trees: Vec<ShortestPathTree>,
    /// Replacement distances per source.
    pub per_source: Vec<SourceReplacementDistances>,
    /// Sizes and timings collected while solving.
    pub stats: AlgorithmStats,
}

impl MsrpOutput {
    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Index of a source vertex, if it is one of the sources.
    pub fn source_index(&self, s: Vertex) -> Option<usize> {
        self.sources.iter().position(|&x| x == s)
    }

    /// Convenience query for source `s`: `|st ⋄ e|` (ordinary distance when `e` is off-path).
    ///
    /// Returns `None` when `s` is not one of the sources.
    pub fn distance_avoiding(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Distance> {
        let i = self.source_index(s)?;
        Some(self.per_source[i].distance_avoiding(&self.trees[i], t, e))
    }

    /// Total number of `(s, t, e)` entries produced.
    pub fn entry_count(&self) -> usize {
        self.per_source.iter().map(|d| d.entry_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_msrp, solve_ssrp, MsrpParams};
    use msrp_graph::generators::cycle_graph;

    #[test]
    fn ssrp_output_queries() {
        let g = cycle_graph(8);
        let out = solve_ssrp(&g, 0, &MsrpParams::default());
        assert_eq!(out.source, 0);
        assert_eq!(out.distance_avoiding(3, Edge::new(0, 1)), 5);
        assert_eq!(out.distance_avoiding(3, Edge::new(4, 5)), 3);
    }

    #[test]
    fn msrp_output_queries() {
        let g = cycle_graph(8);
        let out = solve_msrp(&g, &[0, 4], &MsrpParams::default());
        assert_eq!(out.source_count(), 2);
        assert_eq!(out.source_index(4), Some(1));
        assert_eq!(out.source_index(3), None);
        assert_eq!(out.distance_avoiding(4, 6, Edge::new(4, 5)), Some(6));
        assert_eq!(out.distance_avoiding(3, 6, Edge::new(4, 5)), None);
        assert!(out.entry_count() > 0);
    }
}
