//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no network access, so the real `rand` crate cannot be fetched
//! from crates.io. Every use of randomness in the workspace is seeded (there is no
//! `thread_rng`), so a small, fully deterministic PRNG is all that is needed:
//!
//! * [`rngs::StdRng`] — an xoshiro256++ generator (Blackman–Vigna), seeded via SplitMix64
//!   exactly like `rand_core::SeedableRng::seed_from_u64` seeds its state;
//! * [`Rng`] — `gen`, `gen_range` (integer ranges), `gen_bool`;
//! * [`seq::SliceRandom`] — `shuffle` and `choose` (Fisher–Yates);
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`.
//!
//! The streams produced are **not** bit-identical to the real `rand` crate's `StdRng`
//! (which is ChaCha12); they are merely deterministic for a given seed, which is the only
//! property the workspace relies on. If the real crate ever becomes available, deleting
//! this member and pointing the workspace dependency at crates.io is a drop-in change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (32 bytes, mirroring `rand`'s `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64 — the same
    /// expansion the real `rand_core` uses.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate — see the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[8 * i..8 * (i + 1)]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Types that can be drawn uniformly from the generator's full output range
/// (the shim's stand-in for sampling from `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform sample can be drawn from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased rejection sampling (Lemire-style threshold).
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // `end - start + 1` in u64; only the full u64-width range would
                // overflow the +1, so short-circuit it (start == 0 is implied there).
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = width + 1;
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&v));
        }
    }

    #[test]
    fn inclusive_ranges_ending_at_max_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(rng.gen_range(250u8..=u8::MAX) >= 250);
            assert!(rng.gen_range(1u64..=u64::MAX) >= 1);
            let _ = rng.gen_range(0u64..=u64::MAX);
            assert_eq!(rng.gen_range(7u32..=7), 7);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 produced {hits}/10000 hits");
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3];
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
