//! `msrp-obs` — the observability plane of the MSRP workspace.
//!
//! Zero-dependency by design (the container builds offline, matching the PR 1 shim-crate
//! pattern): everything here is `std`-only and usable from any crate in the workspace
//! without pulling in a tracing framework. Four small pieces compose the plane:
//!
//! - [`SpanJournal`] — a lock-free, fixed-capacity ring buffer of span events. Writers
//!   never block and never allocate; when the ring wraps, old events are *dropped and
//!   counted*, not retained at the cost of stalling the hot path. [`TraceIdGen`] mints
//!   seed-stable trace ids so a batch can be correlated across queue-wait / compute /
//!   reply spans and replayed deterministically.
//! - [`Profiler`] / [`StageProfile`] — a monomorphized stage profiler for build pipelines.
//!   Code is written once, generic over `P: Profiler`; instantiating it with
//!   [`NoProfiler`] compiles every timing call to nothing (checked via the
//!   `const ENABLED` flag), so the un-profiled build path pays zero cost.
//! - [`Exposition`] — a Prometheus-style text exposition builder plus a strict
//!   [`is_well_formed`] validator used by the hostile-input fuzz suites.
//! - [`SlowLog`] — a bounded, mutex-guarded log of slow operations. The mutex is fine
//!   here: by construction the lock is only taken when an operation already blew a
//!   latency threshold, so it is never on the fast path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo;
mod journal;
mod profile;
mod slowlog;

pub use expo::{is_well_formed, Exposition};
pub use journal::{JournalSnapshot, SpanEvent, SpanJournal, TraceIdGen};
pub use profile::{timed, NoProfiler, Profiler, StageProfile, StageTiming};
pub use slowlog::{SlowEntry, SlowLog};
