//! A lock-free span journal: a fixed-capacity ring buffer of timing events.
//!
//! # Memory model
//!
//! Each slot carries a seqlock-style stamp derived from the writer's globally unique
//! ticket `t` (claimed with one `fetch_add` on the head counter): the writer stores
//! `2t + 1` (odd: write in progress), then the payload, then `2t + 2` (even: ticket `t`
//! committed) with `Release` ordering. A reader looking for ticket `t` loads the stamp
//! with `Acquire` before and after reading the payload and accepts the event only if
//! both loads saw `2t + 2` — a torn or concurrently overwritten slot is *skipped*, never
//! misattributed. Stamps are unique per ticket, so an older committed event can never be
//! mistaken for a newer one. No `unsafe` is involved.
//!
//! The payload stores themselves are `Release`, not `Relaxed`. The committed stamp
//! (`Release`) orders them *before* itself for the accept path, but only the payload
//! stores' own `Release` orders them *after* the odd stamp on the reject path: a
//! `Release` store orders prior accesses, not later ones, so with relaxed payload
//! stores a reader could observe a later ticket's payload while both stamp loads still
//! return the earlier committed value — a torn event accepted as clean. The model
//! checker in `msrp-check` reproduces that schedule against the relaxed shape
//! (`crates/check/tests/model_journal.rs`); on x86 the stronger stores compile to the
//! same plain `mov`s.
//!
//! All atomics go through [`msrp_check::sync`]: plain `std` re-exports in normal
//! builds, schedule-instrumented shims under the `model` feature.
//!
//! # Drops are counted, not blocked
//!
//! When more than `capacity` events have been recorded, the ring has overwritten the
//! oldest ones. A journal exists to debug latency; making the latency-critical path wait
//! for a slow reader would invert that purpose. Writers therefore always win, and
//! [`JournalSnapshot::dropped`] reports exactly how many events were lost, so dashboards
//! can surface under-provisioned journals instead of silently stalling workers.

use msrp_check::sync::{AtomicU64, Ordering};
use std::time::Duration;

/// One committed span event read back from the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Global sequence number of the event (0-based ticket; dense, never reused).
    pub ticket: u64,
    /// Trace id correlating the spans of one logical operation (e.g. one batch).
    pub trace_id: u64,
    /// Caller-defined stage code (e.g. queue-wait / compute / reply).
    pub stage: u16,
    /// Caller-defined lane (e.g. worker index).
    pub worker: u32,
    /// Span duration.
    pub duration: Duration,
}

struct Slot {
    /// Seqlock stamp: `2t + 1` while ticket `t` writes, `2t + 2` once committed.
    seq: AtomicU64,
    trace_id: AtomicU64,
    /// Packed `stage` (low 16 bits) and `worker` (next 32 bits).
    meta: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

fn pack_meta(stage: u16, worker: u32) -> u64 {
    stage as u64 | ((worker as u64) << 16)
}

fn unpack_meta(meta: u64) -> (u16, u32) {
    (meta as u16, (meta >> 16) as u32)
}

/// A fixed-capacity, lock-free ring buffer of [`SpanEvent`]s.
///
/// `record` is wait-free apart from the single `fetch_add` claiming a ticket; it never
/// blocks, never allocates, and never waits for readers. See the module docs for the
/// seqlock protocol and the drop policy.
pub struct SpanJournal {
    slots: Vec<Slot>,
    head: AtomicU64,
}

impl std::fmt::Debug for SpanJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanJournal")
            .field("capacity", &self.capacity())
            .field("total_recorded", &self.total_recorded())
            .finish_non_exhaustive()
    }
}

impl SpanJournal {
    /// Creates a journal holding the most recent `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanJournal { slots: (0..capacity).map(|_| Slot::new()).collect(), head: AtomicU64::new(0) }
    }

    /// Number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one span event. Overwrites the oldest event once the ring is full.
    pub fn record(&self, trace_id: u64, stage: u16, worker: u32, duration: Duration) {
        // ordering: Relaxed — the ticket claim needs atomicity only; slot visibility is
        // carried entirely by the per-slot stamp protocol below.
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t % self.slots.len() as u64) as usize];
        let committed = t.wrapping_mul(2).wrapping_add(2);
        // ordering: Release — the odd stamp must not sink below later payload stores in
        // *other* threads' view; combined with the payload stores' own Release it keeps
        // "stamp says mid-write" visible whenever a fresher payload is.
        slot.seq.store(committed.wrapping_sub(1), Ordering::Release);
        // ordering: Release (not Relaxed) — each payload store orders the preceding odd
        // stamp before itself, so a reader that Acquire-loads fresh payload cannot still
        // see the stale committed stamp and accept a torn event. See the module docs;
        // regression: crates/check/tests/model_journal.rs.
        slot.trace_id.store(trace_id, Ordering::Release);
        slot.meta.store(pack_meta(stage, worker), Ordering::Release); // ordering: Release — see above
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        slot.dur_ns.store(ns, Ordering::Release); // ordering: Release — see above
                                                  // ordering: Release — commits the payload: a reader whose first Acquire stamp
                                                  // load sees `committed` also sees every payload store above (seqlock publish).
        slot.seq.store(committed, Ordering::Release);
    }

    /// Total events ever recorded (including dropped ones).
    pub fn total_recorded(&self) -> u64 {
        // ordering: Relaxed — a monotonic counter read for sizing; the snapshot loop
        // re-validates every slot through the stamp protocol, so no edge is needed here.
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap so far.
    pub fn dropped(&self) -> u64 {
        self.total_recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Reads back every retained event, oldest first.
    ///
    /// Events being overwritten concurrently are skipped (and show up in
    /// [`JournalSnapshot::skipped`]), never returned torn.
    pub fn snapshot(&self) -> JournalSnapshot {
        let total = self.total_recorded();
        let cap = self.slots.len() as u64;
        let first = total.saturating_sub(cap);
        let mut events = Vec::with_capacity((total - first) as usize);
        let mut skipped = 0u64;
        for t in first..total {
            let slot = &self.slots[(t % cap) as usize];
            let committed = t.wrapping_mul(2).wrapping_add(2);
            // ordering: Acquire — pairs with the writer's committed Release stamp; a
            // matching load here makes every payload store of ticket `t` visible below.
            if slot.seq.load(Ordering::Acquire) != committed {
                skipped += 1;
                continue;
            }
            // ordering: Acquire — pairs with the Release payload stores: if any load
            // observes a *later* ticket's payload, the odd stamp released before it is
            // visible too, and the recheck below rejects the slot.
            let trace_id = slot.trace_id.load(Ordering::Acquire);
            let meta = slot.meta.load(Ordering::Acquire); // ordering: Acquire — see above
            let dur_ns = slot.dur_ns.load(Ordering::Acquire); // ordering: Acquire — see above
                                                              // ordering: Acquire — the seqlock validation read; must not be reordered
                                                              // before the payload loads above, or the window it validates is wrong.
            if slot.seq.load(Ordering::Acquire) != committed {
                skipped += 1;
                continue;
            }
            let (stage, worker) = unpack_meta(meta);
            events.push(SpanEvent {
                ticket: t,
                trace_id,
                stage,
                worker,
                duration: Duration::from_nanos(dur_ns),
            });
        }
        JournalSnapshot { events, total, dropped: first, skipped }
    }
}

/// A point-in-time read of a [`SpanJournal`].
#[derive(Clone, Debug)]
pub struct JournalSnapshot {
    /// Committed events, oldest first.
    pub events: Vec<SpanEvent>,
    /// Total events ever recorded at snapshot time.
    pub total: u64,
    /// Events lost to ring wrap before the snapshot window.
    pub dropped: u64,
    /// Events inside the window that were mid-overwrite and could not be read cleanly.
    pub skipped: u64,
}

impl JournalSnapshot {
    /// Sums retained span durations and counts by stage code, ascending by stage.
    pub fn totals_by_stage(&self) -> Vec<(u16, Duration, u64)> {
        let mut totals: Vec<(u16, Duration, u64)> = Vec::new();
        for e in &self.events {
            match totals.iter_mut().find(|(s, _, _)| *s == e.stage) {
                Some((_, d, c)) => {
                    *d += e.duration;
                    *c += 1;
                }
                None => totals.push((e.stage, e.duration, 1)),
            }
        }
        totals.sort_by_key(|&(s, _, _)| s);
        totals
    }
}

/// Mints seed-stable trace ids: id `i` is a splitmix64-style mix of `(seed, i)`, so the
/// id sequence depends only on the seed and the submission order — never on scheduling —
/// and slow-query log entries can be matched across runs of a seed-pinned workload.
#[derive(Debug)]
pub struct TraceIdGen {
    seed: u64,
    next: AtomicU64,
}

impl TraceIdGen {
    /// Creates a generator for the given workload seed.
    pub fn new(seed: u64) -> Self {
        TraceIdGen { seed, next: AtomicU64::new(0) }
    }

    /// Returns the next trace id.
    pub fn next_id(&self) -> u64 {
        // ordering: Relaxed — the counter only needs uniqueness, not publication; the id
        // value travels to other threads inside journal slots or messages that carry
        // their own edges.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        mix(self.seed, i)
    }
}

/// Splitmix64-style mixing (same constants as the loadgen's client-seed separation).
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let j = SpanJournal::new(8);
        for i in 0..5u64 {
            j.record(100 + i, i as u16, 7, Duration::from_nanos(10 * i));
        }
        let snap = j.snapshot();
        assert_eq!(snap.total, 5);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.skipped, 0);
        assert_eq!(snap.events.len(), 5);
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(e.ticket, i as u64);
            assert_eq!(e.trace_id, 100 + i as u64);
            assert_eq!(e.stage, i as u16);
            assert_eq!(e.worker, 7);
            assert_eq!(e.duration, Duration::from_nanos(10 * i as u64));
        }
    }

    #[test]
    fn wrap_drops_oldest_and_counts_them() {
        let j = SpanJournal::new(4);
        for i in 0..10u64 {
            j.record(i, 0, 0, Duration::from_nanos(i));
        }
        assert_eq!(j.dropped(), 6);
        let snap = j.snapshot();
        assert_eq!(snap.dropped, 6);
        let tickets: Vec<u64> = snap.events.iter().map(|e| e.ticket).collect();
        assert_eq!(tickets, vec![6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        use std::sync::Arc;
        let j = Arc::new(SpanJournal::new(64));
        let writers = 4;
        let per = 2_000u64;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let j = Arc::clone(&j);
                scope.spawn(move || {
                    for i in 0..per {
                        // Payload fields are derived from the trace id, so a reader can
                        // verify every accepted event is internally consistent.
                        let id = (w as u64) << 32 | i;
                        j.record(
                            id,
                            (id % 7) as u16,
                            id as u32 % 5,
                            Duration::from_nanos(id % 1000),
                        );
                    }
                });
            }
            let j = Arc::clone(&j);
            scope.spawn(move || {
                for _ in 0..200 {
                    for e in j.snapshot().events {
                        assert_eq!(e.stage, (e.trace_id % 7) as u16);
                        assert_eq!(e.worker, e.trace_id as u32 % 5);
                        assert_eq!(e.duration, Duration::from_nanos(e.trace_id % 1000));
                    }
                }
            });
        });
        assert_eq!(j.total_recorded(), writers as u64 * per);
        let snap = j.snapshot();
        assert_eq!(snap.skipped, 0, "quiescent journal must read back clean");
        assert_eq!(snap.events.len(), 64);
    }

    #[test]
    fn totals_by_stage_aggregates() {
        let j = SpanJournal::new(16);
        j.record(1, 0, 0, Duration::from_nanos(5));
        j.record(1, 1, 0, Duration::from_nanos(7));
        j.record(2, 0, 1, Duration::from_nanos(3));
        let totals = j.snapshot().totals_by_stage();
        assert_eq!(totals, vec![(0, Duration::from_nanos(8), 2), (1, Duration::from_nanos(7), 1)]);
    }

    #[test]
    fn trace_ids_are_seed_stable_and_distinct() {
        let a = TraceIdGen::new(42);
        let b = TraceIdGen::new(42);
        let ids_a: Vec<u64> = (0..32).map(|_| a.next_id()).collect();
        let ids_b: Vec<u64> = (0..32).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b, "ids must depend only on (seed, index)");
        let mut dedup = ids_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids_a.len());
        let c = TraceIdGen::new(43);
        assert_ne!(c.next_id(), ids_a[0]);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let j = SpanJournal::new(0);
        assert_eq!(j.capacity(), 1);
        j.record(9, 0, 0, Duration::ZERO);
        assert_eq!(j.snapshot().events.len(), 1);
    }
}
