//! A monomorphized stage profiler for build pipelines.
//!
//! Pipelines are written once, generic over `P: Profiler`, and instantiated twice: with
//! [`NoProfiler`] for the production path and with [`StageProfile`] for the profiled
//! path. [`timed`] consults the associated `const ENABLED`, so for `NoProfiler` the
//! clock reads compile away entirely and the un-profiled build is bit-identical in cost
//! to code with no profiling hooks at all.

use std::time::{Duration, Instant};

/// A sink for stage timings. See the module docs for the zero-cost pattern.
pub trait Profiler {
    /// Whether this profiler records anything; `false` lets [`timed`] skip the clock.
    const ENABLED: bool;
    /// Adds `duration` to the running total for `stage`.
    fn add(&mut self, stage: &'static str, duration: Duration);
}

/// The no-op profiler: [`timed`] calls instantiated with it compile to a plain call.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProfiler;

impl Profiler for NoProfiler {
    const ENABLED: bool = false;
    #[inline(always)]
    fn add(&mut self, _stage: &'static str, _duration: Duration) {}
}

/// Accumulated wall time and invocation count of one pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (a static label chosen at the call site).
    pub name: &'static str,
    /// Total wall time across all invocations.
    pub total: Duration,
    /// Number of invocations.
    pub count: u64,
}

/// A recording profiler: per-stage totals in first-seen order.
///
/// Stage sets are small (a handful of static labels), so lookup is a linear scan — no
/// hashing, no allocation beyond the stage vector itself.
#[derive(Clone, Debug, Default)]
pub struct StageProfile {
    stages: Vec<StageTiming>,
}

impl StageProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        StageProfile::default()
    }

    /// The recorded stages, in first-seen order.
    pub fn stages(&self) -> &[StageTiming] {
        &self.stages
    }

    /// Total time recorded for `name`, if the stage was ever entered.
    pub fn get(&self, name: &str) -> Option<StageTiming> {
        self.stages.iter().find(|s| s.name == name).copied()
    }

    /// Sum of all stage totals.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|s| s.total).sum()
    }

    /// Folds another profile into this one (stage-wise sum; new stages are appended).
    pub fn merge(&mut self, other: &StageProfile) {
        for o in &other.stages {
            self.add(o.name, o.total);
            if let Some(s) = self.stages.iter_mut().find(|s| s.name == o.name) {
                // `add` counted one invocation; replace it with the real count.
                s.count = s.count - 1 + o.count;
            }
        }
    }
}

impl Profiler for StageProfile {
    const ENABLED: bool = true;

    fn add(&mut self, stage: &'static str, duration: Duration) {
        match self.stages.iter_mut().find(|s| s.name == stage) {
            Some(s) => {
                s.total += duration;
                s.count += 1;
            }
            None => self.stages.push(StageTiming { name: stage, total: duration, count: 1 }),
        }
    }
}

/// Runs `f`, charging its wall time to `stage` — unless `P::ENABLED` is false, in which
/// case the clock is never read and the call is exactly `f()`.
#[inline]
pub fn timed<P: Profiler, T>(profiler: &mut P, stage: &'static str, f: impl FnOnce() -> T) -> T {
    if P::ENABLED {
        let start = Instant::now();
        let out = f();
        profiler.add(stage, start.elapsed());
        out
    } else {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_profile_accumulates_and_counts() {
        let mut p = StageProfile::new();
        p.add("a", Duration::from_nanos(10));
        p.add("b", Duration::from_nanos(5));
        p.add("a", Duration::from_nanos(7));
        assert_eq!(
            p.get("a"),
            Some(StageTiming { name: "a", total: Duration::from_nanos(17), count: 2 })
        );
        assert_eq!(p.get("c"), None);
        assert_eq!(p.total(), Duration::from_nanos(22));
        assert_eq!(p.stages().len(), 2);
    }

    #[test]
    fn merge_sums_totals_and_counts() {
        let mut a = StageProfile::new();
        a.add("x", Duration::from_nanos(3));
        a.add("y", Duration::from_nanos(4));
        let mut b = StageProfile::new();
        b.add("y", Duration::from_nanos(6));
        b.add("y", Duration::from_nanos(1));
        b.add("z", Duration::from_nanos(2));
        a.merge(&b);
        assert_eq!(a.get("x").unwrap().count, 1);
        let y = a.get("y").unwrap();
        assert_eq!(y.total, Duration::from_nanos(11));
        assert_eq!(y.count, 3);
        let z = a.get("z").unwrap();
        assert_eq!(z.total, Duration::from_nanos(2));
        assert_eq!(z.count, 1);
    }

    #[test]
    fn timed_records_only_when_enabled() {
        let mut off = NoProfiler;
        assert_eq!(timed(&mut off, "s", || 41 + 1), 42);
        let mut on = StageProfile::new();
        assert_eq!(timed(&mut on, "s", || 42), 42);
        let s = on.get("s").unwrap();
        assert_eq!(s.count, 1);
    }
}
