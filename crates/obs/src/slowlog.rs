//! A bounded log of slow operations, keyed by trace id so entries can be correlated
//! with journal spans and replayed.
//!
//! The log is mutex-guarded, which is deliberate: [`SlowLog::observe`] only takes the
//! lock *after* deciding the operation exceeded the threshold, so under healthy latency
//! the hot path performs one branch and no synchronization. Capturing the payload is
//! likewise deferred behind a closure, so fast operations never pay for a clone.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// One slow-operation record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEntry<T> {
    /// Trace id of the operation (matches the journal's span trace ids).
    pub trace_id: u64,
    /// Observed latency.
    pub latency: Duration,
    /// Replayable payload (for the query service: the full `(s, t, e)` batch).
    pub payload: T,
}

struct SlowState<T> {
    entries: VecDeque<SlowEntry<T>>,
    recorded: u64,
}

/// A bounded slow-operation log retaining the most recent `capacity` entries.
pub struct SlowLog<T> {
    capacity: usize,
    threshold: Duration,
    state: Mutex<SlowState<T>>,
}

impl<T> std::fmt::Debug for SlowLog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("capacity", &self.capacity)
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

impl<T> SlowLog<T> {
    /// Creates a log keeping the latest `capacity` entries (clamped to ≥ 1) of
    /// operations at least `threshold` slow.
    pub fn new(capacity: usize, threshold: Duration) -> Self {
        SlowLog {
            capacity: capacity.max(1),
            threshold,
            state: Mutex::new(SlowState { entries: VecDeque::new(), recorded: 0 }),
        }
    }

    /// The configured latency threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records the operation if `latency >= threshold`; `payload` is only invoked (and
    /// the lock only taken) on that slow path. Returns whether an entry was recorded.
    pub fn observe(&self, trace_id: u64, latency: Duration, payload: impl FnOnce() -> T) -> bool {
        if latency < self.threshold {
            return false;
        }
        let entry = SlowEntry { trace_id, latency, payload: payload() };
        let mut state = self.state.lock().expect("slow log poisoned");
        if state.entries.len() == self.capacity {
            state.entries.pop_front();
        }
        state.entries.push_back(entry);
        state.recorded += 1;
        true
    }

    /// Total slow operations ever recorded (including ones evicted by the bound).
    pub fn recorded(&self) -> u64 {
        self.state.lock().expect("slow log poisoned").recorded
    }
}

impl<T: Clone> SlowLog<T> {
    /// Returns the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<SlowEntry<T>> {
        let state = self.state.lock().expect("slow log poisoned");
        state.entries.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_operations_never_touch_the_log() {
        let log: SlowLog<Vec<u32>> = SlowLog::new(4, Duration::from_millis(10));
        let mut captured = false;
        let recorded = log.observe(1, Duration::from_millis(9), || {
            captured = true;
            vec![]
        });
        assert!(!recorded);
        assert!(!captured, "payload must not be captured on the fast path");
        assert_eq!(log.recorded(), 0);
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn slow_operations_are_kept_bounded_oldest_evicted() {
        let log: SlowLog<u64> = SlowLog::new(2, Duration::from_nanos(5));
        for i in 0..4u64 {
            assert!(log.observe(i, Duration::from_nanos(5 + i), || i * 10));
        }
        assert_eq!(log.recorded(), 4);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].trace_id, 2);
        assert_eq!(snap[1].trace_id, 3);
        assert_eq!(snap[1].payload, 30);
        assert_eq!(snap[1].latency, Duration::from_nanos(8));
    }

    #[test]
    fn threshold_is_inclusive() {
        let log: SlowLog<()> = SlowLog::new(1, Duration::from_nanos(7));
        assert!(log.observe(0, Duration::from_nanos(7), || ()));
    }
}
