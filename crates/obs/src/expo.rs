//! Prometheus-style text exposition: a small builder plus a strict validator.
//!
//! The builder emits the classic text format — `# HELP` / `# TYPE` headers followed by
//! `name{label="value"} value` samples — because every metrics pipeline in existence can
//! scrape it, and a line-based format frames cleanly over the service's newline-delimited
//! wire protocol. The validator is deliberately strict (no blank lines, types declared
//! before samples, label values fully escaped) so the hostile-input fuzz suites can
//! assert the exposition stays well-formed under storm conditions.

/// Builds a Prometheus-style text exposition.
///
/// Families must be declared (via [`counter`](Exposition::counter),
/// [`gauge`](Exposition::gauge), [`counter_family`](Exposition::counter_family), …)
/// before samples are appended; the builder writes the `# HELP`/`# TYPE` header at
/// declaration time, so calls group naturally by family.
#[derive(Debug, Default)]
pub struct Exposition {
    buf: String,
}

impl Exposition {
    /// Creates an empty exposition.
    pub fn new() -> Self {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(is_metric_name(name), "invalid metric name {name:?}");
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        for c in help.chars() {
            match c {
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                c => self.buf.push(c),
            }
        }
        self.buf.push('\n');
        self.buf.push_str("# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// Appends one sample line for an already-declared family.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(k);
                self.buf.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.buf.push_str("\\\\"),
                        '"' => self.buf.push_str("\\\""),
                        '\n' => self.buf.push_str("\\n"),
                        c => self.buf.push(c),
                    }
                }
                self.buf.push('"');
            }
            self.buf.push('}');
        }
        self.buf.push(' ');
        self.buf.push_str(&format_value(value));
        self.buf.push('\n');
    }

    /// Declares a counter family; append labelled samples with [`sample`](Self::sample).
    pub fn counter_family(&mut self, name: &str, help: &str) {
        self.header(name, help, "counter");
    }

    /// Declares a gauge family; append labelled samples with [`sample`](Self::sample).
    pub fn gauge_family(&mut self, name: &str, help: &str) {
        self.header(name, help, "gauge");
    }

    /// Declares and emits a single unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.counter_family(name, help);
        self.sample(name, &[], value);
    }

    /// Declares and emits a single unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.gauge_family(name, help);
        self.sample(name, &[], value);
    }

    /// Emits a histogram from log2-of-nanoseconds buckets: bucket `i` counts samples in
    /// `(2^(i-1), 2^i]` ns, so the cumulative `le` bound of bucket `i` is `2^i` ns,
    /// rendered in seconds. Empty buckets are elided (cumulative counts stay correct);
    /// the mandatory `+Inf` bucket, `_sum` (in seconds), and `_count` are always present.
    pub fn histogram_log2(&mut self, name: &str, help: &str, buckets: &[u64], sum_seconds: f64) {
        self.header(name, help, "histogram");
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = format_value(2f64.powi(i as i32) * 1e-9);
            self.sample(&bucket_name, &[("le", &le)], cumulative as f64);
        }
        self.sample(&bucket_name, &[("le", "+Inf")], cumulative as f64);
        self.sample(&format!("{name}_sum"), &[], sum_seconds);
        self.sample(&format!("{name}_count"), &[], cumulative as f64);
    }

    /// Returns the rendered exposition (always `\n`-terminated when non-empty).
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Renders a value the way Prometheus clients do: integers without a decimal point,
/// everything else in scientific notation (round-trippable via `f64::parse`).
fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9_007_199_254_740_992.0 {
        format!("{value:.0}")
    } else {
        format!("{value:e}")
    }
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Strict well-formedness check for the exposition format produced by [`Exposition`],
/// used by the hostile-input fuzz suites.
///
/// Accepts only: non-empty lines; `# HELP name text` and `# TYPE name counter|gauge|
/// histogram` headers (one `TYPE` per family, `HELP` immediately before it); sample
/// lines `name{label="escaped"} value` whose family was declared by an earlier `TYPE`
/// line (histogram samples may use the `_bucket`/`_sum`/`_count` suffixes) and whose
/// value parses as a finite-or-infinite `f64`. Trailing newline required.
pub fn is_well_formed(text: &str) -> bool {
    if text.is_empty() {
        return true;
    }
    if !text.ends_with('\n') {
        return false;
    }
    let mut declared: Vec<(String, String)> = Vec::new(); // (name, kind)
    for line in text.lines() {
        if line.is_empty() {
            return false;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let tail = parts.next();
            if !is_metric_name(name) {
                return false;
            }
            match keyword {
                "HELP" => {
                    if tail.is_none() {
                        return false;
                    }
                }
                "TYPE" => {
                    let kind = tail.unwrap_or("");
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        return false;
                    }
                    if declared.iter().any(|(n, _)| n == name) {
                        return false; // duplicate family declaration
                    }
                    declared.push((name.to_string(), kind.to_string()));
                }
                _ => return false,
            }
            continue;
        }
        if !parse_sample_line(line, &declared) {
            return false;
        }
    }
    true
}

/// Validates one sample line against the declared families.
fn parse_sample_line(line: &str, declared: &[(String, String)]) -> bool {
    // Split the metric name: everything up to '{' or ' '.
    let name_end = line.find(['{', ' ']).unwrap_or(line.len());
    let name = &line[..name_end];
    if !is_metric_name(name) {
        return false;
    }
    let family_ok = declared.iter().any(|(n, kind)| {
        n == name
            || (kind == "histogram"
                && [format!("{n}_bucket"), format!("{n}_sum"), format!("{n}_count")]
                    .iter()
                    .any(|s| s == name))
    });
    if !family_ok {
        return false;
    }
    let mut rest = &line[name_end..];
    if let Some(after_brace) = rest.strip_prefix('{') {
        let Some(close) = find_unescaped_close(after_brace) else {
            return false;
        };
        if !labels_are_valid(&after_brace[..close]) {
            return false;
        }
        rest = &after_brace[close + 1..];
    }
    let Some(value) = rest.strip_prefix(' ') else {
        return false;
    };
    !value.is_empty() && !value.contains(' ') && value.parse::<f64>().is_ok()
}

/// Index of the `}` closing the label set, skipping quoted (escaped) label values.
fn find_unescaped_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Validates `k="v",k="v"` label pairs (contents between the braces).
fn labels_are_valid(s: &str) -> bool {
    if s.is_empty() {
        return false; // we never emit `name{} value`
    }
    let mut rest = s;
    loop {
        let Some(eq) = rest.find('=') else {
            return false;
        };
        if !is_label_name(&rest[..eq]) {
            return false;
        }
        let Some(after_quote) = rest[eq + 1..].strip_prefix('"') else {
            return false;
        };
        // Find the closing quote, honouring backslash escapes.
        let bytes = after_quote.as_bytes();
        let mut escaped = false;
        let mut close = None;
        for (i, &b) in bytes.iter().enumerate() {
            if escaped {
                if !matches!(b, b'\\' | b'"' | b'n') {
                    return false;
                }
                escaped = false;
                continue;
            }
            match b {
                b'\\' => escaped = true,
                b'"' => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            return false;
        };
        rest = &after_quote[close + 1..];
        if rest.is_empty() {
            return true;
        }
        let Some(next) = rest.strip_prefix(',') else {
            return false;
        };
        rest = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_is_well_formed() {
        let mut e = Exposition::new();
        e.counter("msrp_queries_total", "Queries answered.", 1234.0);
        e.gauge("msrp_epoch", "Current epoch id.", 3.0);
        e.counter_family("msrp_shard_queries_total", "Per-shard query counts.");
        e.sample("msrp_shard_queries_total", &[("shard", "0")], 70.0);
        e.sample("msrp_shard_queries_total", &[("shard", "1")], 64.0);
        let mut buckets = vec![0u64; 64];
        buckets[10] = 5;
        buckets[12] = 2;
        e.histogram_log2("msrp_batch_latency_seconds", "Batch latency.", &buckets, 0.0123);
        let text = e.finish();
        assert!(is_well_formed(&text), "not well-formed:\n{text}");
        assert!(text.contains("msrp_queries_total 1234\n"));
        assert!(text.contains("msrp_shard_queries_total{shard=\"0\"} 70\n"));
        assert!(text.contains("msrp_batch_latency_seconds_bucket{le=\"+Inf\"} 7\n"));
        assert!(text.contains("msrp_batch_latency_seconds_count 7\n"));
    }

    #[test]
    fn histogram_cumulative_counts_are_monotone() {
        let mut buckets = vec![0u64; 64];
        buckets[3] = 4;
        buckets[5] = 1;
        buckets[9] = 7;
        let mut e = Exposition::new();
        e.histogram_log2("h", "help", &buckets, 1.0);
        let text = e.finish();
        let counts: Vec<f64> = text
            .lines()
            .filter(|l| l.starts_with("h_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts, vec![4.0, 5.0, 12.0, 12.0]);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Exposition::new();
        e.counter_family("m", "help");
        e.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        let text = e.finish();
        assert!(text.contains("m{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
        assert!(is_well_formed(&text));
    }

    #[test]
    fn validator_rejects_malformations() {
        // Sample for an undeclared family.
        assert!(!is_well_formed("m 1\n"));
        // Missing trailing newline.
        assert!(!is_well_formed("# HELP m h\n# TYPE m counter\nm 1"));
        // Blank interior line.
        assert!(!is_well_formed("# HELP m h\n# TYPE m counter\n\nm 1\n"));
        // Bad type keyword.
        assert!(!is_well_formed("# HELP m h\n# TYPE m widget\nm 1\n"));
        // Duplicate TYPE.
        assert!(!is_well_formed(
            "# HELP m h\n# TYPE m counter\n# HELP m h\n# TYPE m counter\nm 1\n"
        ));
        // Non-numeric value, unterminated labels, bad label name.
        let ok = "# HELP m h\n# TYPE m counter\n";
        assert!(!is_well_formed(&format!("{ok}m abc\n")));
        assert!(!is_well_formed(&format!("{ok}m{{k=\"v\" 1\n")));
        assert!(!is_well_formed(&format!("{ok}m{{9k=\"v\"}} 1\n")));
        assert!(!is_well_formed(&format!("{ok}m{{}} 1\n")));
        // Histogram suffixes only valid under a histogram family.
        assert!(!is_well_formed(&format!("{ok}m_bucket{{le=\"+Inf\"}} 1\n")));
        // And the empty exposition is fine.
        assert!(is_well_formed(""));
    }

    #[test]
    fn validator_accepts_histogram_suffixes() {
        let text = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n";
        assert!(is_well_formed(text));
    }
}
