//! `msrp-snap`: versioned, checksummed binary snapshots of frozen graphs and oracles.
//!
//! A serving process should boot by *adopting* the immutable state a builder already paid
//! for — the frozen [`CsrGraph`] / [`WeightedCsrGraph`] and the per-source replacement
//! tables of the Bernstein–Karger (or exact, or weighted) oracle — instead of re-running
//! minutes of preprocessing. This crate defines that interchange format and the two
//! round-trip halves: [`encode_snapshot`] / [`decode_snapshot`] for the hop metric and
//! [`encode_weighted_snapshot`] / [`decode_weighted_snapshot`] for the weighted metric.
//!
//! # Layout
//!
//! Everything is fixed-width little-endian words, and every section payload starts on an
//! 8-byte boundary:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "MSRPSNAP"
//!      8     4  format version (u32, currently 1)
//!     12     4  kind (u32: 0 = hop metric, 1 = weighted)
//!     16     4  section count k (u32)
//!     20     4  reserved (0)
//!     24     8  file length in bytes (u64)
//!     32     8  whole-file FNV-1a-64 checksum (computed with these 8 bytes excluded)
//!     40  32·k  section table: k × { id u32, reserved u32, offset u64, len u64, fnv u64 }
//!      …     …  section payloads, 8-byte aligned, zero-padded between sections
//! ```
//!
//! The section-table indirection plus the fixed word widths make the format *zero-copy
//! ready*: a loader may validate the checksums and then reinterpret each payload in place
//! as a `&[u32]` / `&[u64]` slice. The loader in this crate stays inside the workspace's
//! `#![forbid(unsafe_code)]` wall, so it copies each (already 8-aligned) payload into a
//! `Vec` with `chunks_exact` — the layout supports the mmap route, the reference
//! implementation does not need it to hit its speedup budget (see `BENCH_snapshot.json`).
//!
//! What is persisted is deliberately minimal. Trees are stored as their BFS/Dijkstra raw
//! buffers (`dist`, sentinel-encoded `parent`, settle `order`) and re-annotated on load via
//! [`ShortestPathTree::from_bfs`] / [`WeightedTree::from_parts`]; replacement tables are
//! stored as their flat row values only, because the row *shapes* are a function of the
//! tree (row length = hop distance in the unweighted oracle, hop depth in the weighted
//! one). The graph is stored as its raw CSR arrays, which
//! [`CsrGraph::from_raw_parts`] revalidates structurally on load.
//!
//! # Fail closed
//!
//! Decoding never panics and never returns a silently wrong oracle: any corrupt,
//! truncated, or version-skewed input yields a typed [`SnapError`]. Validation is layered
//! — magic, version, kind, file length, whole-file checksum, section-table bounds,
//! per-section checksums, then structural validation of every decoded array — so that by
//! the time [`ReplacementPathOracle::from_parts`] (which asserts) is called, its
//! preconditions are already proven. The corruption fuzz battery in
//! `tests/snapshot_fuzz.rs` pins this: every seeded bit flip, truncation, section-offset
//! lie, and version bump must either round-trip bit-identically or fail closed here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use msrp_graph::{
    BfsResult, CsrGraph, GraphError, ShortestPathTree, Vertex, WeightedCsrGraph, WeightedTree,
    INFINITE_DISTANCE, INFINITE_WEIGHT, NO_PARENT,
};
use msrp_oracle::{ReplacementPathOracle, WeightedReplacementOracle};
use msrp_rpath::{SourceReplacementDistances, WeightedReplacementDistances};

/// The 8-byte file magic.
pub const SNAP_MAGIC: [u8; 8] = *b"MSRPSNAP";
/// The current (and only supported) format version. Bump on any layout change: decoding
/// is exact-match, never "best effort" across versions.
pub const SNAP_VERSION: u32 = 1;

/// Byte offset of the whole-file checksum field (excluded from its own computation).
const FILE_CHECKSUM_OFFSET: usize = 32;
/// Fixed header size in bytes (the section table starts here).
const HEADER_BYTES: usize = 40;
/// Size of one section-table entry in bytes.
const TABLE_ENTRY_BYTES: usize = 32;

// Section ids. The weighted kind reuses the tree/row ids with wider words.
const SEC_META: u32 = 1;
const SEC_GRAPH_OFFSETS: u32 = 2;
const SEC_GRAPH_TARGETS: u32 = 3;
const SEC_GRAPH_WEIGHTS: u32 = 4;
const SEC_SOURCES: u32 = 5;
const SEC_SHARD_LENS: u32 = 6;
const SEC_TREE_DIST: u32 = 7;
const SEC_TREE_PARENT: u32 = 8;
const SEC_TREE_ORDER: u32 = 9;
const SEC_ROWS: u32 = 10;

/// Which metric a snapshot serves.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SnapKind {
    /// Hop-metric snapshot: [`CsrGraph`] plus [`ReplacementPathOracle`] shards (the exact
    /// and Bernstein–Karger construction routes produce identical tables, so one kind
    /// covers both).
    HopMetric,
    /// Weighted snapshot: [`WeightedCsrGraph`] plus [`WeightedReplacementOracle`] shards.
    Weighted,
}

impl SnapKind {
    fn code(self) -> u32 {
        match self {
            SnapKind::HopMetric => 0,
            SnapKind::Weighted => 1,
        }
    }

    fn from_code(code: u32) -> Option<SnapKind> {
        match code {
            0 => Some(SnapKind::HopMetric),
            1 => Some(SnapKind::Weighted),
            _ => None,
        }
    }
}

impl fmt::Display for SnapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapKind::HopMetric => write!(f, "hop"),
            SnapKind::Weighted => write!(f, "weighted"),
        }
    }
}

/// Everything that can go wrong while decoding a snapshot. Every variant is fail-closed:
/// the caller gets no partially decoded state, and nothing panics on the way here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer is smaller than the fixed header (or than a region the header claims).
    Truncated {
        /// Bytes required by the structure being read.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first 8 bytes are not [`SNAP_MAGIC`] — this is not a snapshot at all.
    BadMagic,
    /// The file was written by a different format version; decoding is exact-match only.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build supports ([`SNAP_VERSION`]).
        supported: u32,
    },
    /// The kind code is not one this build knows.
    UnknownKind(u32),
    /// A well-formed snapshot of the other metric was handed to the wrong decoder.
    WrongKind {
        /// Kind the decoder was asked for.
        expected: SnapKind,
        /// Kind recorded in the file.
        found: SnapKind,
    },
    /// The header's recorded file length disagrees with the buffer length (truncation or
    /// trailing garbage).
    LengthMismatch {
        /// Length the header claims.
        header: u64,
        /// Length of the buffer handed in.
        actual: usize,
    },
    /// The whole-file checksum does not match: some byte of the file was corrupted.
    FileChecksum {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the buffer.
        computed: u64,
    },
    /// The section table is structurally invalid (out-of-bounds or misaligned offsets,
    /// overlapping or duplicate sections, a required section missing).
    SectionTable {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A section's payload checksum does not match its table entry.
    SectionChecksum {
        /// Id of the offending section.
        id: u32,
        /// Checksum recorded in the table.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// Decoded words fail structural validation (array lengths disagree, ids out of
    /// range, duplicate sources, row totals that do not match the trees, …).
    Structure {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The graph arrays fail [`CsrGraph::from_raw_parts`] validation.
    Graph(GraphError),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: need {needed} bytes, have {have}")
            }
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot version {found} is not the supported version {supported}")
            }
            SnapError::UnknownKind(code) => write!(f, "unknown snapshot kind code {code}"),
            SnapError::WrongKind { expected, found } => {
                write!(f, "expected a {expected} snapshot, found a {found} snapshot")
            }
            SnapError::LengthMismatch { header, actual } => {
                write!(f, "header claims {header} bytes but the buffer holds {actual}")
            }
            SnapError::FileChecksum { stored, computed } => {
                write!(
                    f,
                    "file checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            SnapError::SectionTable { reason } => write!(f, "invalid section table: {reason}"),
            SnapError::SectionChecksum { id, stored, computed } => write!(
                f,
                "section {id} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapError::Structure { reason } => write!(f, "invalid snapshot structure: {reason}"),
            SnapError::Graph(e) => write!(f, "invalid snapshot graph: {e}"),
        }
    }
}

impl Error for SnapError {}

impl From<GraphError> for SnapError {
    fn from(e: GraphError) -> Self {
        SnapError::Graph(e)
    }
}

fn structure(reason: impl Into<String>) -> SnapError {
    SnapError::Structure { reason: reason.into() }
}

/// The FNV-1a 64-bit offset basis (Fowler–Noll–Vo).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a compression step over an 8-byte lane.
#[inline]
fn absorb(h: &mut u64, lane: u64) {
    *h ^= lane;
    *h = h.wrapping_mul(FNV_PRIME);
}

/// Absorbs `bytes` as 8-byte little-endian lanes (zero-padded tail). Streaming across
/// slices is only lane-stable when every slice but the last is a multiple of 8 bytes —
/// which the format guarantees (all section payloads are 8-aligned and the header
/// splits at lane boundaries).
fn absorb_lanes(h: &mut u64, bytes: &[u8]) {
    let mut lanes = bytes.chunks_exact(8);
    for lane in &mut lanes {
        absorb(h, u64::from_le_bytes(lane.try_into().expect("chunks_exact yields 8 bytes")));
    }
    let tail = lanes.remainder();
    if !tail.is_empty() {
        let mut lane = [0u8; 8];
        lane[..tail.len()].copy_from_slice(tail);
        absorb(h, u64::from_le_bytes(lane));
    }
}

/// 64-bit checksum: FNV-1a compression (the Fowler–Noll–Vo offset-basis/prime
/// constants) applied to 8-byte little-endian lanes with a zero-padded tail, and the
/// input length absorbed as a final lane (so `"abc"` and `"abc\0"` differ). The lane
/// width matters on the boot path: the byte-at-a-time FNV chain runs one 64-bit
/// multiply per *byte* and was the single largest cost of opening a snapshot; lanes cut
/// the chain to one multiply per 8 bytes while keeping the guarantee the format relies
/// on — every step is a bijection of the running state, so any corruption confined to
/// one lane always changes the checksum. Hand rolled: the workspace vendors no hashing
/// crates, and 8 bytes of this over a megabytes-long mostly-incompressible payload is
/// plenty to catch the corruption the format defends against (bit rot, short writes,
/// wrong files) — it is an integrity check, not an authentication tag.
pub fn fnv1a64_lanes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    absorb_lanes(&mut h, bytes);
    absorb(&mut h, bytes.len() as u64);
    h
}

/// Checksum of the whole file with the stored-checksum field skipped: exactly
/// [`fnv1a64_lanes`] of `bytes[..32] ‖ bytes[40..]` (both ranges start lane-aligned,
/// so the two-slice stream absorbs the same lanes the concatenation would).
fn file_checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    absorb_lanes(&mut h, &bytes[..FILE_CHECKSUM_OFFSET]);
    absorb_lanes(&mut h, &bytes[FILE_CHECKSUM_OFFSET + 8..]);
    absorb(&mut h, (bytes.len() - 8) as u64);
    h
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u32s<I: IntoIterator<Item = u32>>(dst: &mut Vec<u8>, words: I) {
    for w in words {
        dst.extend_from_slice(&w.to_le_bytes());
    }
}

fn push_u64s<I: IntoIterator<Item = u64>>(dst: &mut Vec<u8>, words: I) {
    for w in words {
        dst.extend_from_slice(&w.to_le_bytes());
    }
}

/// Sentinel-encodes a tree parent array (`NO_PARENT` for the root and unreachable).
fn encode_parents(n: usize, parent_of: impl Fn(Vertex) -> Option<Vertex>) -> Vec<u32> {
    (0..n).map(|v| parent_of(v).map_or(NO_PARENT, |p| p as u32)).collect()
}

/// Lays out header + section table + 8-aligned payloads and stamps both checksum layers.
fn assemble(kind: SnapKind, sections: Vec<(u32, Vec<u8>)>) -> Vec<u8> {
    let table_end = HEADER_BYTES + TABLE_ENTRY_BYTES * sections.len();
    // Place payloads: each starts at the next 8-byte boundary after the previous one.
    let mut placed = Vec::with_capacity(sections.len());
    let mut cursor = table_end; // table_end is 8-aligned (40 + 32k)
    for (id, payload) in &sections {
        placed.push((*id, cursor, payload.len()));
        cursor += payload.len();
        cursor = (cursor + 7) & !7;
    }
    let file_len = cursor;
    let mut out = vec![0u8; file_len];
    out[0..8].copy_from_slice(&SNAP_MAGIC);
    out[8..12].copy_from_slice(&SNAP_VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&kind.code().to_le_bytes());
    out[16..20].copy_from_slice(&(sections.len() as u32).to_le_bytes());
    out[24..32].copy_from_slice(&(file_len as u64).to_le_bytes());
    for (i, ((id, offset, len), (_, payload))) in placed.iter().zip(&sections).enumerate() {
        out[*offset..*offset + *len].copy_from_slice(payload);
        let entry = HEADER_BYTES + TABLE_ENTRY_BYTES * i;
        out[entry..entry + 4].copy_from_slice(&id.to_le_bytes());
        out[entry + 8..entry + 16].copy_from_slice(&(*offset as u64).to_le_bytes());
        out[entry + 16..entry + 24].copy_from_slice(&(*len as u64).to_le_bytes());
        out[entry + 24..entry + 32].copy_from_slice(&fnv1a64_lanes(payload).to_le_bytes());
    }
    let checksum = file_checksum(&out);
    out[FILE_CHECKSUM_OFFSET..FILE_CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
    out
}

/// Serializes a frozen graph plus per-shard hop-metric oracles into one snapshot buffer.
///
/// The shard split is preserved (see the `SHARD_LENS` section), so a serving process can
/// rebuild its `ShardedOracle` with the exact same source partition the builder used.
/// Both the exact and the Bernstein–Karger construction routes produce these tables; the
/// snapshot does not care which one paid for them.
///
/// # Panics
///
/// Panics if `shards` is empty or any shard was built over a different graph than `g`
/// (vertex-count mismatch) — encoding is a trusted, in-process operation; only *decoding*
/// handles hostile bytes.
pub fn encode_snapshot(g: &CsrGraph, shards: &[ReplacementPathOracle]) -> Vec<u8> {
    assert!(!shards.is_empty(), "at least one shard is required");
    let n = g.vertex_count();
    for shard in shards {
        assert_eq!(shard.vertex_count(), n, "shard built over a different graph");
    }
    let sources: Vec<u32> =
        shards.iter().flat_map(|s| s.sources().iter().map(|&v| v as u32)).collect();
    let shard_lens: Vec<u32> = shards.iter().map(|s| s.sources().len() as u32).collect();

    let mut tree_dist = Vec::new();
    let mut tree_parent = Vec::new();
    let mut tree_order = Vec::new();
    let mut rows = Vec::new();
    let mut entry_total: u64 = 0;
    for shard in shards {
        for (tree, table) in shard.trees().iter().zip(shard.per_source()) {
            push_u32s(&mut tree_dist, tree.distances().iter().copied());
            push_u32s(&mut tree_parent, encode_parents(n, |v| tree.parent(v)));
            push_u32s(&mut tree_order, tree.bfs_order().iter().map(|&v| v as u32));
            for t in 0..n {
                let row = table.row(t);
                push_u32s(&mut rows, row.iter().copied());
                entry_total += row.len() as u64;
            }
        }
    }

    let mut meta = Vec::new();
    push_u64s(&mut meta, [n as u64, sources.len() as u64, shards.len() as u64, entry_total]);
    let mut graph_offsets = Vec::new();
    push_u32s(&mut graph_offsets, g.offsets().iter().copied());
    let mut graph_targets = Vec::new();
    push_u32s(&mut graph_targets, g.targets().iter().copied());
    let mut sources_bytes = Vec::new();
    push_u32s(&mut sources_bytes, sources);
    let mut shard_bytes = Vec::new();
    push_u32s(&mut shard_bytes, shard_lens);

    assemble(
        SnapKind::HopMetric,
        vec![
            (SEC_META, meta),
            (SEC_GRAPH_OFFSETS, graph_offsets),
            (SEC_GRAPH_TARGETS, graph_targets),
            (SEC_SOURCES, sources_bytes),
            (SEC_SHARD_LENS, shard_bytes),
            (SEC_TREE_DIST, tree_dist),
            (SEC_TREE_PARENT, tree_parent),
            (SEC_TREE_ORDER, tree_order),
            (SEC_ROWS, rows),
        ],
    )
}

/// Serializes a frozen weighted graph plus per-shard weighted oracles — the weighted
/// mirror of [`encode_snapshot`], with `u64` words for weights, tree distances, and rows.
///
/// # Panics
///
/// Same trusted-input contract as [`encode_snapshot`].
pub fn encode_weighted_snapshot(
    g: &WeightedCsrGraph,
    shards: &[WeightedReplacementOracle],
) -> Vec<u8> {
    assert!(!shards.is_empty(), "at least one shard is required");
    let n = g.vertex_count();
    for shard in shards {
        assert_eq!(shard.vertex_count(), n, "shard built over a different graph");
    }
    let sources: Vec<u32> =
        shards.iter().flat_map(|s| s.sources().iter().map(|&v| v as u32)).collect();
    let shard_lens: Vec<u32> = shards.iter().map(|s| s.sources().len() as u32).collect();

    let mut tree_dist = Vec::new();
    let mut tree_parent = Vec::new();
    let mut tree_order = Vec::new();
    let mut rows = Vec::new();
    let mut entry_total: u64 = 0;
    for shard in shards {
        for (tree, table) in shard.trees().iter().zip(shard.per_source()) {
            push_u64s(&mut tree_dist, tree.distances().iter().copied());
            push_u32s(&mut tree_parent, encode_parents(n, |v| tree.parent(v)));
            push_u32s(&mut tree_order, tree.order().iter().map(|&v| v as u32));
            for t in 0..n {
                let row = table.row(t);
                push_u64s(&mut rows, row.iter().copied());
                entry_total += row.len() as u64;
            }
        }
    }

    let mut meta = Vec::new();
    push_u64s(&mut meta, [n as u64, sources.len() as u64, shards.len() as u64, entry_total]);
    let mut graph_offsets = Vec::new();
    push_u32s(&mut graph_offsets, g.offsets().iter().copied());
    let mut graph_targets = Vec::new();
    push_u32s(&mut graph_targets, g.targets().iter().copied());
    let mut graph_weights = Vec::new();
    push_u64s(&mut graph_weights, g.weights().iter().copied());
    let mut sources_bytes = Vec::new();
    push_u32s(&mut sources_bytes, sources);
    let mut shard_bytes = Vec::new();
    push_u32s(&mut shard_bytes, shard_lens);

    assemble(
        SnapKind::Weighted,
        vec![
            (SEC_META, meta),
            (SEC_GRAPH_OFFSETS, graph_offsets),
            (SEC_GRAPH_TARGETS, graph_targets),
            (SEC_GRAPH_WEIGHTS, graph_weights),
            (SEC_SOURCES, sources_bytes),
            (SEC_SHARD_LENS, shard_bytes),
            (SEC_TREE_DIST, tree_dist),
            (SEC_TREE_PARENT, tree_parent),
            (SEC_TREE_ORDER, tree_order),
            (SEC_ROWS, rows),
        ],
    )
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Validated header fields plus the located (checksum-verified) sections.
struct Envelope<'a> {
    kind: SnapKind,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> Envelope<'a> {
    fn section(&self, id: u32) -> Result<&'a [u8], SnapError> {
        self.sections
            .iter()
            .find(|&&(sid, _)| sid == id)
            .map(|&(_, payload)| payload)
            .ok_or(SnapError::SectionTable { reason: format!("required section {id} is missing") })
    }
}

fn u32_le(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4-byte slice"))
}

fn u64_le(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8-byte slice"))
}

/// Reinterprets a checksum-verified payload as little-endian `u32` words.
fn words_u32(id: u32, payload: &[u8]) -> Result<Vec<u32>, SnapError> {
    if !payload.len().is_multiple_of(4) {
        return Err(structure(format!(
            "section {id} length {} is not a u32 multiple",
            payload.len()
        )));
    }
    Ok(payload.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("chunk"))).collect())
}

/// Reinterprets a checksum-verified payload as little-endian `u64` words.
fn words_u64(id: u32, payload: &[u8]) -> Result<Vec<u64>, SnapError> {
    if !payload.len().is_multiple_of(8) {
        return Err(structure(format!(
            "section {id} length {} is not a u64 multiple",
            payload.len()
        )));
    }
    Ok(payload.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("chunk"))).collect())
}

/// Runs the byte-level validation ladder: magic → version → kind → length → file checksum
/// → section-table bounds → per-section checksums. Structural (word-level) validation is
/// the caller's second phase.
fn open(bytes: &[u8]) -> Result<Envelope<'_>, SnapError> {
    if bytes.len() < HEADER_BYTES {
        return Err(SnapError::Truncated { needed: HEADER_BYTES, have: bytes.len() });
    }
    if bytes[0..8] != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32_le(bytes, 8);
    if version != SNAP_VERSION {
        return Err(SnapError::UnsupportedVersion { found: version, supported: SNAP_VERSION });
    }
    let kind_code = u32_le(bytes, 12);
    let kind = SnapKind::from_code(kind_code).ok_or(SnapError::UnknownKind(kind_code))?;
    let file_len = u64_le(bytes, 24);
    if file_len != bytes.len() as u64 {
        return Err(SnapError::LengthMismatch { header: file_len, actual: bytes.len() });
    }
    let stored = u64_le(bytes, FILE_CHECKSUM_OFFSET);
    let computed = file_checksum(bytes);
    if stored != computed {
        return Err(SnapError::FileChecksum { stored, computed });
    }
    let section_count = u32_le(bytes, 16) as usize;
    let table_reason = |reason: String| SnapError::SectionTable { reason };
    let table_bytes = section_count
        .checked_mul(TABLE_ENTRY_BYTES)
        .and_then(|t| t.checked_add(HEADER_BYTES))
        .ok_or_else(|| table_reason(format!("section count {section_count} overflows")))?;
    if table_bytes > bytes.len() {
        return Err(table_reason(format!(
            "table of {section_count} sections needs {table_bytes} bytes, file has {}",
            bytes.len()
        )));
    }
    let mut sections = Vec::with_capacity(section_count);
    for i in 0..section_count {
        let entry = HEADER_BYTES + TABLE_ENTRY_BYTES * i;
        let id = u32_le(bytes, entry);
        let offset = u64_le(bytes, entry + 8);
        let len = u64_le(bytes, entry + 16);
        let stored = u64_le(bytes, entry + 24);
        if sections.iter().any(|&(sid, _)| sid == id) {
            return Err(table_reason(format!("duplicate section id {id}")));
        }
        if !offset.is_multiple_of(8) {
            return Err(table_reason(format!("section {id} offset {offset} is not 8-aligned")));
        }
        let offset = usize::try_from(offset)
            .map_err(|_| table_reason(format!("section {id} offset overflows")))?;
        let len = usize::try_from(len)
            .map_err(|_| table_reason(format!("section {id} length overflows")))?;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| table_reason(format!("section {id} extent overflows")))?;
        if offset < table_bytes || end > bytes.len() {
            return Err(table_reason(format!(
                "section {id} [{offset}, {end}) escapes the payload region [{table_bytes}, {})",
                bytes.len()
            )));
        }
        let payload = &bytes[offset..end];
        let computed = fnv1a64_lanes(payload);
        if stored != computed {
            return Err(SnapError::SectionChecksum { id, stored, computed });
        }
        sections.push((id, payload));
    }
    Ok(Envelope { kind, sections })
}

/// Summary of a snapshot, produced by [`inspect`] after full checksum validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapInfo {
    /// Metric the snapshot serves.
    pub kind: SnapKind,
    /// Vertices of the frozen graph.
    pub vertex_count: usize,
    /// Undirected edges of the frozen graph.
    pub edge_count: usize,
    /// Number of sources (σ).
    pub source_count: usize,
    /// Number of oracle shards.
    pub shard_count: usize,
    /// Total replacement-table entries across all sources.
    pub entry_count: u64,
    /// Total snapshot size in bytes.
    pub bytes: usize,
}

/// Validates every checksum layer and reports the snapshot's metadata without
/// reconstructing trees or tables (what `msrpctl list` prints).
pub fn inspect(bytes: &[u8]) -> Result<SnapInfo, SnapError> {
    let envelope = open(bytes)?;
    let meta = words_u64(SEC_META, envelope.section(SEC_META)?)?;
    if meta.len() != 4 {
        return Err(structure(format!("META holds {} words, expected 4", meta.len())));
    }
    let targets = envelope.section(SEC_GRAPH_TARGETS)?;
    Ok(SnapInfo {
        kind: envelope.kind,
        vertex_count: usize::try_from(meta[0]).map_err(|_| structure("vertex count overflows"))?,
        edge_count: targets.len() / 4 / 2,
        source_count: usize::try_from(meta[1]).map_err(|_| structure("source count overflows"))?,
        shard_count: usize::try_from(meta[2]).map_err(|_| structure("shard count overflows"))?,
        entry_count: meta[3],
        bytes: bytes.len(),
    })
}

/// META plus the common (metric-independent) sections, structurally validated.
struct CommonParts {
    n: usize,
    sources: Vec<Vertex>,
    shard_lens: Vec<usize>,
    entry_total: u64,
}

fn decode_common(envelope: &Envelope<'_>) -> Result<CommonParts, SnapError> {
    let meta = words_u64(SEC_META, envelope.section(SEC_META)?)?;
    if meta.len() != 4 {
        return Err(structure(format!("META holds {} words, expected 4", meta.len())));
    }
    let n = usize::try_from(meta[0]).map_err(|_| structure("vertex count overflows"))?;
    let sigma = usize::try_from(meta[1]).map_err(|_| structure("source count overflows"))?;
    let shard_count = usize::try_from(meta[2]).map_err(|_| structure("shard count overflows"))?;
    let entry_total = meta[3];

    let sources_raw = words_u32(SEC_SOURCES, envelope.section(SEC_SOURCES)?)?;
    if sources_raw.len() != sigma || sigma == 0 {
        return Err(structure(format!(
            "META claims {sigma} sources, section holds {}",
            sources_raw.len()
        )));
    }
    if sources_raw.iter().any(|&s| s as usize >= n) {
        return Err(structure("a source id is out of range"));
    }
    let mut dedup: Vec<u32> = sources_raw.clone();
    dedup.sort_unstable();
    dedup.dedup();
    if dedup.len() != sources_raw.len() {
        return Err(structure("duplicate source ids"));
    }

    let shard_lens_raw = words_u32(SEC_SHARD_LENS, envelope.section(SEC_SHARD_LENS)?)?;
    if shard_lens_raw.len() != shard_count || shard_count == 0 {
        return Err(structure(format!(
            "META claims {shard_count} shards, section holds {}",
            shard_lens_raw.len()
        )));
    }
    if shard_lens_raw.contains(&0) {
        return Err(structure("a shard covers zero sources"));
    }
    let total: u64 = shard_lens_raw.iter().map(|&l| u64::from(l)).sum();
    if total != sigma as u64 {
        return Err(structure(format!("shard lengths sum to {total}, not σ = {sigma}")));
    }

    Ok(CommonParts {
        n,
        sources: sources_raw.into_iter().map(|s| s as Vertex).collect(),
        shard_lens: shard_lens_raw.into_iter().map(|l| l as usize).collect(),
        entry_total,
    })
}

/// Validates one tree's raw buffers: parents are in range (or sentinel), the settle order
/// names exactly the reachable vertices, and the root looks like a root. Everything the
/// tree re-annotation (`from_bfs` / `from_parts`) and the row-shape derivation index with
/// is proven in range here — this is what makes the downstream constructors panic-free on
/// arbitrary checksum-valid bytes.
fn validate_tree_arrays<D: Copy + Eq>(
    source: Vertex,
    n: usize,
    dist: &[D],
    infinite: D,
    zero: D,
    parent: &[u32],
    order: &[u32],
) -> Result<(), SnapError> {
    if dist[source] != zero {
        return Err(structure(format!("tree of source {source} has nonzero root distance")));
    }
    if parent[source] != NO_PARENT {
        return Err(structure(format!("tree of source {source} gives the root a parent")));
    }
    if parent.iter().any(|&p| p != NO_PARENT && p as usize >= n) {
        return Err(structure(format!("tree of source {source} has an out-of-range parent")));
    }
    let reachable = dist.iter().filter(|&&d| d != infinite).count();
    if order.len() != reachable {
        return Err(structure(format!(
            "tree of source {source} settles {} vertices but {reachable} are reachable",
            order.len()
        )));
    }
    let mut seen = vec![false; n];
    for &v in order {
        let v = v as usize;
        if v >= n || seen[v] {
            return Err(structure(format!(
                "tree of source {source} has an invalid or repeated settle entry"
            )));
        }
        seen[v] = true;
    }
    for (v, &d) in dist.iter().enumerate() {
        if (d != infinite) != seen[v] {
            return Err(structure(format!(
                "tree of source {source} disagrees with its settle order on reachability"
            )));
        }
    }
    Ok(())
}

/// A decoded hop-metric snapshot: the frozen graph and the oracle shards, ready to serve.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The frozen graph the oracles were built over.
    pub graph: CsrGraph,
    /// The oracle shards, in the builder's shard order (disjoint source slices).
    pub shards: Vec<ReplacementPathOracle>,
}

/// Decodes a hop-metric snapshot, failing closed with a typed [`SnapError`] on any
/// corruption, truncation, or version/kind skew. On success the returned shards answer
/// bit-for-bit what the encoded oracles answered — pinned row-for-row by the fuzz battery.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapError> {
    let envelope = open(bytes)?;
    if envelope.kind != SnapKind::HopMetric {
        return Err(SnapError::WrongKind { expected: SnapKind::HopMetric, found: envelope.kind });
    }
    let common = decode_common(&envelope)?;
    let n = common.n;
    let sigma = common.sources.len();

    let offsets = words_u32(SEC_GRAPH_OFFSETS, envelope.section(SEC_GRAPH_OFFSETS)?)?;
    if offsets.len() != n + 1 {
        return Err(structure(format!(
            "META claims {n} vertices, offsets array holds {}",
            offsets.len()
        )));
    }
    let targets = words_u32(SEC_GRAPH_TARGETS, envelope.section(SEC_GRAPH_TARGETS)?)?;
    let graph = CsrGraph::from_raw_parts(offsets, targets)?;

    let tree_dist = words_u32(SEC_TREE_DIST, envelope.section(SEC_TREE_DIST)?)?;
    let tree_parent = words_u32(SEC_TREE_PARENT, envelope.section(SEC_TREE_PARENT)?)?;
    let tree_order = words_u32(SEC_TREE_ORDER, envelope.section(SEC_TREE_ORDER)?)?;
    let rows = words_u32(SEC_ROWS, envelope.section(SEC_ROWS)?)?;
    let per_tree = sigma.checked_mul(n).ok_or_else(|| structure("σ·n overflows"))?;
    if tree_dist.len() != per_tree || tree_parent.len() != per_tree {
        return Err(structure("tree arrays do not hold σ·n entries"));
    }
    if rows.len() as u64 != common.entry_total {
        return Err(structure(format!(
            "META claims {} row entries, section holds {}",
            common.entry_total,
            rows.len()
        )));
    }

    // Per-source reconstruction: validate, re-annotate the tree, derive the row shapes
    // from it, and fill them from the flat stream.
    let mut trees = Vec::with_capacity(sigma);
    let mut tables = Vec::with_capacity(sigma);
    let mut order_cursor = 0usize;
    let mut row_cursor = 0usize;
    for (i, &s) in common.sources.iter().enumerate() {
        let dist = &tree_dist[i * n..(i + 1) * n];
        let parent = &tree_parent[i * n..(i + 1) * n];
        let reachable = dist.iter().filter(|&&d| d != INFINITE_DISTANCE).count();
        if order_cursor + reachable > tree_order.len() {
            return Err(structure("settle orders overrun their section"));
        }
        let order = &tree_order[order_cursor..order_cursor + reachable];
        order_cursor += reachable;
        validate_tree_arrays(s, n, dist, INFINITE_DISTANCE, 0, parent, order)?;
        // Memory-bounding gate: the table constructor below sizes each row by the tree
        // distance, so a lied (finite but huge) distance word would otherwise translate
        // into a multi-gigabyte allocation from a kilobyte-sized file. Prove the derived
        // row total fits the (file-size-bounded) ROWS section BEFORE allocating anything
        // distance-sized.
        let tree_rows: u64 =
            dist.iter().filter(|&&d| d != INFINITE_DISTANCE).map(|&d| u64::from(d)).sum();
        if (row_cursor as u64).saturating_add(tree_rows) > rows.len() as u64 {
            return Err(structure(format!("rows of source {s} overrun their section")));
        }
        let tree = ShortestPathTree::from_bfs(BfsResult {
            source: s,
            dist: dist.to_vec(),
            parent: parent
                .iter()
                .map(|&p| if p == NO_PARENT { None } else { Some(p as Vertex) })
                .collect(),
            order: order.iter().map(|&v| v as Vertex).collect(),
        });
        // Row shapes are a function of the (validated) tree: length = hop distance for
        // reachable targets. The gate above proved the flat stream holds this source's
        // whole row total, so the bulk constructor's exact-payout panic cannot fire.
        let take = tree_rows as usize;
        let table =
            SourceReplacementDistances::from_flat_rows(&tree, &rows[row_cursor..row_cursor + take]);
        row_cursor += take;
        trees.push(tree);
        tables.push(table);
    }
    if order_cursor != tree_order.len() {
        return Err(structure("settle-order section has trailing entries"));
    }
    if row_cursor != rows.len() {
        return Err(structure("rows section has trailing entries"));
    }

    let shards = split_shards(common.sources, trees, tables, &common.shard_lens, |s, t, d| {
        ReplacementPathOracle::from_parts(s, t, d)
    });
    Ok(Snapshot { graph, shards })
}

/// A decoded weighted snapshot: frozen weighted graph plus weighted oracle shards.
#[derive(Clone, Debug)]
pub struct WeightedSnapshot {
    /// The frozen weighted graph the oracles were built over.
    pub graph: WeightedCsrGraph,
    /// The weighted oracle shards, in the builder's shard order.
    pub shards: Vec<WeightedReplacementOracle>,
}

/// Decodes a weighted snapshot — the weighted mirror of [`decode_snapshot`], with the
/// same fail-closed ladder and the row shapes derived from hop *depth* instead of
/// distance (weighted canonical paths are indexed by edge position, not length).
pub fn decode_weighted_snapshot(bytes: &[u8]) -> Result<WeightedSnapshot, SnapError> {
    let envelope = open(bytes)?;
    if envelope.kind != SnapKind::Weighted {
        return Err(SnapError::WrongKind { expected: SnapKind::Weighted, found: envelope.kind });
    }
    let common = decode_common(&envelope)?;
    let n = common.n;
    let sigma = common.sources.len();

    let offsets = words_u32(SEC_GRAPH_OFFSETS, envelope.section(SEC_GRAPH_OFFSETS)?)?;
    if offsets.len() != n + 1 {
        return Err(structure(format!(
            "META claims {n} vertices, offsets array holds {}",
            offsets.len()
        )));
    }
    let targets = words_u32(SEC_GRAPH_TARGETS, envelope.section(SEC_GRAPH_TARGETS)?)?;
    let weights = words_u64(SEC_GRAPH_WEIGHTS, envelope.section(SEC_GRAPH_WEIGHTS)?)?;
    let graph = WeightedCsrGraph::from_raw_parts(offsets, targets, weights)?;

    let tree_dist = words_u64(SEC_TREE_DIST, envelope.section(SEC_TREE_DIST)?)?;
    let tree_parent = words_u32(SEC_TREE_PARENT, envelope.section(SEC_TREE_PARENT)?)?;
    let tree_order = words_u32(SEC_TREE_ORDER, envelope.section(SEC_TREE_ORDER)?)?;
    let rows = words_u64(SEC_ROWS, envelope.section(SEC_ROWS)?)?;
    let per_tree = sigma.checked_mul(n).ok_or_else(|| structure("σ·n overflows"))?;
    if tree_dist.len() != per_tree || tree_parent.len() != per_tree {
        return Err(structure("tree arrays do not hold σ·n entries"));
    }
    if rows.len() as u64 != common.entry_total {
        return Err(structure(format!(
            "META claims {} row entries, section holds {}",
            common.entry_total,
            rows.len()
        )));
    }

    let mut trees = Vec::with_capacity(sigma);
    let mut tables = Vec::with_capacity(sigma);
    let mut order_cursor = 0usize;
    let mut row_cursor = 0usize;
    for (i, &s) in common.sources.iter().enumerate() {
        let dist = &tree_dist[i * n..(i + 1) * n];
        let parent = &tree_parent[i * n..(i + 1) * n];
        let reachable = dist.iter().filter(|&&d| d != INFINITE_WEIGHT).count();
        if order_cursor + reachable > tree_order.len() {
            return Err(structure("settle orders overrun their section"));
        }
        let order = &tree_order[order_cursor..order_cursor + reachable];
        order_cursor += reachable;
        validate_tree_arrays(s, n, dist, INFINITE_WEIGHT, 0, parent, order)?;
        let tree = WeightedTree::from_parts(
            s,
            dist.to_vec(),
            parent.iter().map(|&p| if p == NO_PARENT { None } else { Some(p as Vertex) }).collect(),
            order.iter().map(|&v| v as Vertex).collect(),
        );
        // Memory-bounding gate, weighted flavour: rows are sized by hop *depth*, and a
        // crafted path-shaped parent array makes Σ depth(t) quadratic in n. Prove the
        // derived total fits the (file-size-bounded) ROWS section before the table
        // constructor allocates it.
        let tree_rows: u64 = (0..n).map(|t| tree.depth(t) as u64).sum();
        if (row_cursor as u64).saturating_add(tree_rows) > rows.len() as u64 {
            return Err(structure(format!("rows of source {s} overrun their section")));
        }
        // The gate above proved the flat stream holds this source's whole row total, so
        // the bulk constructor's exact-payout panic cannot fire.
        let take = tree_rows as usize;
        let table = WeightedReplacementDistances::from_flat_rows(
            &tree,
            &rows[row_cursor..row_cursor + take],
        );
        row_cursor += take;
        trees.push(tree);
        tables.push(table);
    }
    if order_cursor != tree_order.len() {
        return Err(structure("settle-order section has trailing entries"));
    }
    if row_cursor != rows.len() {
        return Err(structure("rows section has trailing entries"));
    }

    let shards = split_shards(common.sources, trees, tables, &common.shard_lens, |s, t, d| {
        WeightedReplacementOracle::from_parts(s, t, d)
    });
    Ok(WeightedSnapshot { graph, shards })
}

/// Splits flat per-source parts back into the builder's shard partition. All inputs are
/// already validated (lengths agree, shard lens sum to σ), so the constructor's asserts
/// cannot fire.
fn split_shards<T, D, O>(
    sources: Vec<Vertex>,
    trees: Vec<T>,
    tables: Vec<D>,
    shard_lens: &[usize],
    make: impl Fn(Vec<Vertex>, Vec<T>, Vec<D>) -> O,
) -> Vec<O> {
    let mut sources = sources.into_iter();
    let mut trees = trees.into_iter();
    let mut tables = tables.into_iter();
    shard_lens
        .iter()
        .map(|&len| {
            make(
                sources.by_ref().take(len).collect(),
                trees.by_ref().take(len).collect(),
                tables.by_ref().take(len).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{cycle_graph, grid_graph, path_graph};
    use msrp_graph::{Edge, Graph, WeightedGraph};

    fn demo_shards(g: &Graph, splits: &[&[Vertex]]) -> Vec<ReplacementPathOracle> {
        splits.iter().map(|s| ReplacementPathOracle::build_exact(g, s)).collect()
    }

    #[test]
    fn round_trip_preserves_every_row() {
        let g = grid_graph(5, 6);
        let shards = demo_shards(&g, &[&[0, 7], &[29]]);
        let bytes = encode_snapshot(&g.freeze(), &shards);
        let decoded = decode_snapshot(&bytes).expect("round trip");
        assert_eq!(decoded.graph, g.freeze());
        assert_eq!(decoded.shards.len(), shards.len());
        for (a, b) in decoded.shards.iter().zip(&shards) {
            assert_eq!(a.sources(), b.sources());
            assert_eq!(a.per_source(), b.per_source());
        }
        // And a re-encode is bit-identical: the format has one canonical serialization.
        assert_eq!(encode_snapshot(&decoded.graph, &decoded.shards), bytes);
    }

    #[test]
    fn round_trip_covers_disconnected_graphs() {
        let g = Graph::from_edges(9, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6)]).unwrap();
        let shards = demo_shards(&g, &[&[0, 4]]);
        let bytes = encode_snapshot(&g.freeze(), &shards);
        let decoded = decode_snapshot(&bytes).expect("round trip");
        for (a, b) in decoded.shards.iter().zip(&shards) {
            assert_eq!(a.per_source(), b.per_source());
            for t in 0..9 {
                assert_eq!(
                    a.replacement_distance(4, t, Edge::new(4, 5)),
                    b.replacement_distance(4, t, Edge::new(4, 5))
                );
            }
        }
    }

    #[test]
    fn weighted_round_trip_preserves_every_row() {
        let g = WeightedGraph::from_edges(
            6,
            &[(0, 1, 3), (1, 2, 1), (2, 3, 7), (3, 4, 2), (4, 5, 1), (5, 0, 9), (1, 4, 4)],
        )
        .unwrap()
        .freeze();
        let shards = vec![
            WeightedReplacementOracle::build_exact(&g, &[0, 2]),
            WeightedReplacementOracle::build_exact(&g, &[5]),
        ];
        let bytes = encode_weighted_snapshot(&g, &shards);
        let decoded = decode_weighted_snapshot(&bytes).expect("round trip");
        assert_eq!(decoded.graph, g);
        for (a, b) in decoded.shards.iter().zip(&shards) {
            assert_eq!(a.sources(), b.sources());
            assert_eq!(a.per_source(), b.per_source());
        }
        assert_eq!(encode_weighted_snapshot(&decoded.graph, &decoded.shards), bytes);
    }

    #[test]
    fn inspect_reports_the_metadata() {
        let g = cycle_graph(12);
        let shards = demo_shards(&g, &[&[0], &[3], &[6]]);
        let bytes = encode_snapshot(&g.freeze(), &shards);
        let info = inspect(&bytes).expect("inspect");
        assert_eq!(info.kind, SnapKind::HopMetric);
        assert_eq!(info.vertex_count, 12);
        assert_eq!(info.edge_count, 12);
        assert_eq!(info.source_count, 3);
        assert_eq!(info.shard_count, 3);
        assert_eq!(info.bytes, bytes.len());
        assert_eq!(info.entry_count, shards.iter().map(|s| s.entry_count() as u64).sum::<u64>());
    }

    #[test]
    fn wrong_decoder_fails_closed_with_wrong_kind() {
        let g = cycle_graph(8);
        let bytes = encode_snapshot(&g.freeze(), &demo_shards(&g, &[&[0]]));
        assert_eq!(
            decode_weighted_snapshot(&bytes).err(),
            Some(SnapError::WrongKind { expected: SnapKind::Weighted, found: SnapKind::HopMetric })
        );
    }

    #[test]
    fn empty_and_tiny_buffers_fail_closed() {
        assert!(matches!(decode_snapshot(&[]), Err(SnapError::Truncated { .. })));
        assert!(matches!(decode_snapshot(&[0x4d; 16]), Err(SnapError::Truncated { .. })));
        assert!(matches!(decode_snapshot(&[0u8; 64]), Err(SnapError::BadMagic)));
    }

    #[test]
    fn sections_are_eight_byte_aligned() {
        let g = path_graph(7);
        let bytes = encode_snapshot(&g.freeze(), &demo_shards(&g, &[&[0, 3]]));
        let count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        for i in 0..count {
            let entry = HEADER_BYTES + TABLE_ENTRY_BYTES * i;
            let offset = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap());
            assert_eq!(offset % 8, 0, "section {i} payload must be 8-aligned");
        }
    }

    #[test]
    fn fnv_vector_is_pinned() {
        // Pinned vectors for the lane checksum, so a refactor cannot silently change the
        // function (which would orphan every snapshot on disk). Derivation: FNV-1a-64
        // over 8-byte LE lanes (zero-padded tail), then the length absorbed as a lane.
        assert_eq!(fnv1a64_lanes(b""), 0xaf63_bd4c_8601_b7df);
        assert_eq!(fnv1a64_lanes(b"a"), 0x089b_e307_b544_f397);
        assert_eq!(fnv1a64_lanes(b"foobar"), 0xa1a0_7343_0586_a9ed);
        assert_eq!(fnv1a64_lanes(b"12345678"), 0xa6cd_9ad6_7708_6a9c);
        assert_eq!(fnv1a64_lanes(b"123456789"), 0x7728_f36c_42c5_6342);
        // The absorbed length keeps zero-padding unambiguous.
        assert_ne!(fnv1a64_lanes(b"abc"), fnv1a64_lanes(b"abc\0"));
    }
}
