//! The snapshot corruption battery: every mutation of a valid snapshot — seeded bit
//! flips, truncations, extensions, version skews, kind lies, section-offset lies — must
//! either leave the bytes decoding to a bit-identical oracle or fail closed with a typed
//! [`SnapError`]. Nothing may panic, and nothing may decode to a *different* oracle.
//!
//! Plus the serving-equality half of the contract: on every workload family of the BK
//! differential battery (gnm, Barabási–Albert, grid, cycle, star, disconnected), a
//! snapshot-booted oracle must answer row-for-row what the freshly built one answers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_graph::generators::{
    barabasi_albert, connected_gnm, cycle_graph, gnm, grid_graph, star_graph,
    weighted_connected_gnm,
};
use msrp_graph::Graph;
use msrp_oracle::{build_bk_shards, ReplacementPathOracle, WeightedReplacementOracle};
use msrp_snap::{
    decode_snapshot, decode_weighted_snapshot, encode_snapshot, encode_weighted_snapshot,
    fnv1a64_lanes, inspect, SnapError, SNAP_VERSION,
};

/// The six workload families of `bk_differential.rs`, with evenly spread sources.
fn families() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(101);
    let g_gnm = connected_gnm(48, 120, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(202);
    let g_ba = barabasi_albert(44, 3, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(303);
    let g_disc = gnm(40, 28, &mut rng).unwrap();
    let g_two = Graph::from_edges(
        14,
        &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (7, 8), (8, 9), (9, 7), (9, 10)],
    )
    .unwrap();
    vec![
        ("gnm", g_gnm),
        ("barabasi-albert", g_ba),
        ("grid", grid_graph(6, 7)),
        ("cycle", cycle_graph(30)),
        ("star", star_graph(33)),
        ("gnm-disconnected", g_disc),
        ("two-components", g_two),
    ]
}

fn spread_sources(n: usize, sigma: usize) -> Vec<usize> {
    (0..sigma).map(|i| i * n / sigma).collect()
}

/// Builds a reference snapshot: BK shards over the gnm family (BK and exact tables are
/// bit-identical, and BK is what production serving uses).
fn reference_snapshot() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(101);
    let g = connected_gnm(48, 120, &mut rng).unwrap();
    let sources = spread_sources(48, 4);
    let shards = build_bk_shards(&g, &sources, 2);
    encode_snapshot(&g.freeze(), &shards)
}

/// Asserts two oracle sets answer identically, row for row, via their public tables.
fn assert_same_tables(a: &[ReplacementPathOracle], b: &[ReplacementPathOracle]) {
    assert_eq!(a.len(), b.len(), "shard counts must agree");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.sources(), y.sources());
        assert_eq!(x.per_source(), y.per_source(), "replacement tables must be identical");
    }
}

#[test]
fn every_family_boots_bit_identical_from_its_snapshot() {
    for (name, g) in families() {
        let n = g.vertex_count();
        let sources = spread_sources(n, 3);
        let shards = build_bk_shards(&g, &sources, 2);
        let frozen = g.freeze();
        let bytes = encode_snapshot(&frozen, &shards);
        let snap = decode_snapshot(&bytes).unwrap_or_else(|e| panic!("family {name}: {e}"));
        assert_eq!(snap.graph, frozen, "family {name}: graph must round-trip");
        assert_same_tables(&snap.shards, &shards);
        // Exact-built tables equal BK-built tables, so the booted oracle also answers
        // what a from-scratch exact build answers — the full serving-equality claim.
        let exact = ReplacementPathOracle::build_exact(&g, &sources);
        let merged = ReplacementPathOracle::from_shards(snap.shards);
        assert_eq!(merged.per_source(), exact.per_source(), "family {name}");
        // And one canonical serialization: re-encoding reproduces the bytes.
        assert_eq!(
            encode_snapshot(&snap.graph, &shards),
            bytes,
            "family {name}: re-encode must be bit-identical"
        );
    }
}

#[test]
fn weighted_families_boot_bit_identical() {
    for (seed, n, m) in [(11u64, 36usize, 90usize), (13, 28, 60)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = weighted_connected_gnm(n, m, 1000, &mut rng).unwrap().freeze();
        let sources = spread_sources(n, 3);
        let shards: Vec<WeightedReplacementOracle> = vec![
            WeightedReplacementOracle::build_exact(&g, &sources[..2]),
            WeightedReplacementOracle::build_exact(&g, &sources[2..]),
        ];
        let bytes = encode_weighted_snapshot(&g, &shards);
        let snap = decode_weighted_snapshot(&bytes).expect("weighted round trip");
        assert_eq!(snap.graph, g);
        for (x, y) in snap.shards.iter().zip(&shards) {
            assert_eq!(x.sources(), y.sources());
            assert_eq!(x.per_source(), y.per_source());
        }
        assert_eq!(encode_weighted_snapshot(&snap.graph, &snap.shards), bytes);
    }
}

#[test]
fn seeded_bit_flips_always_fail_closed() {
    let bytes = reference_snapshot();
    let baseline = decode_snapshot(&bytes).expect("pristine bytes decode");
    let mut rng = StdRng::seed_from_u64(0xB17F11B);
    for _ in 0..600 {
        let mut mutated = bytes.clone();
        let bit = rng.gen_range(0..mutated.len() * 8);
        mutated[bit / 8] ^= 1 << (bit % 8);
        // Every byte except the stored checksum is covered by the file checksum, and
        // flipping a stored-checksum bit breaks the comparison itself — so a single
        // bit flip can never decode: fail-closed means a typed error, never a panic.
        // (This arm exists so a future format change that weakens the covering is
        // caught: if it ever decodes, it must be identical.)
        if let Ok(snap) = decode_snapshot(&mutated) {
            assert_eq!(snap.graph, baseline.graph, "bit {bit}: silently wrong graph");
            assert_same_tables(&snap.shards, &baseline.shards);
            panic!("bit {bit}: a flipped bit decoded successfully — checksum gap");
        }
    }
}

#[test]
fn every_truncation_fails_closed() {
    let bytes = reference_snapshot();
    // Every length below the header, then a byte-dense sweep above it.
    for len in (0..bytes.len()).step_by(7).chain([0, 1, 39, 40, 41, bytes.len() - 1]) {
        let truncated = &bytes[..len];
        let err = decode_snapshot(truncated).expect_err("truncation must fail");
        assert!(
            matches!(err, SnapError::Truncated { .. } | SnapError::LengthMismatch { .. }),
            "length {len}: unexpected error {err}"
        );
        assert!(inspect(truncated).is_err(), "inspect must also reject length {len}");
    }
}

#[test]
fn trailing_garbage_fails_closed() {
    let mut bytes = reference_snapshot();
    bytes.extend_from_slice(b"garbage");
    assert!(matches!(decode_snapshot(&bytes), Err(SnapError::LengthMismatch { .. })));
}

/// Recomputes and re-stamps the whole-file checksum after a targeted mutation, so the
/// mutation reaches the validation layer it is aimed at instead of tripping the checksum.
fn restamp(bytes: &mut [u8]) {
    // Independent reimplementation of the file checksum (kept deliberately separate
    // from the crate's): FNV-1a-64 over `bytes[..32] ‖ bytes[40..]` as 8-byte LE lanes
    // with a zero-padded tail, then the stream length absorbed as a final lane.
    let mut stream = bytes[..32].to_vec();
    stream.extend_from_slice(&bytes[40..]);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let absorb = |h: &mut u64, lane: u64| {
        *h ^= lane;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let mut lanes = stream.chunks_exact(8);
    for lane in &mut lanes {
        absorb(&mut h, u64::from_le_bytes(lane.try_into().unwrap()));
    }
    let tail = lanes.remainder();
    if !tail.is_empty() {
        let mut lane = [0u8; 8];
        lane[..tail.len()].copy_from_slice(tail);
        absorb(&mut h, u64::from_le_bytes(lane));
    }
    absorb(&mut h, stream.len() as u64);
    bytes[32..40].copy_from_slice(&h.to_le_bytes());
}

#[test]
fn version_skew_is_a_typed_error_not_a_guess() {
    let bytes = reference_snapshot();
    for skew in [0u32, SNAP_VERSION + 1, SNAP_VERSION + 7, u32::MAX] {
        let mut mutated = bytes.clone();
        mutated[8..12].copy_from_slice(&skew.to_le_bytes());
        restamp(&mut mutated);
        assert_eq!(
            decode_snapshot(&mutated).expect_err("skewed version must fail"),
            SnapError::UnsupportedVersion { found: skew, supported: SNAP_VERSION }
        );
    }
}

#[test]
fn kind_lies_are_typed_errors() {
    let bytes = reference_snapshot();
    // An unknown kind code.
    let mut mutated = bytes.clone();
    mutated[12..16].copy_from_slice(&7u32.to_le_bytes());
    restamp(&mut mutated);
    assert_eq!(decode_snapshot(&mutated).expect_err("unknown kind"), SnapError::UnknownKind(7));
    // A hop-metric file relabeled as weighted: the weighted decoder is now the right
    // kind, but the file has no GRAPH_WEIGHTS section — structural fail, not a panic.
    let mut relabeled = bytes.clone();
    relabeled[12..16].copy_from_slice(&1u32.to_le_bytes());
    restamp(&mut relabeled);
    assert!(matches!(
        decode_weighted_snapshot(&relabeled),
        Err(SnapError::SectionTable { .. } | SnapError::Structure { .. })
    ));
    // And the honest file handed to the wrong decoder.
    assert!(matches!(decode_weighted_snapshot(&bytes), Err(SnapError::WrongKind { .. })));
}

#[test]
fn section_offset_lies_fail_closed() {
    let bytes = reference_snapshot();
    let section_count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    for i in 0..section_count {
        let entry = 40 + 32 * i;
        // Shift the offset by one aligned step: the payload window moves, so either the
        // section checksum no longer matches or the window escapes the file.
        for delta in [8i64, -8, 1 << 40] {
            let mut mutated = bytes.clone();
            let offset = u64::from_le_bytes(mutated[entry + 8..entry + 16].try_into().unwrap());
            let lied = offset.wrapping_add(delta as u64);
            mutated[entry + 8..entry + 16].copy_from_slice(&lied.to_le_bytes());
            restamp(&mut mutated);
            let err = decode_snapshot(&mutated).expect_err("offset lie must fail");
            assert!(
                matches!(err, SnapError::SectionTable { .. } | SnapError::SectionChecksum { .. }),
                "section {i} offset {delta:+}: unexpected error {err}"
            );
        }
        // Lie about the length too.
        for lied_len in [u64::MAX, 1 << 40] {
            let mut mutated = bytes.clone();
            mutated[entry + 16..entry + 24].copy_from_slice(&lied_len.to_le_bytes());
            restamp(&mut mutated);
            assert!(
                matches!(decode_snapshot(&mutated), Err(SnapError::SectionTable { .. })),
                "section {i} length lie must be a table error"
            );
        }
    }
    // A section-count lie: claims more table entries than the file holds.
    let mut mutated = bytes.clone();
    mutated[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp(&mut mutated);
    assert!(matches!(decode_snapshot(&mutated), Err(SnapError::SectionTable { .. })));
}

#[test]
fn word_level_corruption_with_fixed_checksums_fails_structurally() {
    // The deepest layer: flip payload words AND re-stamp both checksum layers, so only
    // the structural validators stand between the lie and a wrong oracle. Two regimes:
    //
    // * *Structural* sections (META, graph arrays, sources, shard lens, tree dist /
    //   parent / order): a word lie must be rejected with a typed error, or — in the
    //   rare identity/padding case — decode to a bit-identical oracle. Never a
    //   different one.
    // * The ROWS section holds the oracle's free answer values; no validator can know
    //   them without re-running the solver. A re-stamped row lie therefore *is* a
    //   well-formed (different) snapshot — integrity checksums are its only defense,
    //   and this test forged them on purpose. The contract there is just: no panic,
    //   and the graph half is untouched.
    let bytes = reference_snapshot();
    let baseline = decode_snapshot(&bytes).expect("pristine decode");
    let section_count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let table_end = 40 + 32 * section_count;
    let section_bounds: Vec<(u32, usize, usize)> = (0..section_count)
        .map(|i| {
            let entry = 40 + 32 * i;
            let id = u32::from_le_bytes(bytes[entry..entry + 4].try_into().unwrap());
            let off = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap()) as usize;
            let len =
                u64::from_le_bytes(bytes[entry + 16..entry + 24].try_into().unwrap()) as usize;
            (id, off, len)
        })
        .collect();
    const ROWS_ID: u32 = 10;
    let mut rng = StdRng::seed_from_u64(0x5EC7);
    let mut structural_survived = 0usize;
    let mut structural_tried = 0usize;
    for _ in 0..400 {
        let mut mutated = bytes.clone();
        let word = table_end + 4 * rng.gen_range(0..(bytes.len() - table_end) / 4);
        let lie: u32 = match rng.gen_range(0..4usize) {
            0 => u32::MAX,
            1 => u32::MAX - 1,
            2 => rng.gen(),
            _ => {
                let old = u32::from_le_bytes(mutated[word..word + 4].try_into().unwrap());
                old.wrapping_add(1)
            }
        };
        mutated[word..word + 4].copy_from_slice(&lie.to_le_bytes());
        // Re-stamp the owning section's checksum, then the file checksum.
        let mut owner = None;
        for &(id, off, len) in &section_bounds {
            if (off..off + len).contains(&word) {
                owner = Some(id);
                let sum = fnv1a64_lanes(&mutated[off..off + len]);
                let entry = section_bounds.iter().position(|&(i, _, _)| i == id).unwrap();
                let entry = 40 + 32 * entry;
                mutated[entry + 24..entry + 32].copy_from_slice(&sum.to_le_bytes());
            }
        }
        restamp(&mut mutated);
        // Typed structural rejection is the common case; anything that decodes must
        // be answer-preserving.
        if let Ok(snap) = decode_snapshot(&mutated) {
            assert_eq!(snap.graph, baseline.graph, "word {word}: silently wrong graph");
            if owner != Some(ROWS_ID) {
                // Identity rewrite or alignment padding: must be answer-preserving.
                assert_same_tables(&snap.shards, &baseline.shards);
                structural_survived += 1;
            }
        }
        if owner.is_some() && owner != Some(ROWS_ID) {
            structural_tried += 1;
        }
    }
    // The validators must be doing real work on the structural sections: the
    // overwhelming majority of those lies must be rejected outright.
    assert!(structural_tried > 50, "seeded sweep barely touched the structural sections");
    assert!(
        structural_survived * 10 < structural_tried,
        "{structural_survived}/{structural_tried} structural word lies decoded — validators \
         too permissive"
    );
}

#[test]
fn inspect_agrees_with_decode_on_the_pristine_file() {
    let bytes = reference_snapshot();
    let info = inspect(&bytes).expect("inspect");
    let snap = decode_snapshot(&bytes).expect("decode");
    assert_eq!(info.vertex_count, snap.graph.vertex_count());
    assert_eq!(info.edge_count, snap.graph.edge_count());
    assert_eq!(info.shard_count, snap.shards.len());
    assert_eq!(info.source_count, snap.shards.iter().map(|s| s.sources().len()).sum::<usize>());
    assert_eq!(info.entry_count, snap.shards.iter().map(|s| s.entry_count() as u64).sum::<u64>());
    assert_eq!(info.bytes, bytes.len());
}
