//! Boolean matrix multiplication and the combinatorial reduction BMM → MSRP
//! (Section 9 of the paper, Theorems 2 and 28).
//!
//! The reduction shows the conditional lower bound: a combinatorial MSRP algorithm running in
//! `T(n, m)` time yields a combinatorial BMM algorithm running in `O(sqrt(n/σ)·T(O(n), O(m)))`
//! time, so under the combinatorial-BMM conjecture the paper's `Õ(m·sqrt(nσ))` term is near
//! optimal. This crate implements:
//!
//! * [`BoolMatrix`] — bit-packed boolean matrices with a naive (cubic, combinatorial) product;
//! * [`multiply_via_msrp`] — the gadget construction of Theorem 28: split the rows of `A` into
//!   `sqrt(n/σ)` batches, build one gadget graph per batch with `σ` source spines, run the MSRP
//!   solver, and decode the product from the replacement distances;
//! * [`reduction`] — the gadget builder and decoder, exposed for the tests and the benches.
//!
//! The exact spine/gadget distances in the paper's prose have off-by-one slips; the derivation
//! used here is written out in [`reduction`] and verified against the naive product.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod reduction;

pub use matrix::BoolMatrix;
pub use reduction::{multiply_via_msrp, GadgetGraph, ReductionPlan};
