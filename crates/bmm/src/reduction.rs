//! The gadget reduction from Boolean matrix multiplication to MSRP (Theorem 28).
//!
//! # Gadget construction
//!
//! To compute `C = A × B` for `n × n` boolean matrices, the rows of `A` are split into
//! `⌈n / (σ·q)⌉` batches of `σ·q` rows each, with `q = ⌈sqrt(n/σ)⌉`. One gadget graph is built
//! per batch; inside it, each of the `σ` sources owns a *spine* `v(1) – v(2) – … – v(q)` (the
//! source is `v(q)`) and `q` of the batch's rows: the `y`-th row of the sub-batch hangs off
//! `v(y)` by a path of `2y − 1` intermediate vertices, i.e. at distance `2y` from `v(y)`.
//! The bipartite part is shared: `a(x) – b(w)` whenever `A[x][w] = 1` and `b(w) – c(z)` whenever
//! `B[w][z] = 1`.
//!
//! # Distances and decoding
//!
//! From a source (the far end of its spine), row `y` of its sub-batch is reached at distance
//! `(q − y) + 2y = q + y`, and a column vertex `c(z)` through that row at `q + y + 2`. Removing
//! the spine edge `(v(y−1), v(y))` cuts rows `1 … y−1` off the spine, and every path that
//! re-enters them through the bipartite part pays at least 4 extra hops. Therefore
//!
//! ```text
//! C[row(y)][z] = 1   ⇔   | source → c(z)  ⋄ (v(y−1), v(y)) |  =  q + y + 2      (y ≥ 2)
//! C[row(1)][z] = 1   ⇔   | source → c(z) |                    =  q + 3
//! ```
//!
//! which is exactly the information the MSRP output contains (the failed spine edge lies on the
//! canonical shortest path whenever the distance is realized through a row with index `≥ y`; for
//! smaller indices the failure does not affect the canonical path and the fault-free distance is
//! returned, which matches the first line).

use msrp_core::{solve_msrp, MsrpOutput, MsrpParams};
use msrp_graph::{Edge, Graph, Vertex};

use crate::matrix::BoolMatrix;

/// How the rows of `A` are split across gadget graphs and sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReductionPlan {
    /// Matrix dimension.
    pub n: usize,
    /// Number of sources per gadget graph (σ).
    pub sigma: usize,
    /// Rows handled by each source (`q = ⌈sqrt(n/σ)⌉` by default).
    pub rows_per_source: usize,
    /// Number of gadget graphs (`⌈n / (σ·q)⌉`).
    pub batches: usize,
}

impl ReductionPlan {
    /// The plan of Theorem 28 for an `n × n` instance with `σ` sources per graph.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `sigma == 0`.
    pub fn for_size(n: usize, sigma: usize) -> Self {
        assert!(n > 0 && sigma > 0, "n and sigma must be positive");
        let sigma = sigma.min(n);
        let rows_per_source = ((n as f64 / sigma as f64).sqrt().ceil() as usize).max(1);
        let rows_per_batch = sigma * rows_per_source;
        let batches = n.div_ceil(rows_per_batch);
        ReductionPlan { n, sigma, rows_per_source, batches }
    }

    /// Rows per gadget graph.
    pub fn rows_per_batch(&self) -> usize {
        self.sigma * self.rows_per_source
    }
}

/// One gadget graph of the reduction, together with the bookkeeping needed to decode the MSRP
/// output back into rows of `C`.
#[derive(Clone, Debug)]
pub struct GadgetGraph {
    /// The constructed graph.
    pub graph: Graph,
    /// Its sources (one per sub-batch that received at least one row).
    pub sources: Vec<Vertex>,
    /// `(source index in `sources`, local 1-based row index y, global row of A)`.
    assignments: Vec<(usize, usize, usize)>,
    /// Spine vertices per source, `spine[j][ℓ-1] = v_j(ℓ)`.
    spines: Vec<Vec<Vertex>>,
    /// Index of the first column vertex: `c(z)` is vertex `c_base + z`.
    c_base: usize,
    /// Spine length `q`.
    q: usize,
}

impl GadgetGraph {
    /// Builds the gadget graph covering rows `batch_start .. batch_start + σ·q` of `A`.
    pub fn build(a: &BoolMatrix, b: &BoolMatrix, batch_start: usize, plan: &ReductionPlan) -> Self {
        let n = plan.n;
        let q = plan.rows_per_source;
        assert_eq!(a.size(), n);
        assert_eq!(b.size(), n);

        // Vertex layout: a(x) = x, b(w) = n + w, c(z) = 2n + z, then spines and gadget chains.
        let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
        for x in 0..n {
            for w in a.row_ones(x) {
                edges.push((x, n + w));
            }
        }
        for w in 0..n {
            for z in b.row_ones(w) {
                edges.push((n + w, 2 * n + z));
            }
        }
        let mut next_vertex = 3 * n;
        let mut sources = Vec::new();
        let mut spines = Vec::new();
        let mut assignments = Vec::new();

        for j in 0..plan.sigma {
            let sub_start = batch_start + j * q;
            if sub_start >= n {
                break;
            }
            let rows_here = q.min(n - sub_start);
            // Spine v(1) … v(q) (always full length so distances are uniform across sources).
            let spine: Vec<Vertex> = (0..q)
                .map(|_| {
                    let v = next_vertex;
                    next_vertex += 1;
                    v
                })
                .collect();
            for pair in spine.windows(2) {
                edges.push((pair[0], pair[1]));
            }
            // Row gadgets: v(y) —(2y−1 intermediates)— a(row).
            for y in 1..=rows_here {
                let row = sub_start + (y - 1);
                let mut prev = spine[y - 1];
                for _ in 0..(2 * y - 1) {
                    let mid = next_vertex;
                    next_vertex += 1;
                    edges.push((prev, mid));
                    prev = mid;
                }
                edges.push((prev, row));
                assignments.push((sources.len(), y, row));
            }
            sources.push(spine[q - 1]);
            spines.push(spine);
        }

        let graph = Graph::from_edges(next_vertex, &edges)
            .expect("gadget construction never produces duplicate edges or self loops");
        GadgetGraph { graph, sources, assignments, spines, c_base: 2 * n, q }
    }

    /// Decodes the MSRP output of this gadget graph into the corresponding rows of `C`.
    pub fn decode(&self, out: &MsrpOutput, c: &mut BoolMatrix) {
        let n = c.size();
        let q = self.q as u32;
        for &(j, y, row) in &self.assignments {
            let source = self.sources[j];
            let expected = q + y as u32 + 2;
            for z in 0..n {
                let target = self.c_base + z;
                let observed = if y == 1 {
                    out.trees[out.source_index(source).expect("source present")]
                        .distance_or_infinite(target)
                } else {
                    let e = Edge::new(self.spines[j][y - 2], self.spines[j][y - 1]);
                    out.distance_avoiding(source, target, e).expect("source present")
                };
                if observed == expected {
                    c.set(row, z, true);
                }
            }
        }
    }

    /// The spine length `q`.
    pub fn spine_length(&self) -> usize {
        self.q
    }

    /// Number of rows of `A` decided by this gadget graph.
    pub fn row_count(&self) -> usize {
        self.assignments.len()
    }
}

/// Computes `C = A × B` by building the gadget graphs of Theorem 28 and running the MSRP solver
/// on each of them.
///
/// # Panics
///
/// Panics if the matrices have different sizes or are empty.
pub fn multiply_via_msrp(
    a: &BoolMatrix,
    b: &BoolMatrix,
    sigma: usize,
    params: &MsrpParams,
) -> BoolMatrix {
    assert_eq!(a.size(), b.size(), "matrix dimensions must match");
    let n = a.size();
    assert!(n > 0, "matrices must be non-empty");
    let plan = ReductionPlan::for_size(n, sigma);
    let mut c = BoolMatrix::zeros(n);
    let mut batch_start = 0;
    while batch_start < n {
        let gadget = GadgetGraph::build(a, b, batch_start, &plan);
        let out = solve_msrp(&gadget.graph, &gadget.sources, params);
        gadget.decode(&out, &mut c);
        batch_start += plan.rows_per_batch();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_covers_all_rows() {
        for &(n, sigma) in &[(10usize, 1usize), (16, 2), (25, 4), (7, 16)] {
            let plan = ReductionPlan::for_size(n, sigma);
            assert!(plan.rows_per_batch() * plan.batches >= n);
            assert!(plan.rows_per_source >= 1);
        }
    }

    #[test]
    fn gadget_graph_has_the_claimed_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 12;
        let a = BoolMatrix::random(n, 0.3, &mut rng);
        let b = BoolMatrix::random(n, 0.3, &mut rng);
        let plan = ReductionPlan::for_size(n, 2);
        let g = GadgetGraph::build(&a, &b, 0, &plan);
        // 3n matrix vertices + O(σ q²) gadget vertices = O(n) per the theorem.
        assert!(
            g.graph.vertex_count()
                <= 3 * n + 2 * plan.sigma * plan.rows_per_source * (plan.rows_per_source + 2)
        );
        assert_eq!(g.sources.len(), plan.sigma);
        assert!(g.row_count() <= plan.rows_per_batch());
        assert!(g.spine_length() >= 1);
    }

    #[test]
    fn reduction_matches_naive_product_small() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, sigma, density) in &[(6usize, 1usize, 0.3), (8, 2, 0.25), (10, 2, 0.15)] {
            let a = BoolMatrix::random(n, density, &mut rng);
            let b = BoolMatrix::random(n, density, &mut rng);
            let expected = a.multiply_naive(&b);
            let got = multiply_via_msrp(&a, &b, sigma, &MsrpParams::default());
            assert_eq!(got, expected, "n={n}, sigma={sigma}");
        }
    }

    #[test]
    fn reduction_handles_identity_and_zero() {
        let n = 9;
        let id = BoolMatrix::identity(n);
        let zero = BoolMatrix::zeros(n);
        let params = MsrpParams::default();
        assert_eq!(multiply_via_msrp(&id, &id, 2, &params), id);
        assert_eq!(multiply_via_msrp(&id, &zero, 2, &params), zero);
        assert_eq!(multiply_via_msrp(&zero, &id, 3, &params), zero);
    }

    #[test]
    fn reduction_with_sigma_larger_than_n() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = BoolMatrix::random(5, 0.4, &mut rng);
        let b = BoolMatrix::random(5, 0.4, &mut rng);
        let expected = a.multiply_naive(&b);
        assert_eq!(multiply_via_msrp(&a, &b, 64, &MsrpParams::default()), expected);
    }

    #[test]
    fn dense_matrices_are_decoded_correctly() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = BoolMatrix::random(8, 0.7, &mut rng);
        let b = BoolMatrix::random(8, 0.7, &mut rng);
        assert_eq!(multiply_via_msrp(&a, &b, 2, &MsrpParams::default()), a.multiply_naive(&b));
    }
}
