//! Bit-packed boolean matrices and the naive combinatorial product.

use rand::Rng;

/// A square boolean matrix stored as bit-packed rows.
///
/// ```
/// use msrp_bmm::BoolMatrix;
///
/// let mut a = BoolMatrix::zeros(3);
/// a.set(0, 1, true);
/// a.set(1, 2, true);
/// let b = a.clone();
/// let c = a.multiply_naive(&b);
/// assert!(c.get(0, 2)); // A[0][1] & B[1][2]
/// assert!(!c.get(2, 0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoolMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BoolMatrix {
    /// An `n × n` all-zero matrix.
    pub fn zeros(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BoolMatrix { n, words_per_row, bits: vec![0; n * words_per_row] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// A random matrix where every entry is 1 independently with probability `density`.
    pub fn random<R: Rng + ?Sized>(n: usize, density: f64, rng: &mut R) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if rng.gen_bool(density.clamp(0.0, 1.0)) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Builds a matrix from rows of booleans.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    pub fn from_rows(rows: &[Vec<bool>]) -> Self {
        let n = rows.len();
        let mut m = Self::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Dimension `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "index out of range");
        let word = self.bits[i * self.words_per_row + j / 64];
        (word >> (j % 64)) & 1 == 1
    }

    /// Sets entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(i < self.n && j < self.n, "index out of range");
        let w = &mut self.bits[i * self.words_per_row + j / 64];
        if value {
            *w |= 1 << (j % 64);
        } else {
            *w &= !(1 << (j % 64));
        }
    }

    /// Number of 1-entries.
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices `j` with `A[i][j] = 1`.
    pub fn row_ones(&self, i: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| self.get(i, j)).collect()
    }

    /// The naive combinatorial boolean product (`O(n³ / w)` with word-parallel rows).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn multiply_naive(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut c = BoolMatrix::zeros(self.n);
        for i in 0..self.n {
            let a_row = &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row];
            let c_row = i * c.words_per_row;
            for k in 0..self.n {
                if (a_row[k / 64] >> (k % 64)) & 1 == 1 {
                    let b_row = &other.bits[k * other.words_per_row..(k + 1) * other.words_per_row];
                    let c_words = &mut c.bits[c_row..c_row + self.words_per_row];
                    for (cw, &bw) in c_words.iter_mut().zip(b_row) {
                        *cw |= bw;
                    }
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let mut m = BoolMatrix::zeros(130);
        m.set(0, 0, true);
        m.set(0, 63, true);
        m.set(0, 64, true);
        m.set(129, 129, true);
        assert!(m.get(0, 0) && m.get(0, 63) && m.get(0, 64) && m.get(129, 129));
        assert!(!m.get(1, 0));
        m.set(0, 64, false);
        assert!(!m.get(0, 64));
        assert_eq!(m.ones(), 3);
    }

    #[test]
    fn identity_is_a_multiplicative_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BoolMatrix::random(40, 0.1, &mut rng);
        let id = BoolMatrix::identity(40);
        assert_eq!(a.multiply_naive(&id), a);
        assert_eq!(id.multiply_naive(&a), a);
    }

    #[test]
    fn naive_product_matches_definition() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BoolMatrix::random(25, 0.2, &mut rng);
        let b = BoolMatrix::random(25, 0.2, &mut rng);
        let c = a.multiply_naive(&b);
        for i in 0..25 {
            for j in 0..25 {
                let expected = (0..25).any(|k| a.get(i, k) && b.get(k, j));
                assert_eq!(c.get(i, j), expected, "({i}, {j})");
            }
        }
    }

    #[test]
    fn from_rows_and_row_ones() {
        let m = BoolMatrix::from_rows(&[
            vec![false, true, false],
            vec![true, false, true],
            vec![false, false, false],
        ]);
        assert_eq!(m.row_ones(0), vec![1]);
        assert_eq!(m.row_ones(1), vec![0, 2]);
        assert!(m.row_ones(2).is_empty());
        assert_eq!(m.ones(), 3);
        assert_eq!(m.size(), 3);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_rows_panic() {
        let _ = BoolMatrix::from_rows(&[vec![true], vec![true, false]]);
    }

    #[test]
    fn random_density_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(BoolMatrix::random(10, 0.0, &mut rng).ones(), 0);
        assert_eq!(BoolMatrix::random(10, 1.0, &mut rng).ones(), 100);
    }
}
