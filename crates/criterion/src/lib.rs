//! Offline shim for the subset of the `criterion` 0.5 API used by this workspace.
//!
//! The build environment has no network access, so the real `criterion` crate cannot be
//! fetched from crates.io. This shim keeps the six bench targets compiling and producing
//! honest wall-clock measurements:
//!
//! * [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`] with the methods the
//!   benches call (`benchmark_group`, `sample_size`, `measurement_time`, `warm_up_time`,
//!   `bench_function`, `bench_with_input`, `finish`, `iter`);
//! * [`criterion_group!`] / [`criterion_main!`];
//! * [`black_box`] (re-exported from `std::hint`).
//!
//! Measurement model: each benchmark is warmed up for the configured warm-up time, an
//! iteration count is calibrated so one sample lasts roughly `measurement_time /
//! sample_size`, and `sample_size` samples of mean-per-iteration wall time are collected.
//! The median / min / max are printed in a criterion-like format. There is no statistical
//! regression analysis, HTML report, or saved baseline comparison.
//!
//! When the `CRITERION_SUMMARY` environment variable names a file, one JSON line per
//! benchmark (`{"id": ..., "median_ns": ..., ...}`) is appended to it — the experiment
//! harness uses this to snapshot `BENCH_baseline.json`.
//!
//! Command-line behaviour: `--test` (passed by `cargo test` to `harness = false` targets)
//! runs every benchmark exactly once; a positional argument filters benchmarks by
//! substring; all other flags are accepted and ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The identifier of a parameterized benchmark: a function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/param`.
    pub fn new<S: Into<String>, P: Display>(name: S, param: P) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }
}

/// Either a plain string id or a [`BenchmarkId`]; mirrors criterion's `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        if self.param.is_empty() {
            self.name
        } else {
            format!("{}/{}", self.name, self.param)
        }
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Runs `routine` `iters` times and records the total elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Cli {
    test_mode: bool,
    filter: Option<String>,
}

impl Cli {
    fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        // Criterion flags that consume a separate value argument; the value must not be
        // mistaken for the positional benchmark filter.
        const VALUE_FLAGS: [&str; 12] = [
            "--save-baseline",
            "--baseline",
            "--load-baseline",
            "--sample-size",
            "--measurement-time",
            "--warm-up-time",
            "--significance-level",
            "--noise-threshold",
            "--confidence-level",
            "--nresamples",
            "--color",
            "--profile-time",
        ];
        let mut cli = Cli::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => cli.test_mode = true,
                s if VALUE_FLAGS.contains(&s) => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {} // accept and ignore other criterion/libtest flags
                s => cli.filter = Some(s.to_string()),
            }
        }
        cli
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    config: Config,
    cli: Cli,
}

impl Criterion {
    /// Applies command-line arguments (`--test`, substring filter); mirrors criterion.
    pub fn configure_from_args(mut self) -> Self {
        self.cli = Cli::from_args();
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup { criterion: self, name: name.into(), config }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let config = self.config;
        run_benchmark(self, None, id, config, f);
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let (name, config) = (self.name.clone(), self.config);
        run_benchmark(self.criterion, Some(&name), &id.into_id_string(), config, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &D),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; all output is already flushed).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    config: Config,
    mut routine: F,
) {
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &criterion.cli.filter {
        if !full_id.contains(filter.as_str()) {
            return;
        }
    }

    let mut run = |iters: u64| -> Duration {
        let mut b = Bencher { iters, elapsed: Duration::ZERO, _marker: std::marker::PhantomData };
        routine(&mut b);
        b.elapsed
    };

    if criterion.cli.test_mode {
        run(1);
        println!("{full_id}: test run ok");
        return;
    }

    // Warm up and calibrate: grow the iteration count until a batch exceeds the warm-up
    // time, giving an estimate of the per-iteration cost.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let t = run(iters);
        if t >= config.warm_up_time || iters >= 1 << 30 {
            break t.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };

    let sample_target = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters_per_sample = ((sample_target / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);

    let mut samples_ns: Vec<f64> = (0..config.sample_size)
        .map(|_| run(iters_per_sample).as_secs_f64() * 1e9 / iters_per_sample as f64)
        .collect();
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];

    println!(
        "{full_id:<50} time: [{} {} {}]  ({} samples × {} iters)",
        format_ns(min),
        format_ns(median),
        format_ns(max),
        config.sample_size,
        iters_per_sample
    );

    if let Ok(path) = std::env::var("CRITERION_SUMMARY") {
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"id\": \"{full_id}\", \"median_ns\": {median:.1}, \"min_ns\": {min:.1}, \
                 \"max_ns\": {max:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                config.sample_size, iters_per_sample
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("solve", 128).into_id_string(), "solve/128");
        assert_eq!("plain".into_id_string(), "plain");
    }

    #[test]
    fn bencher_measures_the_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 37, elapsed: Duration::ZERO, _marker: Default::default() };
        b.iter(|| count += 1);
        assert_eq!(count, 37);
        assert!(b.elapsed > Duration::ZERO || count == 37);
    }

    #[test]
    fn groups_run_their_benchmarks_in_test_mode() {
        let mut c = Criterion::default();
        c.cli.test_mode = true;
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2)
                .measurement_time(Duration::from_millis(1))
                .warm_up_time(Duration::from_millis(1));
            g.bench_function("a", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("b", 1), &1, |b, &x| b.iter(|| runs += x));
            g.finish();
        }
        assert_eq!(runs, 2);
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut c = Criterion::default();
        c.cli.test_mode = true;
        c.cli.filter = Some("match_me".to_string());
        let mut runs = 0;
        c.bench_function("other", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        c.bench_function("match_me_too", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn value_taking_flags_do_not_become_the_filter() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let cli = Cli::parse(args(&["--save-baseline", "main", "--sample-size", "50"]));
        assert_eq!(cli.filter, None);
        assert!(!cli.test_mode);
        let cli = Cli::parse(args(&["--save-baseline", "main", "bfs", "--test"]));
        assert_eq!(cli.filter.as_deref(), Some("bfs"));
        assert!(cli.test_mode);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(12.5), "12.50 ns");
        assert_eq!(format_ns(12_500.0), "12.50 µs");
        assert_eq!(format_ns(12_500_000.0), "12.50 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
