//! Property-based tests of the graph substrate: BFS/shortest-path-tree invariants, LCA
//! consistency, bridge detection vs. its definition, and the cuckoo map vs. a model.

use std::collections::HashMap;

use msrp_graph::{
    analyze_connectivity, bfs, bfs_avoiding_edge, CuckooHashMap, Edge, Graph, ShortestPathTree,
    INFINITE_DISTANCE,
};
use proptest::prelude::*;

/// A random simple graph on 2..=24 vertices given as an edge list (possibly disconnected).
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..=24)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0usize..n, 0usize..n), 0..(3 * n));
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut g = Graph::new(n);
            for (u, v) in edges {
                if u != v {
                    let _ = g.add_edge_if_absent(u, v);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn bfs_distances_satisfy_the_triangle_property(g in arbitrary_graph()) {
        let r = bfs(&g, 0);
        for e in g.edges() {
            let (u, v) = e.endpoints();
            if r.dist[u] != INFINITE_DISTANCE && r.dist[v] != INFINITE_DISTANCE {
                prop_assert!(r.dist[u].abs_diff(r.dist[v]) <= 1,
                    "adjacent vertices differ by more than one BFS level");
            }
        }
        for v in 0..g.vertex_count() {
            if let Some(p) = r.parent[v] {
                prop_assert_eq!(r.dist[v], r.dist[p] + 1);
                prop_assert!(g.has_edge(v, p));
            }
        }
    }

    #[test]
    fn tree_paths_are_real_shortest_paths(g in arbitrary_graph()) {
        let tree = ShortestPathTree::build(&g, 0);
        for t in 0..g.vertex_count() {
            if let Some(path) = tree.path_from_source(t) {
                prop_assert_eq!(path.len() as u32 - 1, tree.distance(t).unwrap());
                for w in path.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
                for (i, e) in tree.path_edges(t).iter().enumerate() {
                    prop_assert_eq!(tree.edge_position_on_path(t, *e), Some(i));
                    prop_assert!(tree.path_contains_edge(t, *e));
                }
            }
        }
    }

    #[test]
    fn lca_is_an_ancestor_of_both_arguments(g in arbitrary_graph()) {
        let tree = ShortestPathTree::build(&g, 0);
        let lca = tree.lca_index();
        for u in 0..g.vertex_count() {
            for v in 0..g.vertex_count() {
                if let Some(a) = lca.lca(u, v) {
                    prop_assert!(tree.is_ancestor(a, u));
                    prop_assert!(tree.is_ancestor(a, v));
                    prop_assert_eq!(lca.is_ancestor(a, u), true);
                }
            }
        }
    }

    #[test]
    fn bridges_are_exactly_the_disconnecting_edges(g in arbitrary_graph()) {
        let report = analyze_connectivity(&g);
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let disconnects = bfs_avoiding_edge(&g, u, e).dist[v] == INFINITE_DISTANCE;
            prop_assert_eq!(report.is_bridge(e), disconnects, "edge {}", e);
        }
    }

    #[test]
    fn removing_an_edge_never_shrinks_distances(g in arbitrary_graph()) {
        let base = bfs(&g, 0);
        if let Some(e) = g.edges().next() {
            let alt = bfs_avoiding_edge(&g, 0, e);
            for v in 0..g.vertex_count() {
                prop_assert!(alt.dist[v] >= base.dist[v]);
            }
        }
    }

    #[test]
    fn cuckoo_map_behaves_like_the_std_hashmap(ops in proptest::collection::vec((0u16..64, 0u32..1000, proptest::bool::ANY), 0..400)) {
        let mut cuckoo: CuckooHashMap<u16, u32> = CuckooHashMap::new();
        let mut model: HashMap<u16, u32> = HashMap::new();
        for (k, v, remove) in ops {
            if remove {
                prop_assert_eq!(cuckoo.remove(&k), model.remove(&k));
            } else {
                prop_assert_eq!(cuckoo.insert(k, v), model.insert(k, v));
            }
            prop_assert_eq!(cuckoo.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(cuckoo.get(k), Some(v));
        }
    }

    #[test]
    fn edge_normalization_is_an_involution(u in 0usize..100, v in 0usize..100) {
        prop_assume!(u != v);
        let e = Edge::new(u, v);
        prop_assert_eq!(e, Edge::new(v, u));
        prop_assert_eq!(e.other(u), Some(v));
        prop_assert_eq!(e.other(v), Some(u));
        prop_assert!(e.lo() < e.hi());
    }
}
