//! Property-based tests of the graph substrate: BFS/shortest-path-tree invariants, LCA
//! consistency, bridge detection vs. its definition, and the cuckoo map vs. a model.
//!
//! Each property is checked over a fixed number of cases generated from a pinned
//! `StdRng` seed, so a failure is reproducible from the case index alone (the suite used
//! to rely on `proptest`, whose default configuration reruns with fresh entropy).

use std::collections::HashMap;

use msrp_graph::{
    analyze_connectivity, bfs, bfs_avoiding_edge, CuckooHashMap, Edge, Graph, ShortestPathTree,
    INFINITE_DISTANCE,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

/// A random simple graph on 2..=24 vertices built from a random edge list (possibly
/// disconnected).
fn arbitrary_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(2usize..=24);
    let mut g = Graph::new(n);
    for _ in 0..rng.gen_range(0..3 * n) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            let _ = g.add_edge_if_absent(u, v);
        }
    }
    g
}

#[test]
fn bfs_distances_satisfy_the_triangle_property() {
    let mut rng = StdRng::seed_from_u64(0xB1F5);
    for case in 0..CASES {
        let g = arbitrary_graph(&mut rng);
        let r = bfs(&g, 0);
        for e in g.edges() {
            let (u, v) = e.endpoints();
            if r.dist[u] != INFINITE_DISTANCE && r.dist[v] != INFINITE_DISTANCE {
                assert!(
                    r.dist[u].abs_diff(r.dist[v]) <= 1,
                    "case {case}: adjacent vertices differ by more than one BFS level"
                );
            }
        }
        for v in 0..g.vertex_count() {
            if let Some(p) = r.parent[v] {
                assert_eq!(r.dist[v], r.dist[p] + 1, "case {case}");
                assert!(g.has_edge(v, p), "case {case}");
            }
        }
    }
}

#[test]
fn tree_paths_are_real_shortest_paths() {
    let mut rng = StdRng::seed_from_u64(0x7EE5);
    for case in 0..CASES {
        let g = arbitrary_graph(&mut rng);
        let tree = ShortestPathTree::build(&g, 0);
        for t in 0..g.vertex_count() {
            if let Some(path) = tree.path_from_source(t) {
                assert_eq!(path.len() as u32 - 1, tree.distance(t).unwrap(), "case {case}");
                for w in path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "case {case}");
                }
                for (i, e) in tree.path_edges(t).iter().enumerate() {
                    assert_eq!(tree.edge_position_on_path(t, *e), Some(i), "case {case}");
                    assert!(tree.path_contains_edge(t, *e), "case {case}");
                }
            }
        }
    }
}

#[test]
fn lca_is_an_ancestor_of_both_arguments() {
    let mut rng = StdRng::seed_from_u64(0x1CA);
    for case in 0..CASES {
        let g = arbitrary_graph(&mut rng);
        let tree = ShortestPathTree::build(&g, 0);
        let lca = tree.lca_index();
        for u in 0..g.vertex_count() {
            for v in 0..g.vertex_count() {
                if let Some(a) = lca.lca(u, v) {
                    assert!(tree.is_ancestor(a, u), "case {case}");
                    assert!(tree.is_ancestor(a, v), "case {case}");
                    assert!(lca.is_ancestor(a, u), "case {case}");
                }
            }
        }
    }
}

#[test]
fn bridges_are_exactly_the_disconnecting_edges() {
    let mut rng = StdRng::seed_from_u64(0xB41D6E);
    for case in 0..CASES {
        let g = arbitrary_graph(&mut rng);
        let report = analyze_connectivity(&g);
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let disconnects = bfs_avoiding_edge(&g, u, e).dist[v] == INFINITE_DISTANCE;
            assert_eq!(report.is_bridge(e), disconnects, "case {case}: edge {e}");
        }
    }
}

#[test]
fn removing_an_edge_never_shrinks_distances() {
    let mut rng = StdRng::seed_from_u64(0x5421);
    for case in 0..CASES {
        let g = arbitrary_graph(&mut rng);
        let base = bfs(&g, 0);
        let first_edge = g.edges().next();
        if let Some(e) = first_edge {
            let alt = bfs_avoiding_edge(&g, 0, e);
            for v in 0..g.vertex_count() {
                assert!(alt.dist[v] >= base.dist[v], "case {case}");
            }
        }
    }
}

#[test]
fn cuckoo_map_behaves_like_the_std_hashmap() {
    let mut rng = StdRng::seed_from_u64(0xC0C0);
    for case in 0..CASES {
        let mut cuckoo: CuckooHashMap<u16, u32> = CuckooHashMap::new();
        let mut model: HashMap<u16, u32> = HashMap::new();
        for _ in 0..rng.gen_range(0usize..400) {
            let k = rng.gen_range(0u16..64);
            let v = rng.gen_range(0u32..1000);
            if rng.gen_bool(0.5) {
                assert_eq!(cuckoo.remove(&k), model.remove(&k), "case {case}");
            } else {
                assert_eq!(cuckoo.insert(k, v), model.insert(k, v), "case {case}");
            }
            assert_eq!(cuckoo.len(), model.len(), "case {case}");
        }
        for (k, v) in &model {
            assert_eq!(cuckoo.get(k), Some(v), "case {case}");
        }
    }
}

#[test]
fn edge_normalization_is_an_involution() {
    let mut rng = StdRng::seed_from_u64(0xED6E);
    let mut checked = 0;
    while checked < CASES {
        let u = rng.gen_range(0usize..100);
        let v = rng.gen_range(0usize..100);
        if u == v {
            continue;
        }
        checked += 1;
        let e = Edge::new(u, v);
        assert_eq!(e, Edge::new(v, u));
        assert_eq!(e.other(u), Some(v));
        assert_eq!(e.other(v), Some(u));
        assert!(e.lo() < e.hi());
    }
}
