//! Differential property suite for the three BFS kernels.
//!
//! The contract this file pins: the top-down [`BfsScratch`], the direction-optimizing
//! [`DirOptScratch`] and the 64-way bit-parallel [`MultiBfsScratch`] are *the same
//! function*. On every seeded workload family — connected gnm, preferential attachment,
//! dense cores with pendant tails, grid, star, and disconnected graphs — and for both the
//! plain and the edge-avoiding
//! variants, `dist` must agree bit for bit across all three, and `parent`/`order` must
//! agree between the two tree-producing kernels (the wave kernel produces distances; its
//! tree route [`bfs_trees_wave`] is pinned against per-source scratch trees). Hostile
//! avoided edges — absent edges, edges with out-of-range endpoints, edges touching the
//! source — must be survivable at the kernel level with identical answers, not just at the
//! protocol boundary.

use msrp_graph::generators::{barabasi_albert, connected_gnm, gnm, grid_graph, star_graph};
use msrp_graph::{
    bfs_trees_wave, BfsScratch, CsrGraph, DirOptScratch, Edge, Graph, MultiBfsScratch,
    ShortestPathTree, Vertex, WAVE_LANES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense random core with a pendant path: the one family guaranteed to flip the
/// cost-honest direction heuristic with *nonempty* unvisited work (the core's second level
/// owns far more edges than the tail), then flip back for the tail.
fn dense_core_with_tail(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let core = connected_gnm(50, 500, &mut rng).unwrap();
    let mut edges: Vec<(Vertex, Vertex)> = core.edges().map(|e| e.endpoints()).collect();
    edges.extend((49..59).map(|u| (u, u + 1)));
    Graph::from_edges(60, &edges).unwrap()
}

/// The seeded families the suite sweeps. Sizes are chosen so the direction heuristic
/// actually flips (the dense-core family goes bottom-up on its saturated level; the others
/// flip at most on their final levels under the cost-honest α) while the whole suite stays
/// test-suite fast.
fn families() -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    for seed in [3u64, 17, 92] {
        let mut rng = StdRng::seed_from_u64(seed);
        out.push((format!("gnm/{seed}"), connected_gnm(96, 4 * 96, &mut rng).unwrap()));
        let mut rng = StdRng::seed_from_u64(seed);
        out.push((format!("ba/{seed}"), barabasi_albert(80, 3, &mut rng).unwrap()));
        let mut rng = StdRng::seed_from_u64(seed);
        // Sparse gnm below the connectivity threshold: several components plus isolated
        // vertices, so unreachable handling is exercised on every kernel.
        out.push((format!("disconnected/{seed}"), gnm(70, 40, &mut rng).unwrap()));
        out.push((format!("dense-core/{seed}"), dense_core_with_tail(seed)));
    }
    out.push(("grid".into(), grid_graph(9, 11)));
    out.push(("star".into(), star_graph(60)));
    out
}

fn sample_sources(n: usize) -> Vec<Vertex> {
    [0, 1, n / 3, n / 2, n - 1].into_iter().filter(|&s| s < n).collect()
}

/// Edges worth avoiding in the differential: every tree edge of the source (the brute-force
/// loop's shape), a few non-tree edges, and the hostile shapes the protocol layer normally
/// filters — absent edges between real vertices, edges with one or both endpoints out of
/// range, and an edge incident to the source itself.
fn avoided_edges(g: &CsrGraph, s: Vertex, tree: &ShortestPathTree) -> Vec<Edge> {
    let n = g.vertex_count();
    let mut edges: Vec<Edge> = (0..n)
        .filter_map(|c| tree.parent(c).map(|p| Edge::new(p, c)))
        .take(WAVE_LANES - 8)
        .collect();
    edges.extend(g.edge_vec().into_iter().take(4));
    // Hostile: an absent edge between in-range vertices (if one exists), out-of-range
    // endpoints on one or both sides, and the first incident edge of the source.
    if let Some(w) = (0..n).find(|&w| w != s && !g.has_edge(s, w)) {
        edges.push(Edge::new(s, w));
    }
    edges.push(Edge::new(0, n + 3));
    edges.push(Edge::new(n, n + 7));
    edges.push(Edge::new(n - 1, usize::MAX - 1));
    if let Some(&w) = g.neighbor_row(s).first() {
        edges.push(Edge::new(s, w as usize));
    }
    edges.truncate(WAVE_LANES);
    edges
}

#[test]
fn all_three_kernels_agree_on_every_family() {
    let mut td = BfsScratch::new();
    let mut dopt = DirOptScratch::new();
    let mut wave = MultiBfsScratch::new();
    for (name, g) in families() {
        let csr = g.freeze();
        let n = csr.vertex_count();
        let sources = sample_sources(n);
        // Plain runs: one wave over all sampled sources, sequential kernels per source.
        wave.run_wave(&csr, &sources);
        for (lane, &s) in sources.iter().enumerate() {
            td.run(&csr, s);
            dopt.run(&csr, s);
            assert_eq!(dopt.dist(), td.dist(), "{name}: dir-opt dist s={s}");
            assert_eq!(dopt.parent_raw(), td.parent_raw(), "{name}: dir-opt parent s={s}");
            assert_eq!(dopt.order(), td.order(), "{name}: dir-opt order s={s}");
            assert_eq!(wave.lane_dist_vec(lane), td.dist(), "{name}: wave dist s={s}");
        }
        // Tree route of the wave kernel: bit-identical trees, not just distances.
        let trees = bfs_trees_wave(&csr, &sources, &mut wave);
        for (tree, &s) in trees.iter().zip(&sources) {
            let reference = ShortestPathTree::build_with_scratch(&csr, s, &mut td);
            assert_eq!(tree.distances(), reference.distances(), "{name}: tree dist s={s}");
            assert_eq!(tree.bfs_order(), reference.bfs_order(), "{name}: tree order s={s}");
            for v in 0..n {
                assert_eq!(tree.parent(v), reference.parent(v), "{name}: tree parent s={s} v={v}");
            }
        }
    }
}

#[test]
fn avoiding_runs_agree_including_hostile_edges() {
    let mut td = BfsScratch::new();
    let mut dopt = DirOptScratch::new();
    let mut wave = MultiBfsScratch::new();
    for (name, g) in families() {
        let csr = g.freeze();
        let n = csr.vertex_count();
        for &s in &sample_sources(n)[..2.min(n)] {
            let tree = ShortestPathTree::build_with_scratch(&csr, s, &mut td);
            let edges = avoided_edges(&csr, s, &tree);
            wave.run_avoiding_wave(&csr, s, &edges);
            for (lane, &e) in edges.iter().enumerate() {
                td.run_avoiding(&csr, s, e);
                dopt.run_avoiding(&csr, s, e);
                assert_eq!(dopt.dist(), td.dist(), "{name}: dist s={s} e={e}");
                assert_eq!(dopt.parent_raw(), td.parent_raw(), "{name}: parent s={s} e={e}");
                assert_eq!(dopt.order(), td.order(), "{name}: order s={s} e={e}");
                assert_eq!(wave.lane_dist_vec(lane), td.dist(), "{name}: wave s={s} e={e}");
            }
        }
    }
}

#[test]
fn avoiding_an_absent_or_out_of_range_edge_equals_the_plain_run() {
    // Hostile avoided edges must be inert: the kernels may not skip a single real edge.
    let g = grid_graph(5, 6);
    let csr = g.freeze();
    let n = csr.vertex_count();
    let mut td = BfsScratch::new();
    let mut dopt = DirOptScratch::new();
    let mut wave = MultiBfsScratch::new();
    let hostile = [Edge::new(0, 7), Edge::new(n, n + 1), Edge::new(3, n + 9)];
    assert!(!csr.has_edge(0, 7), "premise: {} is absent", hostile[0]);
    for s in [0usize, n - 1] {
        td.run(&csr, s);
        let plain = td.to_result();
        wave.run_avoiding_wave(&csr, s, &hostile);
        for (lane, &e) in hostile.iter().enumerate() {
            td.run_avoiding(&csr, s, e);
            dopt.run_avoiding(&csr, s, e);
            assert_eq!(td.to_result(), plain, "sequential s={s} e={e}");
            assert_eq!(dopt.to_result(), plain, "dir-opt s={s} e={e}");
            assert_eq!(wave.lane_dist_vec(lane), plain.dist, "wave s={s} e={e}");
        }
    }
}

#[test]
#[should_panic(expected = "self loops")]
fn duplicate_endpoint_edges_are_rejected_before_any_kernel_sees_them() {
    // A degenerate "avoid (u, u)" request cannot reach a kernel: `Edge` refuses to
    // represent duplicate endpoints, so every kernel shares one rejection point.
    let _ = Edge::new(4, 4);
}
