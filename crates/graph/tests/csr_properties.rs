//! Property suite for the CSR traversal core: seeded `connected_gnm` and `barabasi_albert`
//! instances must freeze/thaw round-trip exactly, and every traversal over [`CsrGraph`] must
//! agree bit-for-bit (dist, parent, order) with the seed [`Graph`] implementation — the
//! determinism guarantee the oracle, the serving layer and every pinned experiment rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;

use msrp_graph::generators::{barabasi_albert, connected_gnm};
use msrp_graph::{
    analyze_connectivity, analyze_connectivity_csr, bfs, bfs_avoiding_edge, bfs_csr,
    bfs_csr_avoiding_edge, BfsScratch, Graph, ShortestPathTree,
};

/// The seeded instances every property below runs on.
fn seeded_instances() -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    for seed in [1u64, 7, 42] {
        for (n, m) in [(20usize, 30usize), (40, 90), (64, 200)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = connected_gnm(n, m, &mut rng).unwrap();
            out.push((format!("gnm(n={n}, m={m}, seed={seed})"), g));
        }
        for (n, k) in [(30usize, 2usize), (60, 3)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = barabasi_albert(n, k, &mut rng).unwrap();
            out.push((format!("ba(n={n}, k={k}, seed={seed})"), g));
        }
    }
    out
}

#[test]
fn freeze_thaw_round_trips_exactly() {
    for (name, g) in seeded_instances() {
        let csr = g.freeze();
        assert_eq!(csr.thaw(), g, "{name}: freeze/thaw must be the identity");
        // Freezing is deterministic: two freezes of the same graph are equal.
        assert_eq!(csr, g.freeze(), "{name}: freeze must be deterministic");
        // And the frozen view reports the same structure.
        assert_eq!(csr.vertex_count(), g.vertex_count(), "{name}");
        assert_eq!(csr.edge_count(), g.edge_count(), "{name}");
        assert_eq!(csr.edge_vec(), g.edge_vec(), "{name}");
        for v in g.vertices() {
            assert_eq!(csr.degree(v), g.degree(v), "{name}: degree({v})");
            assert_eq!(
                csr.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v),
                "{name}: neighbors({v})"
            );
        }
    }
}

#[test]
fn csr_bfs_agrees_with_seed_bfs_bit_for_bit() {
    for (name, g) in seeded_instances() {
        let csr = g.freeze();
        for source in g.vertices() {
            let seed = bfs(&g, source);
            let frozen = bfs_csr(&csr, source);
            assert_eq!(frozen.dist, seed.dist, "{name}: dist from {source}");
            assert_eq!(frozen.parent, seed.parent, "{name}: parent from {source}");
            assert_eq!(frozen.order, seed.order, "{name}: order from {source}");
        }
    }
}

#[test]
fn csr_edge_avoiding_bfs_agrees_with_seed() {
    for (name, g) in seeded_instances().into_iter().take(6) {
        let csr = g.freeze();
        for e in g.edges() {
            let seed = bfs_avoiding_edge(&g, 0, e);
            let frozen = bfs_csr_avoiding_edge(&csr, 0, e);
            assert_eq!(frozen, seed, "{name}: avoiding {e}");
        }
    }
}

#[test]
fn shared_scratch_is_equivalent_to_fresh_buffers() {
    // One scratch across every instance and every source: the O(visited) reset must leave no
    // stale state behind, even when the vertex count changes between runs.
    let mut scratch = BfsScratch::new();
    for (name, g) in seeded_instances() {
        let csr = g.freeze();
        for source in g.vertices().step_by(3) {
            scratch.run(&csr, source);
            let fresh = bfs(&g, source);
            assert_eq!(scratch.to_result(), fresh, "{name}: scratch from {source}");
        }
        for e in g.edge_vec().into_iter().step_by(5) {
            scratch.run_avoiding(&csr, 0, e);
            assert_eq!(scratch.to_result(), bfs_avoiding_edge(&g, 0, e), "{name}: avoid {e}");
        }
    }
}

#[test]
fn trees_built_over_csr_match_trees_built_over_graph() {
    for (name, g) in seeded_instances().into_iter().take(8) {
        let csr = g.freeze();
        let mut scratch = BfsScratch::new();
        for source in [0, g.vertex_count() / 2, g.vertex_count() - 1] {
            let seed = ShortestPathTree::build(&g, source);
            let frozen = ShortestPathTree::build_csr(&csr, source);
            let scratched = ShortestPathTree::build_with_scratch(&csr, source, &mut scratch);
            for v in g.vertices() {
                assert_eq!(frozen.distance(v), seed.distance(v), "{name}: dist({source}, {v})");
                assert_eq!(frozen.parent(v), seed.parent(v), "{name}: parent({source}, {v})");
                assert_eq!(scratched.distance(v), seed.distance(v), "{name}");
                assert_eq!(scratched.parent(v), seed.parent(v), "{name}");
                assert_eq!(
                    frozen.path_from_source(v),
                    seed.path_from_source(v),
                    "{name}: canonical path to {v}"
                );
            }
            assert_eq!(frozen.bfs_order(), seed.bfs_order(), "{name}: BFS order");
        }
    }
}

#[test]
fn has_edge_agrees_with_a_naive_neighbor_scan_on_every_pair() {
    // `has_edge` binary-searches the smaller of the two sorted CSR rows; the ground truth
    // is a linear scan of the row. Sweep every (u, v) pair — present, absent, and
    // out-of-range — so both the hit and the miss paths of the search are pinned.
    for (name, g) in seeded_instances() {
        let csr = g.freeze();
        let n = csr.vertex_count();
        for u in 0..n {
            for v in 0..n {
                let naive = u != v && csr.neighbor_row(u).contains(&(v as u32));
                assert_eq!(csr.has_edge(u, v), naive, "{name}: has_edge({u}, {v})");
                assert_eq!(csr.has_edge(v, u), naive, "{name}: has_edge({v}, {u})");
            }
            assert!(!csr.has_edge(u, n), "{name}: out-of-range second endpoint");
            assert!(!csr.has_edge(n + 5, u), "{name}: out-of-range first endpoint");
        }
    }
}

#[test]
fn connectivity_reports_agree_across_representations() {
    for (name, g) in seeded_instances() {
        assert_eq!(analyze_connectivity_csr(&g.freeze()), analyze_connectivity(&g), "{name}");
    }
}
