//! Property suite for the heavy-path cover decomposition ([`TreePathCover`]), the substrate
//! of the Bernstein–Karger preprocessing in `msrp-oracle`.
//!
//! Seed-pinned (the workspace has no live proptest; see `DESIGN.md`, "Determinism policy"):
//! every invariant is checked over BFS trees of seeded gnm and Barabási–Albert graphs from
//! several roots, plus the structured families the differential suite uses.
//!
//! The invariants:
//!
//! 1. every tree edge lies on exactly one cover path (the path of its deeper endpoint);
//! 2. cover paths are vertex-disjoint descending ancestor chains partitioning the reachable
//!    vertices;
//! 3. the cover size equals the leaf count, and any root→`t` path meets at most
//!    `⌊log₂ n⌋ + 1` distinct cover paths (the heavy-path bound the BK tables are charged
//!    against);
//! 4. the heavy-first preorder makes every subtree a contiguous slice that agrees with
//!    Euler-tour ancestry.

use std::collections::HashSet;

use msrp_graph::generators::{barabasi_albert, connected_gnm, cycle_graph, gnm, star_graph};
use msrp_graph::{Edge, Graph, ShortestPathTree, TreePathCover, Vertex};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Check every cover invariant for one tree.
fn check_cover(g: &Graph, tree: &ShortestPathTree, cover: &TreePathCover) {
    let n = g.vertex_count();
    let reachable: Vec<Vertex> = (0..n).filter(|&v| tree.is_reachable(v)).collect();

    // -- 2. Vertex-disjoint descending chains partitioning the reachable vertices. --
    let mut seen: HashSet<Vertex> = HashSet::new();
    for i in 0..cover.path_count() {
        let chain = cover.path(i);
        assert!(!chain.is_empty(), "path {i} is empty");
        for &v in chain {
            assert!(seen.insert(v), "vertex {v} appears on two cover paths");
            assert_eq!(cover.path_of(v), Some(i));
        }
        for (j, w) in chain.windows(2).enumerate() {
            assert_eq!(tree.parent(w[1]), Some(w[0]), "path {i} must be a parent→child chain");
            assert_eq!(cover.index_in_path(w[0]), j);
            assert_eq!(cover.index_in_path(w[1]), j + 1);
        }
        // An ancestor chain: the head is an ancestor of every chain vertex.
        for &v in chain {
            assert!(tree.is_ancestor(chain[0], v));
        }
    }
    assert_eq!(seen.len(), reachable.len(), "cover must partition the reachable vertices");
    for &v in &reachable {
        assert!(seen.contains(&v), "reachable vertex {v} is uncovered");
    }
    for v in 0..n {
        if !tree.is_reachable(v) {
            assert_eq!(cover.path_of(v), None, "unreachable vertex {v} must be uncovered");
        }
    }

    // -- 1. Every tree edge on exactly one cover path. --
    // The edges a path owns: the light edge above its head (when the head is not the root)
    // plus its internal chain edges.
    let mut covered_edges: HashSet<Edge> = HashSet::new();
    for i in 0..cover.path_count() {
        let chain = cover.path(i);
        if let Some(p) = tree.parent(chain[0]) {
            assert!(covered_edges.insert(Edge::new(p, chain[0])), "edge covered twice");
        }
        for w in chain.windows(2) {
            assert!(covered_edges.insert(Edge::new(w[0], w[1])), "edge covered twice");
        }
    }
    let tree_edges: HashSet<Edge> =
        reachable.iter().filter_map(|&v| tree.parent(v).map(|p| Edge::new(p, v))).collect();
    assert_eq!(covered_edges, tree_edges, "cover paths must own exactly the tree edges");

    // -- 3. Cover size and the heavy-path crossing bound. --
    let leaves = reachable
        .iter()
        .filter(|&&v| !reachable.iter().any(|&c| tree.parent(c) == Some(v)))
        .count();
    assert_eq!(cover.path_count(), leaves, "one cover path per leaf");
    let bound = (usize::BITS - n.leading_zeros()) as usize; // ⌊log₂ n⌋ + 1
    for &t in &reachable {
        let mut paths_met: HashSet<usize> = HashSet::new();
        let mut cur = Some(t);
        while let Some(v) = cur {
            paths_met.insert(cover.path_of(v).unwrap());
            cur = tree.parent(v);
        }
        assert!(
            paths_met.len() <= bound,
            "root→{t} path meets {} cover paths (> ⌊log₂ {n}⌋ + 1 = {bound})",
            paths_met.len()
        );
    }

    // -- 4. Subtree slices agree with Euler-tour ancestry. --
    for &a in &reachable {
        assert_eq!(cover.subtree_size(a), cover.descendants(a).len());
        let slice: HashSet<Vertex> = cover.descendants(a).iter().copied().collect();
        for v in 0..n {
            let expected = tree.is_reachable(v) && tree.is_ancestor(a, v);
            assert_eq!(slice.contains(&v), expected, "a={a} v={v}");
            assert_eq!(cover.in_subtree(a, v), expected, "a={a} v={v}");
        }
    }
    assert_eq!(cover.preorder().len(), reachable.len());
}

#[test]
fn cover_invariants_on_seeded_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xC0FE);
    for trial in 0..6 {
        let n = 24 + 8 * trial;
        let g = connected_gnm(n, 2 * n + trial, &mut rng).unwrap();
        for s in [0, n / 2, n - 1] {
            let tree = ShortestPathTree::build(&g, s);
            check_cover(&g, &tree, &TreePathCover::build(&tree));
        }
    }
}

#[test]
fn cover_invariants_on_preferential_attachment() {
    let mut rng = StdRng::seed_from_u64(0xBA);
    for n in [20usize, 45, 80] {
        let g = barabasi_albert(n, 3, &mut rng).unwrap();
        for s in [0, n - 1] {
            let tree = ShortestPathTree::build(&g, s);
            check_cover(&g, &tree, &TreePathCover::build(&tree));
        }
    }
}

#[test]
fn cover_invariants_on_disconnected_graphs() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for n in [18usize, 30] {
        // gnm (not connected_gnm): typically several components and isolated vertices.
        let g = gnm(n, n / 2, &mut rng).unwrap();
        for s in 0..n.min(5) {
            let tree = ShortestPathTree::build(&g, s);
            check_cover(&g, &tree, &TreePathCover::build(&tree));
        }
    }
}

#[test]
fn cover_invariants_on_structured_families() {
    for g in [cycle_graph(17), star_graph(9), msrp_graph::generators::grid_graph(5, 6)] {
        let tree = ShortestPathTree::build(&g, 0);
        check_cover(&g, &tree, &TreePathCover::build(&tree));
    }
}

#[test]
fn deep_chains_collapse_to_one_path() {
    // A path graph is a single chain: the decomposition must produce exactly one cover path
    // containing every vertex in root→leaf order.
    let g = msrp_graph::generators::path_graph(40);
    let tree = ShortestPathTree::build(&g, 0);
    let cover = TreePathCover::build(&tree);
    assert_eq!(cover.path_count(), 1);
    assert_eq!(cover.path(0), (0..40).collect::<Vec<_>>().as_slice());
    check_cover(&g, &tree, &cover);
}
