//! Edge-case coverage the seed suites miss: `CuckooHashMap` insert/evict/rehash cycles,
//! generator validity (connectivity of `connected_gnm`, degree bounds of
//! `barabasi_albert`), and `Edge` canonicalization.
//!
//! All randomness is pinned through `StdRng::seed_from_u64` so every run is reproducible.

use std::collections::HashMap;

use msrp_graph::generators::{barabasi_albert, connected_gnm, gnm, gnp};
use msrp_graph::{CuckooHashMap, Edge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// --- CuckooHashMap: eviction chains, rehash cycles, churn. ---

#[test]
fn rehashes_are_triggered_by_growth_and_preserve_entries() {
    let mut m: CuckooHashMap<u64, u64> = CuckooHashMap::with_capacity(4);
    assert_eq!(m.rehash_count(), 0);
    for i in 0..4096u64 {
        m.insert(i, i.wrapping_mul(0x9E37));
    }
    // Growing from 4 slots to >= 4096 entries must have rebuilt the tables repeatedly.
    assert!(m.rehash_count() >= 1, "no rehash for a 1000x growth");
    assert!(m.capacity() >= 2 * 4096, "load factor above 1/2: capacity {}", m.capacity());
    for i in 0..4096u64 {
        assert_eq!(m.get(&i), Some(&i.wrapping_mul(0x9E37)));
    }
}

#[test]
fn eviction_chains_keep_all_colliding_keys_retrievable() {
    // Sequential u64 keys hash into a small table, forcing long cuckoo eviction chains
    // right below the growth threshold. Insert up to exactly half capacity each round.
    let mut m: CuckooHashMap<u64, usize> = CuckooHashMap::with_capacity(8);
    for round in 0..12usize {
        let limit = m.capacity() / 2;
        for k in 0..limit as u64 {
            m.insert(k, round);
        }
        for k in 0..limit as u64 {
            assert_eq!(m.get(&k), Some(&round), "round {round}, key {k}");
        }
    }
}

#[test]
fn remove_reinsert_churn_matches_model() {
    let mut rng = StdRng::seed_from_u64(0xC4124);
    let mut cuckoo: CuckooHashMap<(u32, u32), u64> = CuckooHashMap::with_capacity(4);
    let mut model: HashMap<(u32, u32), u64> = HashMap::new();
    for step in 0..20_000usize {
        let key = (rng.gen_range(0u32..64), rng.gen_range(0u32..8));
        match rng.gen_range(0usize..10) {
            0..=5 => {
                let v = rng.gen_range(0u64..1_000_000);
                assert_eq!(cuckoo.insert(key, v), model.insert(key, v), "step {step}");
            }
            6..=7 => {
                assert_eq!(cuckoo.remove(&key), model.remove(&key), "step {step}");
            }
            8 => {
                let v = rng.gen_range(0u64..1_000_000);
                let expected = match model.get(&key) {
                    Some(&existing) if existing <= v => false,
                    _ => {
                        model.insert(key, v);
                        true
                    }
                };
                assert_eq!(cuckoo.insert_min(key, v), expected, "step {step}");
            }
            _ => {
                assert_eq!(cuckoo.get(&key), model.get(&key), "step {step}");
            }
        }
        assert_eq!(cuckoo.len(), model.len(), "step {step}");
    }
    let mut from_iter: Vec<((u32, u32), u64)> = cuckoo.iter().map(|(k, v)| (*k, *v)).collect();
    let mut from_model: Vec<((u32, u32), u64)> = model.into_iter().collect();
    from_iter.sort_unstable();
    from_model.sort_unstable();
    assert_eq!(from_iter, from_model);
}

#[test]
fn emptied_map_is_reusable() {
    let mut m: CuckooHashMap<u32, u32> = CuckooHashMap::new();
    for i in 0..1000 {
        m.insert(i, i);
    }
    for i in 0..1000 {
        assert_eq!(m.remove(&i), Some(i));
    }
    assert!(m.is_empty());
    assert_eq!(m.iter().count(), 0);
    for i in 0..1000 {
        assert_eq!(m.insert(i, i + 1), None);
    }
    assert_eq!(m.len(), 1000);
    assert_eq!(m.get(&37), Some(&38));
}

#[test]
fn clones_are_independent() {
    let mut a: CuckooHashMap<u32, u32> = CuckooHashMap::new();
    a.insert(1, 10);
    let mut b = a.clone();
    b.insert(1, 20);
    b.insert(2, 30);
    assert_eq!(a.get(&1), Some(&10));
    assert_eq!(a.get(&2), None);
    assert_eq!(b.get(&1), Some(&20));
    assert_eq!(b.len(), 2);
}

// --- Generator validity. ---

#[test]
fn connected_gnm_is_connected_across_densities_and_seeds() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Spanning tree only, mid density, and complete graph.
        for &(n, m) in &[(2, 1), (17, 16), (40, 39), (40, 100), (12, 66)] {
            let g = connected_gnm(n, m, &mut rng).unwrap();
            assert_eq!(g.vertex_count(), n, "seed {seed}, n {n}, m {m}");
            assert_eq!(g.edge_count(), m, "seed {seed}, n {n}, m {m}");
            assert!(g.is_connected(), "seed {seed}, n {n}, m {m} is disconnected");
        }
    }
}

#[test]
fn connected_gnm_handles_degenerate_sizes() {
    let mut rng = StdRng::seed_from_u64(1);
    assert_eq!(connected_gnm(0, 0, &mut rng).unwrap().vertex_count(), 0);
    let single = connected_gnm(1, 0, &mut rng).unwrap();
    assert_eq!(single.vertex_count(), 1);
    assert_eq!(single.edge_count(), 0);
    assert!(single.is_connected());
    // m below the spanning-tree bound or above the simple-graph bound must fail.
    assert!(connected_gnm(5, 3, &mut rng).is_err());
    assert!(connected_gnm(5, 11, &mut rng).is_err());
}

#[test]
fn connected_gnm_is_deterministic_per_seed() {
    let a = connected_gnm(60, 140, &mut StdRng::seed_from_u64(9)).unwrap();
    let b = connected_gnm(60, 140, &mut StdRng::seed_from_u64(9)).unwrap();
    let c = connected_gnm(60, 140, &mut StdRng::seed_from_u64(10)).unwrap();
    assert_eq!(a, b);
    assert_ne!(a, c, "different seeds produced identical 60/140 graphs");
}

#[test]
fn gnm_handles_empty_and_tiny_graphs() {
    let mut rng = StdRng::seed_from_u64(4);
    assert_eq!(gnm(0, 0, &mut rng).unwrap().vertex_count(), 0);
    assert_eq!(gnm(5, 0, &mut rng).unwrap().edge_count(), 0);
    assert_eq!(gnm(1, 0, &mut rng).unwrap().edge_count(), 0);
    assert!(gnm(1, 1, &mut rng).is_err());
    // Dense regime goes through the shuffle path; exact count must still hold.
    let dense = gnm(16, 100, &mut rng).unwrap();
    assert_eq!(dense.edge_count(), 100);
}

#[test]
fn gnp_rejects_invalid_probabilities() {
    let mut rng = StdRng::seed_from_u64(4);
    assert!(gnp(10, -0.1, &mut rng).is_err());
    assert!(gnp(10, f64::NAN, &mut rng).is_err());
    assert!(gnp(10, 1.1, &mut rng).is_err());
}

#[test]
fn barabasi_albert_degree_bounds_hold() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        for &(n, k) in &[(30, 1), (60, 2), (120, 5)] {
            let g = barabasi_albert(n, k, &mut rng).unwrap();
            assert_eq!(g.vertex_count(), n);
            assert!(g.is_connected(), "seed {seed}, n {n}, k {k} is disconnected");
            let clique = k + 1;
            // Seed-clique vertices start with degree k; every later vertex attaches to
            // exactly k distinct earlier vertices, so degree >= k holds for all.
            for v in 0..n {
                assert!(
                    g.degree(v) >= k,
                    "seed {seed}, n {n}, k {k}: vertex {v} has degree {}",
                    g.degree(v)
                );
            }
            // Edge count: the seed clique plus k edges per later vertex.
            assert_eq!(g.edge_count(), clique * (clique - 1) / 2 + (n - clique) * k);
        }
    }
}

#[test]
fn barabasi_albert_attaches_to_distinct_targets() {
    let g = barabasi_albert(50, 3, &mut StdRng::seed_from_u64(77)).unwrap();
    // Simple graph: no duplicate edges means each later vertex found 3 distinct targets.
    let mut seen = std::collections::HashSet::new();
    for e in g.edges() {
        assert!(seen.insert(e), "duplicate edge {e}");
    }
}

// --- Edge canonicalization. ---

#[test]
fn edge_key_packs_lo_hi_injectively() {
    let e = Edge::new(70_000, 3);
    assert_eq!(e.as_key() >> 32, 3);
    assert_eq!(e.as_key() & 0xFFFF_FFFF, 70_000);
    assert_eq!(Edge::new(3, 70_000).as_key(), e.as_key());
    assert_ne!(Edge::new(3, 70_001).as_key(), e.as_key());
}

#[test]
fn edge_ordering_is_lexicographic_on_normalized_endpoints() {
    let mut edges = [Edge::new(5, 1), Edge::new(0, 9), Edge::new(2, 1), Edge::new(0, 2)];
    edges.sort_unstable();
    let pairs: Vec<(usize, usize)> = edges.iter().map(|e| e.endpoints()).collect();
    assert_eq!(pairs, vec![(0, 2), (0, 9), (1, 2), (1, 5)]);
}

#[test]
fn edge_equality_survives_hashing() {
    let mut set = std::collections::HashSet::new();
    for u in 0..20usize {
        for v in 0..20usize {
            if u != v {
                set.insert(Edge::new(u, v));
            }
        }
    }
    // Both orientations collapse to one canonical edge.
    assert_eq!(set.len(), 20 * 19 / 2);
    assert!(set.contains(&Edge::new(19, 0)));
    assert!(set.contains(&Edge::new(0, 19)));
}

#[test]
fn edge_incidence_against_random_pairs() {
    let mut rng = StdRng::seed_from_u64(0xED6E2);
    for _ in 0..200 {
        let u = rng.gen_range(0usize..500);
        let v = rng.gen_range(0usize..500);
        if u == v {
            continue;
        }
        let e = Edge::new(u, v);
        assert_eq!(e.lo(), u.min(v));
        assert_eq!(e.hi(), u.max(v));
        assert!(e.is_incident(u) && e.is_incident(v));
        assert!(!e.is_incident(u.max(v) + 1));
        assert_eq!(e.other(u), Some(v));
        assert_eq!(e.other(v), Some(u));
        assert_eq!(e.other(u.max(v) + 1), None);
        assert!(e.shares_endpoint(&e));
    }
}
