//! Shortest-path (BFS) trees with constant-time ancestry queries.
//!
//! The paper's algorithms constantly ask questions of the form *"does the edge `e` lie on the
//! canonical shortest path from `r` to `t`?"* (Algorithm 4, Sections 7.1, 8.1–8.3). Because the
//! canonical path is a root-to-vertex path of the BFS tree `T_r`, the question reduces to an
//! ancestry test, which we answer in `O(1)` using Euler-tour entry/exit times.

use crate::bfs::{bfs, BfsResult};
use crate::csr::{bfs_csr, BfsScratch, CsrGraph};
use crate::distance::{Distance, INFINITE_DISTANCE};
use crate::edge::Edge;
use crate::graph::{Graph, Vertex};
use crate::lca::LcaIndex;

/// A rooted BFS tree of an unweighted graph, annotated for `O(1)` path queries.
///
/// ```
/// use msrp_graph::{Graph, ShortestPathTree, Edge};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])?;
/// let t = ShortestPathTree::build(&g, 0);
/// assert_eq!(t.distance(2), Some(2));
/// assert!(t.path_contains_edge(2, Edge::new(0, 1)));
/// assert!(!t.path_contains_edge(4, Edge::new(0, 1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    source: Vertex,
    dist: Vec<Distance>,
    parent: Vec<Option<Vertex>>,
    order: Vec<Vertex>,
    tin: Vec<u32>,
    tout: Vec<u32>,
}

impl ShortestPathTree {
    /// Builds the BFS tree rooted at `source` (deterministic: sorted adjacency order).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range for `g`.
    pub fn build(g: &Graph, source: Vertex) -> Self {
        Self::from_bfs(bfs(g, source))
    }

    /// Builds the BFS tree rooted at `source` over the CSR view (bit-for-bit the same tree as
    /// [`build`](Self::build), since freezing preserves adjacency order).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range for `g`.
    pub fn build_csr(g: &CsrGraph, source: Vertex) -> Self {
        Self::from_bfs(bfs_csr(g, source))
    }

    /// Builds the BFS tree rooted at `source` reusing the caller's [`BfsScratch`] buffers —
    /// the preferred entry point when many trees are built over the same graph (landmark and
    /// center preprocessing, `build_exact`).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range for `g`.
    pub fn build_with_scratch(g: &CsrGraph, source: Vertex, scratch: &mut BfsScratch) -> Self {
        scratch.run(g, source);
        Self::from_bfs(scratch.to_result())
    }

    /// Builds the BFS tree rooted at `source` with the direction-optimizing kernel —
    /// bit-for-bit the same tree as [`build_with_scratch`](Self::build_with_scratch)
    /// (the kernel reproduces the top-down parent and order rules exactly), usually faster
    /// on large low-diameter graphs. The incremental oracle rebuild runs its from-scratch
    /// rung through this.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range for `g`.
    pub fn build_with_dir_opt(
        g: &CsrGraph,
        source: Vertex,
        scratch: &mut crate::DirOptScratch,
    ) -> Self {
        scratch.run(g, source);
        Self::from_bfs(scratch.to_result())
    }

    /// Builds the tree from an existing BFS result.
    pub fn from_bfs(bfs: BfsResult) -> Self {
        let BfsResult { source, dist, parent, order } = bfs;
        let n = dist.len();
        let (tin, tout) = euler_times(source, n, &order, &parent);
        ShortestPathTree { source, dist, parent, order, tin, tout }
    }

    /// The root of the tree.
    #[inline]
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Number of vertices of the underlying graph.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.dist.len()
    }

    /// Distance from the root to `v`, or `None` if `v` is unreachable.
    #[inline]
    pub fn distance(&self, v: Vertex) -> Option<Distance> {
        let d = self.dist[v];
        if d == INFINITE_DISTANCE {
            None
        } else {
            Some(d)
        }
    }

    /// Distance from the root to `v`, with `INFINITE_DISTANCE` for unreachable vertices.
    #[inline]
    pub fn distance_or_infinite(&self, v: Vertex) -> Distance {
        self.dist[v]
    }

    /// The raw distance vector (entries are `INFINITE_DISTANCE` for unreachable vertices).
    #[inline]
    pub fn distances(&self) -> &[Distance] {
        &self.dist
    }

    /// Tree parent of `v`.
    #[inline]
    pub fn parent(&self, v: Vertex) -> Option<Vertex> {
        self.parent[v]
    }

    /// `true` when `v` is reachable from the root.
    #[inline]
    pub fn is_reachable(&self, v: Vertex) -> bool {
        self.dist[v] != INFINITE_DISTANCE
    }

    /// Reachable vertices in BFS order (root first).
    #[inline]
    pub fn bfs_order(&self) -> &[Vertex] {
        &self.order
    }

    /// Returns `true` when `a` is an ancestor of `d` (a vertex is an ancestor of itself).
    ///
    /// Both vertices must be reachable for the answer to be meaningful; unreachable vertices are
    /// never ancestors of anything and have no ancestors except themselves.
    #[inline]
    pub fn is_ancestor(&self, a: Vertex, d: Vertex) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(d) {
            return a == d;
        }
        self.tin[a] <= self.tin[d] && self.tout[d] <= self.tout[a]
    }

    /// Returns `true` when `v` lies on the canonical root→`t` path.
    #[inline]
    pub fn path_contains_vertex(&self, t: Vertex, v: Vertex) -> bool {
        self.is_reachable(t) && self.is_ancestor(v, t)
    }

    /// If `e` is a tree edge, returns its deeper endpoint (the child side), else `None`.
    pub fn deeper_endpoint(&self, e: Edge) -> Option<Vertex> {
        let (u, v) = e.endpoints();
        if self.parent[v] == Some(u) {
            Some(v)
        } else if self.parent[u] == Some(v) {
            Some(u)
        } else {
            None
        }
    }

    /// Returns `true` when `e` is an edge of the tree.
    pub fn is_tree_edge(&self, e: Edge) -> bool {
        self.deeper_endpoint(e).is_some()
    }

    /// Returns `true` when the edge `e` lies on the canonical root→`t` path.
    ///
    /// This is the "does `rt` avoid `e`" primitive used throughout the paper (negated).
    pub fn path_contains_edge(&self, t: Vertex, e: Edge) -> bool {
        match self.deeper_endpoint(e) {
            Some(child) => self.is_reachable(t) && self.is_ancestor(child, t),
            None => false,
        }
    }

    /// Position (0-based) of the edge `e` on the canonical root→`t` path, if it lies on it.
    ///
    /// Position `i` means `e` is the `i`-th edge when walking from the root, i.e. it connects the
    /// vertices at depth `i` and `i + 1` on the path.
    pub fn edge_position_on_path(&self, t: Vertex, e: Edge) -> Option<usize> {
        let child = self.deeper_endpoint(e)?;
        if self.is_reachable(t) && self.is_ancestor(child, t) {
            Some(self.dist[child] as usize - 1)
        } else {
            None
        }
    }

    /// The canonical path from the root to `t` (inclusive), or `None` if `t` is unreachable.
    pub fn path_from_source(&self, t: Vertex) -> Option<Vec<Vertex>> {
        if !self.is_reachable(t) {
            return None;
        }
        let mut path = Vec::with_capacity(self.dist[t] as usize + 1);
        let mut cur = t;
        path.push(cur);
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }

    /// The `i`-th edge on the canonical root→`t` path (0-based), if it exists.
    pub fn path_edge(&self, t: Vertex, i: usize) -> Option<Edge> {
        if !self.is_reachable(t) || (i as u64) >= self.dist[t] as u64 {
            return None;
        }
        // Walk up from t to depth i + 1; its parent edge is the answer.
        let mut cur = t;
        while self.dist[cur] as usize > i + 1 {
            cur = self.parent[cur].expect("reachable non-root vertex has a parent");
        }
        let p = self.parent[cur].expect("depth >= 1 vertex has a parent");
        Some(Edge::new(p, cur))
    }

    /// All edges on the canonical root→`t` path, in root→`t` order.
    pub fn path_edges(&self, t: Vertex) -> Vec<Edge> {
        match self.path_from_source(t) {
            None => Vec::new(),
            Some(path) => path.windows(2).map(|w| Edge::new(w[0], w[1])).collect(),
        }
    }

    /// Vertex at depth `depth` on the canonical root→`t` path, if the path is that long.
    pub fn path_vertex_at_depth(&self, t: Vertex, depth: usize) -> Option<Vertex> {
        if !self.is_reachable(t) || (depth as u64) > self.dist[t] as u64 {
            return None;
        }
        let mut cur = t;
        while self.dist[cur] as usize > depth {
            cur = self.parent[cur]?;
        }
        Some(cur)
    }

    /// Builds an LCA index over this tree (Lemma 6 in the paper).
    pub fn lca_index(&self) -> LcaIndex {
        LcaIndex::build(self)
    }

    pub(crate) fn children_of(&self) -> Vec<Vec<Vertex>> {
        let mut children: Vec<Vec<Vertex>> = vec![Vec::new(); self.vertex_count()];
        for &v in &self.order {
            if let Some(p) = self.parent[v] {
                children[p].push(v);
            }
        }
        children
    }
}

/// Euler entry/exit times of the rooted tree given by its settle `order` and `parent`
/// array (iterative DFS from `source`, visiting each vertex's children in settle order;
/// unreachable vertices keep time 0). Shared by the unweighted [`ShortestPathTree`] and
/// the weighted [`WeightedTree`](crate::WeightedTree), whose `O(1)` ancestry tests both
/// reduce to interval containment of these times.
///
/// The children adjacency is materialised as a flat counting-sorted CSR (one count pass,
/// one fill pass over `order`) instead of per-vertex `Vec`s: the tree re-annotation on
/// the snapshot boot path runs this once per persisted source, where `n` small heap
/// allocations dominated the old `Vec<Vec<_>>` shape. Counting sort over `order` is
/// stable, so each vertex's children appear in settle order — the same DFS visit order
/// (and therefore bit-identical times) as the nested-`Vec` construction produced.
pub(crate) fn euler_times(
    source: Vertex,
    n: usize,
    order: &[Vertex],
    parent: &[Option<Vertex>],
) -> (Vec<u32>, Vec<u32>) {
    let mut tin = vec![0u32; n];
    let mut tout = vec![0u32; n];
    if n == 0 {
        return (tin, tout);
    }
    let mut off = vec![0u32; n + 1];
    for &v in order {
        if let Some(p) = parent[v] {
            off[p + 1] += 1;
        }
    }
    for v in 0..n {
        off[v + 1] += off[v];
    }
    let mut next: Vec<u32> = off[..n].to_vec();
    let mut kids: Vec<u32> = vec![0; off[n] as usize];
    for &v in order {
        if let Some(p) = parent[v] {
            kids[next[p] as usize] = v as u32;
            next[p] += 1;
        }
    }
    let mut timer: u32 = 1;
    let mut stack: Vec<(Vertex, u32)> = vec![(source, off[source])];
    tin[source] = timer;
    timer += 1;
    while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
        if *idx < off[v + 1] {
            let c = kids[*idx as usize] as Vertex;
            *idx += 1;
            tin[c] = timer;
            timer += 1;
            stack.push((c, off[c]));
        } else {
            tout[v] = timer;
            timer += 1;
            stack.pop();
        }
    }
    (tin, tout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        // 0-1-2-3 path plus a shortcut 0-4-3 and a pendant 5 off vertex 2.
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (2, 5)]).unwrap()
    }

    #[test]
    fn distances_and_parents() {
        let g = sample_graph();
        let t = ShortestPathTree::build(&g, 0);
        assert_eq!(t.source(), 0);
        assert_eq!(t.distance(0), Some(0));
        assert_eq!(t.distance(3), Some(2));
        assert_eq!(t.distance(5), Some(3));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(3), Some(4)); // BFS with sorted adjacency reaches 3 via 4? 3's neighbours processed: from 2 (dist 2) and 4 (dist 1) -> via 4 at dist 2; order of discovery: level 1 = {1,4}; processing 1 first discovers 2; processing 4 discovers 3. So parent(3)=4.
        assert!(t.is_reachable(5));
    }

    #[test]
    fn ancestry_queries() {
        let g = sample_graph();
        let t = ShortestPathTree::build(&g, 0);
        assert!(t.is_ancestor(0, 5));
        assert!(t.is_ancestor(2, 5));
        assert!(t.is_ancestor(5, 5));
        assert!(!t.is_ancestor(5, 2));
        assert!(!t.is_ancestor(4, 5));
        assert!(t.path_contains_vertex(5, 1));
        assert!(!t.path_contains_vertex(3, 1));
    }

    #[test]
    fn tree_edges_and_positions() {
        let g = sample_graph();
        let t = ShortestPathTree::build(&g, 0);
        let e01 = Edge::new(0, 1);
        let e12 = Edge::new(1, 2);
        let e25 = Edge::new(2, 5);
        let e43 = Edge::new(4, 3);
        assert!(t.is_tree_edge(e01));
        assert!(t.is_tree_edge(e43));
        assert!(!t.is_tree_edge(Edge::new(2, 3))); // non-tree edge
        assert_eq!(t.deeper_endpoint(e12), Some(2));
        assert!(t.path_contains_edge(5, e01));
        assert!(t.path_contains_edge(5, e25));
        assert!(!t.path_contains_edge(3, e01));
        assert_eq!(t.edge_position_on_path(5, e01), Some(0));
        assert_eq!(t.edge_position_on_path(5, e12), Some(1));
        assert_eq!(t.edge_position_on_path(5, e25), Some(2));
        assert_eq!(t.edge_position_on_path(3, e01), None);
    }

    #[test]
    fn canonical_paths() {
        let g = sample_graph();
        let t = ShortestPathTree::build(&g, 0);
        assert_eq!(t.path_from_source(5), Some(vec![0, 1, 2, 5]));
        assert_eq!(t.path_from_source(3), Some(vec![0, 4, 3]));
        assert_eq!(t.path_edges(5), vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 5)]);
        assert_eq!(t.path_edge(5, 1), Some(Edge::new(1, 2)));
        assert_eq!(t.path_edge(5, 3), None);
        assert_eq!(t.path_vertex_at_depth(5, 2), Some(2));
        assert_eq!(t.path_vertex_at_depth(5, 0), Some(0));
        assert_eq!(t.path_vertex_at_depth(5, 4), None);
    }

    #[test]
    fn unreachable_vertices() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let t = ShortestPathTree::build(&g, 0);
        assert_eq!(t.distance(2), None);
        assert_eq!(t.distance_or_infinite(2), INFINITE_DISTANCE);
        assert!(!t.is_reachable(3));
        assert_eq!(t.path_from_source(2), None);
        assert!(!t.path_contains_edge(2, Edge::new(2, 3)));
        assert_eq!(t.path_edges(3), Vec::new());
        assert!(!t.is_ancestor(0, 2));
        assert!(t.is_ancestor(2, 2));
    }

    #[test]
    fn path_edges_consistent_with_positions() {
        let g = sample_graph();
        let t = ShortestPathTree::build(&g, 0);
        for v in 0..g.vertex_count() {
            let edges = t.path_edges(v);
            for (i, e) in edges.iter().enumerate() {
                assert_eq!(t.edge_position_on_path(v, *e), Some(i));
                assert_eq!(t.path_edge(v, i), Some(*e));
            }
        }
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::new(1);
        let t = ShortestPathTree::build(&g, 0);
        assert_eq!(t.distance(0), Some(0));
        assert_eq!(t.path_from_source(0), Some(vec![0]));
        assert!(t.path_edges(0).is_empty());
        assert!(t.is_ancestor(0, 0));
    }

    #[test]
    fn bfs_order_is_exposed() {
        let g = sample_graph();
        let t = ShortestPathTree::build(&g, 0);
        assert_eq!(t.bfs_order()[0], 0);
        assert_eq!(t.bfs_order().len(), 6);
    }
}
