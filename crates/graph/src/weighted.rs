//! The weighted input-graph substrate: undirected weighted graphs, their frozen CSR view,
//! a reusable Dijkstra scratch, and weighted shortest-path trees.
//!
//! The paper's algorithms are stated for unweighted graphs, but its Section 9 discussion
//! (and the classical replacement-path literature it builds on) lifts to non-negative edge
//! weights by swapping BFS trees for Dijkstra shortest-path trees. This module provides the
//! weighted mirror of the unweighted traversal core:
//!
//! | unweighted | weighted |
//! |---|---|
//! | [`Graph`] | [`WeightedGraph`] |
//! | [`CsrGraph`](crate::CsrGraph) | [`WeightedCsrGraph`] |
//! | [`BfsScratch`](crate::BfsScratch) | [`DijkstraScratch`] |
//! | [`ShortestPathTree`](crate::ShortestPathTree) | [`WeightedTree`] |
//!
//! Weights are [`Weight`] (`u64`); [`INFINITE_WEIGHT`] is the "no path" sentinel and the
//! saturation point of distance arithmetic (a path whose length would reach the sentinel is
//! treated as unreachable — see the sentinel's docs). Per-edge weights must be *finite*
//! (`< INFINITE_WEIGHT`); [`WeightedGraph::add_edge`] rejects the sentinel at insert time.
//!
//! Like the unweighted side, adjacency rows are kept sorted by neighbour id and freezing
//! preserves that order, so Dijkstra's relaxation order — and therefore every shortest-path
//! tree and every canonical path — is a deterministic function of the input and seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dijkstra::{DijkstraResult, Weight, INFINITE_WEIGHT};
use crate::edge::Edge;
use crate::error::GraphError;
use crate::graph::{Graph, Vertex};
use crate::tree::euler_times;

/// An undirected, simple graph with finite non-negative `u64` edge weights, adjacency rows
/// kept sorted by neighbour id.
///
/// ```
/// use msrp_graph::WeightedGraph;
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = WeightedGraph::from_edges(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 4), (3, 0, 2)])?;
/// assert_eq!(g.edge_weight(1, 0), Some(3));
/// let csr = g.freeze();
/// let d = csr.dijkstra(0);
/// assert_eq!(d.dist[2], 4); // 0-1-2 beats 0-3-2
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WeightedGraph {
    /// `(neighbour, weight)` pairs per vertex, sorted by neighbour id.
    adj: Vec<Vec<(Vertex, Weight)>>,
    edge_count: usize,
}

impl WeightedGraph {
    /// Creates a weighted graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        WeightedGraph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Creates a weighted graph from an explicit `(u, v, w)` edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range, any edge is a self loop or a
    /// duplicate, or any weight is `INFINITE_WEIGHT` (the reserved "no path" sentinel).
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex, Weight)]) -> Result<Self, GraphError> {
        let mut g = WeightedGraph::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Lifts an unweighted [`Graph`] by assigning each edge the weight `weight(e)`; edges are
    /// visited in normalized sorted order, so a seeded RNG in the closure yields a
    /// deterministic weighting (this is what
    /// [`random_weights`](crate::generators::random_weights) does).
    ///
    /// # Panics
    ///
    /// Panics if the closure produces `INFINITE_WEIGHT` for some edge.
    pub fn from_graph(g: &Graph, mut weight: impl FnMut(Edge) -> Weight) -> Self {
        let mut out = WeightedGraph::new(g.vertex_count());
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let w = weight(e);
            out.add_edge(u, v, w).expect("edges of a simple graph with finite weights");
        }
        out
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range, `u == v`, the edge already
    /// exists, or `w == INFINITE_WEIGHT` (so no single *edge* can masquerade as "no path";
    /// saturation of path *sums* is handled by Dijkstra, see [`INFINITE_WEIGHT`]).
    pub fn add_edge(&mut self, u: Vertex, v: Vertex, w: Weight) -> Result<(), GraphError> {
        let n = self.vertex_count();
        for x in [u, v] {
            if x >= n {
                return Err(GraphError::VertexOutOfRange { vertex: x, vertex_count: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if w == INFINITE_WEIGHT {
            return Err(GraphError::InvalidParameters {
                reason: format!("edge ({u}, {v}) weight equals the INFINITE_WEIGHT sentinel"),
            });
        }
        let pos_u = match self.adj[u].binary_search_by_key(&v, |&(x, _)| x) {
            Ok(_) => return Err(GraphError::DuplicateEdge { u, v }),
            Err(pos) => pos,
        };
        self.adj[u].insert(pos_u, (v, w));
        let pos_v = self.adj[v]
            .binary_search_by_key(&u, |&(x, _)| x)
            .expect_err("the reverse arc cannot exist when the forward arc did not");
        self.adj[v].insert(pos_v, (u, w));
        self.edge_count += 1;
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The `(neighbour, weight)` row of `v`, sorted by neighbour id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[(Vertex, Weight)] {
        &self.adj[v]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v].len()
    }

    /// Weight of the edge `{u, v}`, or `None` when absent (or an endpoint is out of range).
    pub fn edge_weight(&self, u: Vertex, v: Vertex) -> Option<Weight> {
        let n = self.vertex_count();
        if u >= n || v >= n {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adj[a].binary_search_by_key(&b, |&(x, _)| x).ok().map(|i| self.adj[a][i].1)
    }

    /// Returns `true` when the edge `{u, v}` is present.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Iterates over all edges, each reported once in normalized order, with its weight.
    pub fn edges(&self) -> impl Iterator<Item = (Edge, Weight)> + '_ {
        (0..self.vertex_count()).flat_map(move |u| {
            self.adj[u]
                .iter()
                .filter(move |&&(v, _)| u < v)
                .map(move |&(v, w)| (Edge::new(u, v), w))
        })
    }

    /// Collects all `(edge, weight)` pairs into a vector (normalized, sorted order).
    pub fn edge_vec(&self) -> Vec<(Edge, Weight)> {
        self.edges().collect()
    }

    /// Forgets the weights, producing the underlying unweighted [`Graph`].
    pub fn topology(&self) -> Graph {
        let mut g = Graph::new(self.vertex_count());
        for (e, _) in self.edges() {
            let (u, v) = e.endpoints();
            g.add_edge(u, v).expect("the weighted graph is simple");
        }
        g
    }

    /// Freezes into the flat CSR view every weighted traversal runs over.
    pub fn freeze(&self) -> WeightedCsrGraph {
        let n = self.vertex_count();
        assert!(n < u32::MAX as usize, "CSR vertex ids are u32");
        let total: usize = self.adj.iter().map(Vec::len).sum();
        assert!(total <= u32::MAX as usize, "CSR offsets are u32");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0u32);
        for row in &self.adj {
            for &(v, w) in row {
                targets.push(v as u32);
                weights.push(w);
            }
            offsets.push(targets.len() as u32);
        }
        WeightedCsrGraph { offsets, targets, weights, edge_count: self.edge_count }
    }
}

/// An immutable CSR snapshot of a [`WeightedGraph`]: flat target and weight arrays delimited
/// per vertex by `offsets`, rows sorted by neighbour id (freezing preserves the sorted order,
/// so traversals over the two representations are bit-for-bit identical).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedCsrGraph {
    /// `offsets[v]..offsets[v + 1]` is the row of `v`; length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated neighbour rows (length `2m`), each row sorted ascending.
    targets: Vec<u32>,
    /// `weights[i]` is the weight of the arc `targets[i]`.
    weights: Vec<Weight>,
    edge_count: usize,
}

impl Default for WeightedCsrGraph {
    fn default() -> Self {
        WeightedCsrGraph {
            offsets: vec![0],
            targets: Vec::new(),
            weights: Vec::new(),
            edge_count: 0,
        }
    }
}

impl WeightedCsrGraph {
    /// Rebuilds a frozen weighted graph from raw CSR arrays — the weighted twin of
    /// [`CsrGraph::from_raw_parts`](crate::CsrGraph::from_raw_parts), with two extra
    /// obligations: `weights` must parallel `targets` arc-for-arc, every weight must be
    /// finite (`< INFINITE_WEIGHT`), and the two arcs of each undirected edge must carry
    /// the same weight. Everything is validated before any field is adopted; the snapshot
    /// loader (`msrp-snap`) relies on this being the single source of truth for what a
    /// well-formed frozen weighted graph is.
    pub fn from_raw_parts(
        offsets: Vec<u32>,
        targets: Vec<u32>,
        weights: Vec<Weight>,
    ) -> Result<Self, GraphError> {
        let malformed = |reason: String| GraphError::MalformedCsr { reason };
        if weights.len() != targets.len() {
            return Err(malformed(format!("{} weights for {} arcs", weights.len(), targets.len())));
        }
        if let Some(i) = weights.iter().position(|&w| w == INFINITE_WEIGHT) {
            return Err(malformed(format!("arc {i} carries the infinite-weight sentinel")));
        }
        // The unweighted validator checks everything weight-independent (offsets shape,
        // sorted rows, in-range ids, arc symmetry).
        let skeleton = crate::CsrGraph::from_raw_parts(offsets, targets)?;
        let n = skeleton.vertex_count();
        let edge_count = skeleton.edge_count();
        let (offsets, targets) = skeleton.into_raw_parts();
        let graph = WeightedCsrGraph { offsets, targets, weights, edge_count };
        for u in 0..n {
            for (v, w) in graph.neighbors(u) {
                if graph.edge_weight(v, u) != Some(w) {
                    return Err(malformed(format!(
                        "arcs {u}->{v} and {v}->{u} disagree on weight"
                    )));
                }
            }
        }
        Ok(graph)
    }

    /// The raw offsets array (`n + 1` words; row `v` is `offsets[v]..offsets[v + 1]`).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw concatenated neighbour rows (length `2m`, each row sorted ascending).
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// The raw per-arc weights (`weights[i]` belongs to the arc `targets[i]`).
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns an iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.vertex_count()
    }

    /// The raw CSR row of `v`: neighbour ids and the matching weights.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_row(&self, v: Vertex) -> (&[u32], &[Weight]) {
        let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
        (&self.targets[range.clone()], &self.weights[range])
    }

    /// The `(neighbour, weight)` pairs of `v` in ascending neighbour order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = (Vertex, Weight)> + '_ {
        let (targets, weights) = self.neighbor_row(v);
        targets.iter().zip(weights).map(|(&t, &w)| (t as Vertex, w))
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Weight of the edge `{u, v}`, or `None` when absent (or an endpoint is out of range).
    pub fn edge_weight(&self, u: Vertex, v: Vertex) -> Option<Weight> {
        let n = self.vertex_count();
        if u >= n || v >= n {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let (targets, weights) = self.neighbor_row(a);
        targets.binary_search(&(b as u32)).ok().map(|i| weights[i])
    }

    /// Returns `true` when the edge `{u, v}` is present.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Iterates over all edges, each reported once in normalized order, with its weight.
    pub fn edges(&self) -> impl Iterator<Item = (Edge, Weight)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).filter(move |&(v, _)| u < v).map(move |(v, w)| (Edge::new(u, v), w))
        })
    }

    /// Collects all `(edge, weight)` pairs into a vector (normalized, sorted order).
    pub fn edge_vec(&self) -> Vec<(Edge, Weight)> {
        self.edges().collect()
    }

    /// Returns `true` when every vertex is reachable from vertex 0 (vacuously true when
    /// empty). Weights play no role in connectivity.
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (w, _) in self.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Converts back to the mutable representation (`g.freeze().thaw() == g` exactly).
    pub fn thaw(&self) -> WeightedGraph {
        let adj: Vec<Vec<(Vertex, Weight)>> =
            self.vertices().map(|v| self.neighbors(v).collect()).collect();
        WeightedGraph { adj, edge_count: self.edge_count }
    }

    /// Runs Dijkstra from `source` (one-shot; allocates fresh buffers). For repeated
    /// searches prefer a shared [`DijkstraScratch`].
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn dijkstra(&self, source: Vertex) -> DijkstraResult {
        let mut scratch = DijkstraScratch::new();
        scratch.run(self, source);
        scratch.into_result()
    }

    /// Runs Dijkstra from `source` in `G \ {avoid}` (one-shot) without materializing the
    /// modified graph.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn dijkstra_avoiding_edge(&self, source: Vertex, avoid: Edge) -> DijkstraResult {
        let mut scratch = DijkstraScratch::new();
        scratch.run_avoiding(self, source, avoid);
        scratch.into_result()
    }
}

/// Reusable Dijkstra buffers — distances, predecessors, the settle order and the heap —
/// reset in `O(visited)` between runs instead of reallocated; the weighted mirror of
/// [`BfsScratch`](crate::BfsScratch).
///
/// The weighted brute force and the weighted solver run one Dijkstra per tree edge; the
/// settle order doubles as the list of touched entries, so resetting only rewrites what the
/// previous run wrote (every vertex whose distance was relaxed is eventually settled exactly
/// once, because stale heap entries are skipped and a saturated sum — equal to
/// [`INFINITE_WEIGHT`] — can never win the strict relaxation).
///
/// ```
/// use msrp_graph::{DijkstraScratch, WeightedGraph};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = WeightedGraph::from_edges(4, &[(0, 1, 5), (1, 2, 5), (0, 3, 1), (3, 2, 2)])?;
/// let csr = g.freeze();
/// let mut scratch = DijkstraScratch::new();
/// scratch.run(&csr, 0);
/// assert_eq!(scratch.dist(), &[0, 5, 3, 1]);
/// assert_eq!(scratch.parent()[2], Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<Weight>,
    parent: Vec<Option<Vertex>>,
    /// Settle order of the last run (doubles as the touched-entry list for the reset).
    order: Vec<Vertex>,
    heap: BinaryHeap<Reverse<(Weight, u32)>>,
    source: Vertex,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers are sized lazily on the first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the buffers for a graph with `n` vertices in `O(visited)` (full `O(n)` init
    /// only when the vertex count changes).
    fn reset(&mut self, n: usize) {
        self.heap.clear();
        if self.dist.len() != n {
            self.dist.clear();
            self.dist.resize(n, INFINITE_WEIGHT);
            self.parent.clear();
            self.parent.resize(n, None);
            self.order.clear();
            self.order.reserve(n);
        } else {
            for &v in &self.order {
                self.dist[v] = INFINITE_WEIGHT;
                self.parent[v] = None;
            }
            self.order.clear();
        }
    }

    /// Runs Dijkstra from `source` over the weighted CSR graph.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn run(&mut self, g: &WeightedCsrGraph, source: Vertex) {
        self.run_impl(g, source, None);
    }

    /// Runs Dijkstra from `source` in `G \ {avoid}` without materializing the modified graph.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn run_avoiding(&mut self, g: &WeightedCsrGraph, source: Vertex, avoid: Edge) {
        self.run_impl(g, source, Some(avoid));
    }

    fn run_impl(&mut self, g: &WeightedCsrGraph, source: Vertex, avoid: Option<Edge>) {
        let n = g.vertex_count();
        assert!(source < n, "Dijkstra source {source} out of range (n = {n})");
        self.reset(n);
        self.source = source;
        let dist = &mut self.dist[..];
        let parent = &mut self.parent[..];
        let order = &mut self.order;
        let heap = &mut self.heap;
        dist[source] = 0;
        heap.push(Reverse((0, source as u32)));
        // The avoided-edge test is hoisted out of the hot loop, mirroring `BfsScratch`.
        match avoid {
            None => {
                while let Some(Reverse((d, v))) = heap.pop() {
                    let v = v as usize;
                    if d > dist[v] {
                        continue; // stale entry
                    }
                    order.push(v);
                    let (targets, weights) = g.neighbor_row(v);
                    for (&w, &wt) in targets.iter().zip(weights) {
                        let w = w as usize;
                        // A saturated sum equals INFINITE_WEIGHT and cannot pass the
                        // strict `<`, so the sentinel is never stored as a finite
                        // distance (see INFINITE_WEIGHT).
                        let nd = d.saturating_add(wt);
                        if nd < dist[w] {
                            dist[w] = nd;
                            parent[w] = Some(v);
                            heap.push(Reverse((nd, w as u32)));
                        }
                    }
                }
            }
            Some(e) => {
                let (lo, hi) = e.endpoints();
                while let Some(Reverse((d, v))) = heap.pop() {
                    let v = v as usize;
                    if d > dist[v] {
                        continue;
                    }
                    order.push(v);
                    let (targets, weights) = g.neighbor_row(v);
                    for (&w, &wt) in targets.iter().zip(weights) {
                        let w = w as usize;
                        if (v == lo && w == hi) || (v == hi && w == lo) {
                            continue;
                        }
                        let nd = d.saturating_add(wt);
                        if nd < dist[w] {
                            dist[w] = nd;
                            parent[w] = Some(v);
                            heap.push(Reverse((nd, w as u32)));
                        }
                    }
                }
            }
        }
    }

    /// The source of the last run.
    #[inline]
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Distances of the last run (`INFINITE_WEIGHT` for unreachable vertices).
    #[inline]
    pub fn dist(&self) -> &[Weight] {
        &self.dist
    }

    /// Shortest-path-tree predecessors of the last run (`None` for the source and
    /// unreachable vertices).
    #[inline]
    pub fn parent(&self) -> &[Option<Vertex>] {
        &self.parent
    }

    /// Settled vertices of the last run in settle order (source first, distances
    /// non-decreasing).
    #[inline]
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }

    /// Clones the buffers of the last run into an owned [`DijkstraResult`].
    pub fn to_result(&self) -> DijkstraResult {
        DijkstraResult { dist: self.dist.clone(), pred: self.parent.clone(), source: self.source }
    }

    /// Moves the buffers of the last run into an owned [`DijkstraResult`] without copying.
    pub fn into_result(self) -> DijkstraResult {
        DijkstraResult { dist: self.dist, pred: self.parent, source: self.source }
    }
}

/// A rooted Dijkstra shortest-path tree of a weighted graph, annotated for `O(1)` path
/// queries — the weighted mirror of [`ShortestPathTree`](crate::ShortestPathTree).
///
/// Weighted canonical paths separate *distance* (sum of weights, [`Weight`]) from *depth*
/// (number of edges on the canonical path); replacement-path tables index avoided edges by
/// their 0-based position on the canonical path, which is `depth(child) - 1`.
///
/// ```
/// use msrp_graph::{Edge, WeightedGraph, WeightedTree};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = WeightedGraph::from_edges(4, &[(0, 1, 5), (1, 2, 5), (0, 3, 1), (3, 2, 2)])?;
/// let t = WeightedTree::build(&g.freeze(), 0);
/// assert_eq!(t.distance(2), Some(3));
/// assert_eq!(t.depth(2), 2);
/// assert!(t.path_contains_edge(2, Edge::new(0, 3)));
/// assert!(!t.path_contains_edge(2, Edge::new(0, 1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct WeightedTree {
    source: Vertex,
    dist: Vec<Weight>,
    parent: Vec<Option<Vertex>>,
    /// Hop depth in the tree (0 for the source; 0 for unreachable vertices, which are not
    /// part of the tree).
    depth: Vec<u32>,
    order: Vec<Vertex>,
    tin: Vec<u32>,
    tout: Vec<u32>,
}

impl WeightedTree {
    /// Builds the Dijkstra tree rooted at `source` (deterministic: sorted adjacency order,
    /// min-heap ties broken towards smaller vertex ids).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range for `g`.
    pub fn build(g: &WeightedCsrGraph, source: Vertex) -> Self {
        let mut scratch = DijkstraScratch::new();
        Self::build_with_scratch(g, source, &mut scratch)
    }

    /// Builds the Dijkstra tree rooted at `source` reusing the caller's scratch buffers —
    /// the preferred entry point when many trees are built over the same graph.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range for `g`.
    pub fn build_with_scratch(
        g: &WeightedCsrGraph,
        source: Vertex,
        scratch: &mut DijkstraScratch,
    ) -> Self {
        scratch.run(g, source);
        Self::from_parts(
            source,
            scratch.dist().to_vec(),
            scratch.parent().to_vec(),
            scratch.order().to_vec(),
        )
    }

    /// Builds the annotated tree from raw Dijkstra buffers. `order` must settle parents
    /// before children (any Dijkstra settle order does).
    pub fn from_parts(
        source: Vertex,
        dist: Vec<Weight>,
        parent: Vec<Option<Vertex>>,
        order: Vec<Vertex>,
    ) -> Self {
        let n = dist.len();
        let mut depth = vec![0u32; n];
        for &v in &order {
            if let Some(p) = parent[v] {
                depth[v] = depth[p] + 1;
            }
        }
        let (tin, tout) = euler_times(source, n, &order, &parent);
        WeightedTree { source, dist, parent, depth, order, tin, tout }
    }

    /// Children lists of the tree, in settle order (a parent's children appear in the
    /// order they were settled). Rebuilt from the parent/order arrays on each call; the
    /// weighted solver consumes this once per source to enumerate subtrees.
    pub fn children_of(&self) -> Vec<Vec<Vertex>> {
        let mut children: Vec<Vec<Vertex>> = vec![Vec::new(); self.vertex_count()];
        for &v in &self.order {
            if let Some(p) = self.parent[v] {
                children[p].push(v);
            }
        }
        children
    }

    /// The root of the tree.
    #[inline]
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Number of vertices of the underlying graph.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.dist.len()
    }

    /// Weighted distance from the root to `v`, or `None` if `v` is unreachable.
    #[inline]
    pub fn distance(&self, v: Vertex) -> Option<Weight> {
        let d = self.dist[v];
        if d == INFINITE_WEIGHT {
            None
        } else {
            Some(d)
        }
    }

    /// Weighted distance from the root to `v`, with `INFINITE_WEIGHT` when unreachable.
    #[inline]
    pub fn distance_or_infinite(&self, v: Vertex) -> Weight {
        self.dist[v]
    }

    /// The raw distance vector (entries are `INFINITE_WEIGHT` for unreachable vertices).
    #[inline]
    pub fn distances(&self) -> &[Weight] {
        &self.dist
    }

    /// Number of edges on the canonical root→`v` path (0 for the root and for unreachable
    /// vertices).
    #[inline]
    pub fn depth(&self, v: Vertex) -> usize {
        self.depth[v] as usize
    }

    /// Tree parent of `v`.
    #[inline]
    pub fn parent(&self, v: Vertex) -> Option<Vertex> {
        self.parent[v]
    }

    /// `true` when `v` is reachable from the root.
    #[inline]
    pub fn is_reachable(&self, v: Vertex) -> bool {
        self.dist[v] != INFINITE_WEIGHT
    }

    /// Reachable vertices in settle order (root first, distances non-decreasing).
    #[inline]
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }

    /// Returns `true` when `a` is an ancestor of `d` (a vertex is an ancestor of itself).
    #[inline]
    pub fn is_ancestor(&self, a: Vertex, d: Vertex) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(d) {
            return a == d;
        }
        self.tin[a] <= self.tin[d] && self.tout[d] <= self.tout[a]
    }

    /// Returns `true` when `v` lies on the canonical root→`t` path.
    #[inline]
    pub fn path_contains_vertex(&self, t: Vertex, v: Vertex) -> bool {
        self.is_reachable(t) && self.is_ancestor(v, t)
    }

    /// If `e` is a tree edge, returns its deeper endpoint (the child side), else `None`.
    pub fn deeper_endpoint(&self, e: Edge) -> Option<Vertex> {
        let (u, v) = e.endpoints();
        if self.parent[v] == Some(u) {
            Some(v)
        } else if self.parent[u] == Some(v) {
            Some(u)
        } else {
            None
        }
    }

    /// Returns `true` when `e` is an edge of the tree.
    pub fn is_tree_edge(&self, e: Edge) -> bool {
        self.deeper_endpoint(e).is_some()
    }

    /// Returns `true` when the edge `e` lies on the canonical root→`t` path.
    pub fn path_contains_edge(&self, t: Vertex, e: Edge) -> bool {
        match self.deeper_endpoint(e) {
            Some(child) => self.is_reachable(t) && self.is_ancestor(child, t),
            None => false,
        }
    }

    /// Position (0-based) of the edge `e` on the canonical root→`t` path, if it lies on it.
    pub fn edge_position_on_path(&self, t: Vertex, e: Edge) -> Option<usize> {
        let child = self.deeper_endpoint(e)?;
        if self.is_reachable(t) && self.is_ancestor(child, t) {
            Some(self.depth[child] as usize - 1)
        } else {
            None
        }
    }

    /// The canonical path from the root to `t` (inclusive), or `None` if `t` is unreachable.
    pub fn path_from_source(&self, t: Vertex) -> Option<Vec<Vertex>> {
        if !self.is_reachable(t) {
            return None;
        }
        let mut path = Vec::with_capacity(self.depth[t] as usize + 1);
        let mut cur = t;
        path.push(cur);
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }

    /// All edges on the canonical root→`t` path, in root→`t` order.
    pub fn path_edges(&self, t: Vertex) -> Vec<Edge> {
        match self.path_from_source(t) {
            None => Vec::new(),
            Some(path) => path.windows(2).map(|w| Edge::new(w[0], w[1])).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A weighted square with a shortcut: the cheap route 0→3→2 undercuts the hop-short 0→1→2.
    fn sample() -> WeightedGraph {
        WeightedGraph::from_edges(5, &[(0, 1, 5), (1, 2, 5), (0, 3, 1), (3, 2, 2), (2, 4, 1)])
            .unwrap()
    }

    #[test]
    fn construction_and_queries() {
        let g = sample();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.edge_weight(0, 2), None);
        assert_eq!(g.edge_weight(0, 99), None);
        assert!(g.has_edge(3, 2));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[(1, 5), (3, 1)]);
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 5);
        assert_eq!(edges[0], (Edge::new(0, 1), 5));
    }

    #[test]
    fn invalid_edges_are_rejected() {
        let mut g = WeightedGraph::new(3);
        assert!(matches!(g.add_edge(0, 3, 1), Err(GraphError::VertexOutOfRange { .. })));
        assert!(matches!(g.add_edge(1, 1, 1), Err(GraphError::SelfLoop { .. })));
        g.add_edge(0, 1, 2).unwrap();
        assert!(matches!(g.add_edge(1, 0, 9), Err(GraphError::DuplicateEdge { .. })));
        assert!(matches!(
            g.add_edge(1, 2, INFINITE_WEIGHT),
            Err(GraphError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn freeze_thaw_round_trips_exactly() {
        let g = sample();
        let csr = g.freeze();
        assert_eq!(csr.vertex_count(), g.vertex_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.edge_vec(), g.edge_vec());
        assert_eq!(csr.thaw(), g);
        for v in 0..g.vertex_count() {
            assert_eq!(csr.degree(v), g.degree(v));
            assert_eq!(csr.neighbors(v).collect::<Vec<_>>(), g.neighbors(v));
        }
        assert_eq!(csr.edge_weight(2, 3), Some(2));
        assert_eq!(csr.edge_weight(2, 7), None);
        let empty = WeightedGraph::new(0);
        assert_eq!(empty.freeze().thaw(), empty);
        assert_eq!(WeightedCsrGraph::default(), WeightedGraph::new(0).freeze());
    }

    #[test]
    fn topology_forgets_weights() {
        let g = sample();
        let t = g.topology();
        assert_eq!(t.edge_count(), g.edge_count());
        assert!(t.has_edge(0, 3));
        let relifted = WeightedGraph::from_graph(&t, |_| 7);
        assert_eq!(relifted.edge_weight(0, 3), Some(7));
    }

    #[test]
    fn dijkstra_takes_the_cheap_route() {
        let g = sample().freeze();
        assert!(g.is_connected());
        let r = g.dijkstra(0);
        assert_eq!(r.dist, vec![0, 5, 3, 1, 4]);
        assert_eq!(r.path_to(4), Some(vec![0, 3, 2, 4]));
    }

    #[test]
    fn scratch_matches_one_shot_and_resets_cleanly() {
        let g = sample().freeze();
        let mut scratch = DijkstraScratch::new();
        for s in 0..g.vertex_count() {
            scratch.run(&g, s);
            let fresh = g.dijkstra(s);
            assert_eq!(scratch.source(), s);
            assert_eq!(scratch.dist(), &fresh.dist[..], "source {s}");
            assert_eq!(scratch.parent(), &fresh.pred[..], "source {s}");
            assert_eq!(scratch.to_result().dist, fresh.dist);
        }
        // Settle order starts at the source with non-decreasing distances.
        scratch.run(&g, 0);
        assert_eq!(scratch.order()[0], 0);
        let dists: Vec<Weight> = scratch.order().iter().map(|&v| scratch.dist()[v]).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        // Reuse across graphs of different sizes forces a full re-init.
        let small = WeightedGraph::from_edges(2, &[(0, 1, 3)]).unwrap().freeze();
        scratch.run(&small, 1);
        assert_eq!(scratch.dist(), &[3, 0]);
        scratch.run(&g, 0);
        assert_eq!(scratch.dist(), &[0, 5, 3, 1, 4]);
    }

    #[test]
    fn avoiding_runs_reset_stale_entries() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap().freeze();
        let mut scratch = DijkstraScratch::new();
        scratch.run_avoiding(&g, 0, Edge::new(1, 2));
        assert_eq!(scratch.dist()[1], 1);
        assert_eq!(scratch.dist()[3], INFINITE_WEIGHT);
        scratch.run(&g, 0);
        assert_eq!(scratch.dist(), &[0, 1, 2, 3]);
        assert_eq!(scratch.parent()[3], Some(2));
        let one_shot = g.dijkstra_avoiding_edge(0, Edge::new(1, 2));
        assert_eq!(one_shot.dist[3], INFINITE_WEIGHT);
        assert_eq!(one_shot.dist[1], 1);
    }

    #[test]
    fn unit_weights_reproduce_bfs_distances() {
        let topo = crate::generators::grid_graph(4, 4);
        let weighted = WeightedGraph::from_graph(&topo, |_| 1).freeze();
        let bfs = crate::bfs::bfs(&topo, 0);
        let dj = weighted.dijkstra(0);
        for v in 0..16 {
            assert_eq!(dj.dist[v], bfs.dist[v] as Weight);
        }
        // The trees are bit-for-bit identical too: same sorted-adjacency tie-breaking.
        assert_eq!(dj.pred, bfs.parent);
    }

    #[test]
    fn weighted_tree_annotations() {
        let g = sample().freeze();
        let t = WeightedTree::build(&g, 0);
        assert_eq!(t.source(), 0);
        assert_eq!(t.vertex_count(), 5);
        assert_eq!(t.distance(4), Some(4));
        assert_eq!(t.depth(4), 3);
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.parent(4), Some(2));
        assert_eq!(t.path_from_source(4), Some(vec![0, 3, 2, 4]));
        assert_eq!(t.path_edges(4), vec![Edge::new(0, 3), Edge::new(3, 2), Edge::new(2, 4)]);
        assert!(t.is_ancestor(3, 4));
        assert!(!t.is_ancestor(1, 4));
        assert!(t.path_contains_vertex(4, 2));
        assert!(t.is_tree_edge(Edge::new(0, 3)));
        assert!(!t.is_tree_edge(Edge::new(1, 2)));
        assert_eq!(t.edge_position_on_path(4, Edge::new(3, 2)), Some(1));
        assert_eq!(t.edge_position_on_path(4, Edge::new(0, 1)), None);
        assert_eq!(t.deeper_endpoint(Edge::new(0, 3)), Some(3));
        assert_eq!(t.order()[0], 0);
        assert_eq!(t.distances()[3], 1);
        assert_eq!(t.distance_or_infinite(3), 1);
    }

    #[test]
    fn weighted_tree_handles_unreachable_vertices() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 2), (2, 3, 2)]).unwrap().freeze();
        assert!(!g.is_connected());
        let t = WeightedTree::build(&g, 0);
        assert_eq!(t.distance(2), None);
        assert_eq!(t.distance_or_infinite(2), INFINITE_WEIGHT);
        assert!(!t.is_reachable(3));
        assert_eq!(t.depth(2), 0);
        assert_eq!(t.path_from_source(2), None);
        assert!(t.path_edges(3).is_empty());
        assert!(!t.path_contains_edge(2, Edge::new(2, 3)));
        assert!(!t.is_ancestor(0, 2));
        assert!(t.is_ancestor(2, 2));
    }

    #[test]
    fn zero_weight_edges_settle_parents_first() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]).unwrap().freeze();
        let t = WeightedTree::build(&g, 0);
        assert_eq!(t.distance(3), Some(0));
        assert_eq!(t.depth(3), 3);
        assert_eq!(t.path_from_source(3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = WeightedGraph::new(2).freeze();
        let mut scratch = DijkstraScratch::new();
        scratch.run(&g, 5);
    }
}
