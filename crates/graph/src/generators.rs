//! Deterministic, seedable graph generators for tests, examples and the benchmark harness.
//!
//! The paper evaluates nothing empirically, so the workloads used by the reproduction's
//! experiments are standard synthetic families: Erdős–Rényi graphs (sparse, `m ≈ c·n`), grids
//! and tori (high diameter, exercises the far-edge machinery), preferential-attachment graphs
//! (skewed degrees), random geometric graphs (locality), and structured graphs (paths, cycles,
//! stars, hypercubes, complete and complete-bipartite graphs) for edge cases.
//!
//! All generators take an explicit RNG so that a seed fully determines the instance.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dijkstra::Weight;
use crate::error::GraphError;
use crate::graph::{Graph, Vertex};
use crate::weighted::WeightedGraph;

/// Generates an Erdős–Rényi `G(n, p)` graph.
///
/// # Errors
///
/// Returns an error if `p` is not in `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters { reason: format!("p = {p} not in [0, 1]") });
    }
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v).expect("generated edges are simple by construction");
            }
        }
    }
    Ok(g)
}

/// Generates a uniform random graph with exactly `m` edges (`G(n, m)`).
///
/// # Errors
///
/// Returns an error if `m` exceeds the number of possible edges `n·(n-1)/2`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph, GraphError> {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_edges {
        return Err(GraphError::InvalidParameters {
            reason: format!("m = {m} exceeds the maximum of {max_edges} for n = {n}"),
        });
    }
    let mut g = Graph::new(n);
    let mut added = 0;
    // Rejection sampling is fine for the sparse graphs used in the experiments; fall back to
    // explicit enumeration when the requested density is high.
    if (m as f64) < 0.4 * max_edges as f64 {
        while added < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            if g.add_edge_if_absent(u, v)? {
                added += 1;
            }
        }
    } else {
        let mut all: Vec<(usize, usize)> = Vec::with_capacity(max_edges);
        for u in 0..n {
            for v in (u + 1)..n {
                all.push((u, v));
            }
        }
        all.shuffle(rng);
        for &(u, v) in all.iter().take(m) {
            g.add_edge(u, v)?;
        }
    }
    Ok(g)
}

/// Generates a *connected* random graph with `n` vertices and exactly `m` edges by combining a
/// uniform random spanning tree (random-walk / random parent construction) with extra uniformly
/// random edges.
///
/// This is the default workload of the benchmark harness: the MSRP problem is only interesting
/// for targets that are reachable, and disconnection would make runtimes incomparable.
///
/// # Errors
///
/// Returns an error if `m < n - 1` (cannot be connected) or `m` exceeds `n(n-1)/2`.
pub fn connected_gnm<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Ok(Graph::new(0));
    }
    let max_edges = n * (n - 1) / 2;
    if m + 1 < n {
        return Err(GraphError::InvalidParameters {
            reason: format!("m = {m} is too small to connect {n} vertices"),
        });
    }
    if m > max_edges {
        return Err(GraphError::InvalidParameters {
            reason: format!("m = {m} exceeds the maximum of {max_edges} for n = {n}"),
        });
    }
    let mut g = Graph::new(n);
    // Random spanning tree: attach each vertex (in a random order) to a random earlier vertex.
    let mut order: Vec<Vertex> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.add_edge(order[i], order[j])?;
    }
    let mut added = n - 1;
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if g.add_edge_if_absent(u, v)? {
            added += 1;
        }
    }
    Ok(g)
}

/// A path graph `0 - 1 - ... - (n-1)`. Every edge is a bridge, so no replacement path exists
/// for any failure: a useful worst case for the test-suite.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i).expect("path edges are simple");
    }
    g
}

/// A cycle on `n ≥ 3` vertices. Every replacement path is "the long way around".
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path_graph(n);
    g.add_edge(n - 1, 0).expect("closing edge is new");
    g
}

/// A star with `n - 1` leaves around vertex 0.
pub fn star_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(0, i).expect("star edges are simple");
    }
    g
}

/// The complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("complete graph edges are simple");
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}` (vertices `0..a` on one side, `a..a+b` on the other).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u, a + v).expect("bipartite edges are simple");
        }
    }
    g
}

/// An `rows × cols` grid graph (4-neighbour connectivity).
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1)).expect("grid edges are simple");
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c)).expect("grid edges are simple");
            }
        }
    }
    g
}

/// An `rows × cols` torus (grid with wrap-around edges). Requires `rows, cols ≥ 3` so that the
/// wrap-around edges do not duplicate grid edges.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3`.
pub fn torus_graph(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus requires both dimensions >= 3");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut g = grid_graph(rows, cols);
    for r in 0..rows {
        g.add_edge(idx(r, cols - 1), idx(r, 0)).expect("wrap edges are new");
    }
    for c in 0..cols {
        g.add_edge(idx(rows - 1, c), idx(0, c)).expect("wrap edges are new");
    }
    g
}

/// The `d`-dimensional hypercube (`2^d` vertices).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                g.add_edge(v, w).expect("hypercube edges are simple");
            }
        }
    }
    g
}

/// A Barabási–Albert-style preferential-attachment graph: starts from a small clique and
/// attaches each new vertex to `k` distinct existing vertices chosen proportionally to degree.
///
/// # Errors
///
/// Returns an error if `k == 0` or `k >= n`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k == 0 || k >= n.max(1) {
        return Err(GraphError::InvalidParameters {
            reason: format!("preferential attachment needs 0 < k < n (k = {k}, n = {n})"),
        });
    }
    let mut g = Graph::new(n);
    let seed = (k + 1).min(n);
    for u in 0..seed {
        for v in (u + 1)..seed {
            g.add_edge(u, v)?;
        }
    }
    // Repeated-endpoint list: each edge contributes both endpoints, so sampling uniformly from
    // the list is sampling proportionally to degree.
    let mut endpoints: Vec<Vertex> = Vec::new();
    for u in 0..seed {
        for v in (u + 1)..seed {
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed..n {
        let mut targets = Vec::with_capacity(k);
        let mut guard = 0;
        while targets.len() < k && guard < 50 * k + 100 {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        // Fall back to arbitrary earlier vertices if degree-proportional sampling stalls.
        let mut fallback = 0;
        while targets.len() < k {
            if fallback >= v {
                break;
            }
            if !targets.contains(&fallback) {
                targets.push(fallback);
            }
            fallback += 1;
        }
        for &t in &targets {
            g.add_edge(v, t)?;
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(g)
}

/// A random geometric graph: `n` points in the unit square, edges between pairs closer than
/// `radius` (plus a path over the points sorted by x-coordinate when `ensure_connected` is set,
/// to avoid isolated vertices in sparse regimes).
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    ensure_connected: bool,
    rng: &mut R,
) -> Graph {
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let mut g = Graph::new(n);
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            if dx * dx + dy * dy <= r2 {
                g.add_edge(u, v).expect("geometric edges are simple");
            }
        }
    }
    if ensure_connected && n > 1 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| points[a].0.partial_cmp(&points[b].0).expect("finite coords"));
        for w in order.windows(2) {
            let _ = g.add_edge_if_absent(w[0], w[1]);
        }
    }
    g
}

/// Lifts `g` to a weighted graph with independent uniform weights in `1..=max_weight`.
///
/// Edges are visited in normalized sorted order, so a seeded RNG fully determines the
/// weighting — the weighted analogue of the "explicit RNG" contract every generator here
/// follows.
///
/// # Panics
///
/// Panics if `max_weight` is 0 (zero-weight edges are legal in a [`WeightedGraph`], but a
/// degenerate all-zero weighting is never what a caller wants from a *random* weighting)
/// or `INFINITE_WEIGHT` (the reserved "no path" sentinel, which no edge may carry).
pub fn random_weights<R: Rng + ?Sized>(
    g: &Graph,
    max_weight: Weight,
    rng: &mut R,
) -> WeightedGraph {
    assert!(max_weight >= 1, "max_weight must be at least 1");
    assert!(
        max_weight < crate::INFINITE_WEIGHT,
        "max_weight must stay below the INFINITE_WEIGHT sentinel"
    );
    WeightedGraph::from_graph(g, |_| rng.gen_range(1..=max_weight))
}

/// A connected `G(n, m)` topology (see [`connected_gnm`]) with uniform random weights in
/// `1..=max_weight`; the default weighted workload of the benches and experiment E9.
///
/// # Errors
///
/// Returns the same errors as [`connected_gnm`].
pub fn weighted_connected_gnm<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    max_weight: Weight,
    rng: &mut R,
) -> Result<WeightedGraph, GraphError> {
    let g = connected_gnm(n, m, rng)?;
    Ok(random_weights(&g, max_weight, rng))
}

/// A preferential-attachment topology (see [`barabasi_albert`]) with uniform random weights
/// in `1..=max_weight` (skewed degrees under a weighted metric).
///
/// # Errors
///
/// Returns the same errors as [`barabasi_albert`].
pub fn weighted_barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    max_weight: Weight,
    rng: &mut R,
) -> Result<WeightedGraph, GraphError> {
    let g = barabasi_albert(n, k, rng)?;
    Ok(random_weights(&g, max_weight, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnp_respects_probability_extremes() {
        let mut r = rng(1);
        let empty = gnp(20, 0.0, &mut r).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(20, 1.0, &mut r).unwrap();
        assert_eq!(full.edge_count(), 20 * 19 / 2);
        assert!(gnp(5, 1.5, &mut r).is_err());
    }

    #[test]
    fn gnp_is_deterministic_for_a_seed() {
        let a = gnp(40, 0.1, &mut rng(7)).unwrap();
        let b = gnp(40, 0.1, &mut rng(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gnm_produces_exact_edge_counts() {
        for &(n, m) in &[(10, 9), (30, 60), (12, 66)] {
            let g = gnm(n, m, &mut rng(3)).unwrap();
            assert_eq!(g.vertex_count(), n);
            assert_eq!(g.edge_count(), m);
        }
        assert!(gnm(5, 11, &mut rng(3)).is_err());
    }

    #[test]
    fn connected_gnm_is_connected_with_exact_size() {
        for seed in 0..5u64 {
            let g = connected_gnm(50, 120, &mut rng(seed)).unwrap();
            assert_eq!(g.vertex_count(), 50);
            assert_eq!(g.edge_count(), 120);
            assert!(g.is_connected());
        }
        assert!(connected_gnm(10, 5, &mut rng(0)).is_err());
        assert!(connected_gnm(4, 100, &mut rng(0)).is_err());
        assert_eq!(connected_gnm(0, 0, &mut rng(0)).unwrap().vertex_count(), 0);
    }

    #[test]
    fn structured_graph_sizes() {
        assert_eq!(path_graph(10).edge_count(), 9);
        assert_eq!(cycle_graph(10).edge_count(), 10);
        assert_eq!(star_graph(10).edge_count(), 9);
        assert_eq!(complete_graph(7).edge_count(), 21);
        assert_eq!(complete_bipartite(3, 4).edge_count(), 12);
        assert_eq!(grid_graph(4, 5).edge_count(), 4 * 4 + 5 * 3);
        assert_eq!(torus_graph(4, 5).edge_count(), 2 * 4 * 5);
        assert_eq!(hypercube(4).edge_count(), 16 * 4 / 2);
    }

    #[test]
    fn structured_graphs_are_connected() {
        assert!(path_graph(17).is_connected());
        assert!(cycle_graph(9).is_connected());
        assert!(star_graph(9).is_connected());
        assert!(grid_graph(6, 7).is_connected());
        assert!(torus_graph(3, 3).is_connected());
        assert!(hypercube(5).is_connected());
        assert!(complete_bipartite(2, 5).is_connected());
    }

    #[test]
    fn grid_degrees_are_correct() {
        let g = grid_graph(3, 3);
        assert_eq!(g.degree(4), 4); // center
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge midpoint
        let t = torus_graph(3, 3);
        for v in 0..9 {
            assert_eq!(t.degree(v), 4);
        }
    }

    #[test]
    fn barabasi_albert_shapes() {
        let g = barabasi_albert(100, 3, &mut rng(11)).unwrap();
        assert_eq!(g.vertex_count(), 100);
        assert!(g.is_connected());
        // Every vertex added after the seed has degree at least k.
        for v in 4..100 {
            assert!(g.degree(v) >= 3, "vertex {v} has degree {}", g.degree(v));
        }
        assert!(barabasi_albert(10, 0, &mut rng(0)).is_err());
        assert!(barabasi_albert(5, 5, &mut rng(0)).is_err());
    }

    #[test]
    fn barabasi_albert_has_skewed_degrees() {
        let g = barabasi_albert(300, 2, &mut rng(5)).unwrap();
        let max_deg = (0..300).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 10, "expected a hub, max degree was {max_deg}");
    }

    #[test]
    fn random_geometric_connectivity_helper() {
        let g = random_geometric(60, 0.05, true, &mut rng(2));
        assert!(g.is_connected());
        let sparse = random_geometric(60, 0.0, false, &mut rng(2));
        assert_eq!(sparse.edge_count(), 0);
    }

    #[test]
    fn random_weights_are_seeded_and_in_range() {
        let g = connected_gnm(30, 70, &mut rng(5)).unwrap();
        let a = random_weights(&g, 10, &mut rng(9));
        let b = random_weights(&g, 10, &mut rng(9));
        assert_eq!(a, b, "a seed must fully determine the weighting");
        assert_eq!(a.edge_count(), g.edge_count());
        assert!(a.edges().all(|(_, w)| (1..=10).contains(&w)));
        let c = random_weights(&g, 10, &mut rng(10));
        assert_ne!(a, c, "different seeds must (overwhelmingly) differ");
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn random_weights_rejects_the_sentinel_bound() {
        let g = path_graph(3);
        let _ = random_weights(&g, Weight::MAX, &mut rng(0));
    }

    #[test]
    fn weighted_generators_match_their_topologies() {
        let w = weighted_connected_gnm(40, 90, 100, &mut rng(3)).unwrap();
        assert_eq!(w.vertex_count(), 40);
        assert_eq!(w.edge_count(), 90);
        assert!(w.freeze().is_connected());
        let w2 = weighted_connected_gnm(40, 90, 100, &mut rng(3)).unwrap();
        assert_eq!(w, w2);
        let ba = weighted_barabasi_albert(50, 2, 7, &mut rng(4)).unwrap();
        assert!(ba.freeze().is_connected());
        assert!(ba.edges().all(|(_, wt)| (1..=7).contains(&wt)));
        assert!(weighted_connected_gnm(10, 5, 3, &mut rng(0)).is_err());
        assert!(weighted_barabasi_albert(5, 5, 3, &mut rng(0)).is_err());
    }

    #[test]
    fn hypercube_neighbours_differ_in_one_bit() {
        let g = hypercube(3);
        for v in 0..8usize {
            for &w in g.neighbors(v) {
                assert_eq!((v ^ w).count_ones(), 1);
            }
        }
    }
}
