//! Whole-graph metrics used to characterize experiment workloads: eccentricities, diameter,
//! radius, average distance, degree statistics and component structure.
//!
//! The near/far threshold of the paper (`2·sqrt(n/σ)·log n`) only produces *far* edges when the
//! graph's diameter exceeds it, so the experiment harness reports these metrics next to every
//! workload to make the regime explicit.

use crate::csr::BfsScratch;
use crate::distance::{Distance, INFINITE_DISTANCE};
use crate::graph::{Graph, Vertex};

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphMetrics {
    /// Number of vertices.
    pub vertex_count: usize,
    /// Number of edges.
    pub edge_count: usize,
    /// Number of connected components.
    pub component_count: usize,
    /// Eccentricity of every vertex within its component (`INFINITE_DISTANCE` never appears;
    /// isolated vertices have eccentricity 0).
    pub eccentricity: Vec<Distance>,
    /// Largest finite eccentricity (0 for an empty graph).
    pub diameter: Distance,
    /// Smallest eccentricity over the largest component (0 for an empty graph).
    pub radius: Distance,
    /// Average finite pairwise distance (0.0 when there are no reachable pairs).
    pub average_distance: f64,
    /// Minimum, average and maximum degree.
    pub degree_min: usize,
    /// Average degree.
    pub degree_avg: f64,
    /// Maximum degree.
    pub degree_max: usize,
}

/// Computes all metrics with one BFS per vertex (`O(n·(m + n))`), run over a frozen CSR view
/// with shared scratch buffers (no allocation inside the loop).
pub fn graph_metrics(g: &Graph) -> GraphMetrics {
    let n = g.vertex_count();
    let csr = g.freeze();
    let mut scratch = BfsScratch::new();
    let mut eccentricity = vec![0 as Distance; n];
    let mut component = vec![usize::MAX; n];
    let mut component_count = 0usize;
    let mut sum_dist: u64 = 0;
    let mut pair_count: u64 = 0;

    for v in 0..n {
        scratch.run(&csr, v);
        let dist = scratch.dist();
        if component[v] == usize::MAX {
            let id = component_count;
            component_count += 1;
            for (w, &d) in dist.iter().enumerate() {
                if d != INFINITE_DISTANCE {
                    component[w] = id;
                }
            }
        }
        let mut ecc = 0;
        for (w, &d) in dist.iter().enumerate() {
            if w != v && d != INFINITE_DISTANCE {
                ecc = ecc.max(d);
                sum_dist += d as u64;
                pair_count += 1;
            }
        }
        eccentricity[v] = ecc;
    }

    let diameter = eccentricity.iter().copied().max().unwrap_or(0);
    // Radius over the component with the largest eccentricities (the "main" component): take the
    // minimum eccentricity among vertices whose eccentricity equals their component's maximum
    // reach; simpler and adequate: minimum nonzero eccentricity, or 0 for trivial graphs.
    let radius = eccentricity.iter().copied().filter(|&e| e > 0).min().unwrap_or(0);
    let degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    GraphMetrics {
        vertex_count: n,
        edge_count: g.edge_count(),
        component_count,
        eccentricity,
        diameter,
        radius,
        average_distance: if pair_count == 0 { 0.0 } else { sum_dist as f64 / pair_count as f64 },
        degree_min: degrees.iter().copied().min().unwrap_or(0),
        degree_avg: g.average_degree(),
        degree_max: degrees.iter().copied().max().unwrap_or(0),
    }
}

/// The two-sweep lower bound on the diameter (exact on trees, cheap on everything): BFS from
/// `start`, then BFS from the farthest vertex found.
pub fn diameter_lower_bound(g: &Graph, start: Vertex) -> Distance {
    if g.vertex_count() == 0 {
        return 0;
    }
    let csr = g.freeze();
    let mut scratch = BfsScratch::new();
    scratch.run(&csr, start);
    let far = scratch
        .dist()
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != INFINITE_DISTANCE)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v)
        .unwrap_or(start);
    scratch.run(&csr, far);
    scratch.dist().iter().copied().filter(|&d| d != INFINITE_DISTANCE).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, grid_graph, path_graph, star_graph};

    #[test]
    fn path_graph_metrics() {
        let m = graph_metrics(&path_graph(6));
        assert_eq!(m.diameter, 5);
        assert_eq!(m.radius, 3);
        assert_eq!(m.component_count, 1);
        assert_eq!(m.degree_min, 1);
        assert_eq!(m.degree_max, 2);
        assert_eq!(m.eccentricity[0], 5);
        assert_eq!(m.eccentricity[3], 3);
    }

    #[test]
    fn cycle_and_complete_graph_metrics() {
        let c = graph_metrics(&cycle_graph(10));
        assert_eq!(c.diameter, 5);
        assert_eq!(c.radius, 5);
        let k = graph_metrics(&complete_graph(7));
        assert_eq!(k.diameter, 1);
        assert_eq!(k.average_distance, 1.0);
        assert_eq!(k.degree_min, 6);
        assert_eq!(k.degree_max, 6);
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let m = graph_metrics(&grid_graph(4, 7));
        assert_eq!(m.diameter, 3 + 6);
        assert_eq!(m.vertex_count, 28);
        assert_eq!(m.edge_count, 4 * 6 + 7 * 3);
    }

    #[test]
    fn disconnected_graphs_count_components() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        let m = graph_metrics(&g);
        assert_eq!(m.component_count, 3);
        assert_eq!(m.diameter, 2);
        assert_eq!(m.eccentricity[3], 1);
    }

    #[test]
    fn star_metrics() {
        let m = graph_metrics(&star_graph(9));
        assert_eq!(m.diameter, 2);
        assert_eq!(m.radius, 1);
        assert_eq!(m.degree_max, 8);
    }

    #[test]
    fn two_sweep_bound_is_tight_on_trees_and_valid_elsewhere() {
        assert_eq!(diameter_lower_bound(&path_graph(9), 4), 8);
        assert_eq!(diameter_lower_bound(&star_graph(6), 0), 2);
        let g = grid_graph(5, 5);
        let exact = graph_metrics(&g).diameter;
        let bound = diameter_lower_bound(&g, 12);
        assert!(bound <= exact);
        assert!(bound >= exact / 2);
        assert_eq!(diameter_lower_bound(&Graph::new(0), 0), 0);
    }
}
