//! Distance arithmetic with an explicit "unreachable" value.
//!
//! All graphs in this reproduction are unweighted, so hop counts fit comfortably in a `u32`.
//! `u32::MAX` is reserved as the *infinite* distance (`∞` in the paper), returned whenever a
//! vertex is unreachable or a replacement path does not exist (for example when the avoided
//! edge is a bridge).

/// Hop-count distance type used throughout the workspace.
pub type Distance = u32;

/// The distance reported when no path exists.
pub const INFINITE_DISTANCE: Distance = Distance::MAX;

/// Returns `true` when `d` represents a real (finite) distance.
///
/// ```
/// use msrp_graph::{is_finite, INFINITE_DISTANCE};
/// assert!(is_finite(0));
/// assert!(!is_finite(INFINITE_DISTANCE));
/// ```
#[inline]
pub fn is_finite(d: Distance) -> bool {
    d != INFINITE_DISTANCE
}

/// Adds two distances, propagating infinity.
///
/// ```
/// use msrp_graph::{dist_add, INFINITE_DISTANCE};
/// assert_eq!(dist_add(2, 3), 5);
/// assert_eq!(dist_add(2, INFINITE_DISTANCE), INFINITE_DISTANCE);
/// ```
#[inline]
pub fn dist_add(a: Distance, b: Distance) -> Distance {
    if a == INFINITE_DISTANCE || b == INFINITE_DISTANCE {
        INFINITE_DISTANCE
    } else {
        a.checked_add(b).unwrap_or(INFINITE_DISTANCE)
    }
}

/// Adds three distances, propagating infinity.
#[inline]
pub fn dist_add3(a: Distance, b: Distance, c: Distance) -> Distance {
    dist_add(dist_add(a, b), c)
}

/// Minimum of two distances (infinity is the identity element).
#[inline]
pub fn dist_min(a: Distance, b: Distance) -> Distance {
    a.min(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_propagates_infinity() {
        assert_eq!(dist_add(INFINITE_DISTANCE, 0), INFINITE_DISTANCE);
        assert_eq!(dist_add(0, INFINITE_DISTANCE), INFINITE_DISTANCE);
        assert_eq!(dist_add(INFINITE_DISTANCE, INFINITE_DISTANCE), INFINITE_DISTANCE);
    }

    #[test]
    fn addition_of_finite_values() {
        assert_eq!(dist_add(0, 0), 0);
        assert_eq!(dist_add(7, 11), 18);
        assert_eq!(dist_add3(1, 2, 3), 6);
        assert_eq!(dist_add3(1, INFINITE_DISTANCE, 3), INFINITE_DISTANCE);
    }

    #[test]
    fn addition_saturates_instead_of_wrapping() {
        // Values this large never occur for hop counts, but the helper must not wrap around.
        assert_eq!(dist_add(INFINITE_DISTANCE - 1, 5), INFINITE_DISTANCE);
    }

    #[test]
    fn min_treats_infinity_as_identity() {
        assert_eq!(dist_min(INFINITE_DISTANCE, 4), 4);
        assert_eq!(dist_min(4, INFINITE_DISTANCE), 4);
        assert_eq!(dist_min(3, 4), 3);
    }

    #[test]
    fn finiteness_predicate() {
        assert!(is_finite(12345));
        assert!(!is_finite(INFINITE_DISTANCE));
    }
}
