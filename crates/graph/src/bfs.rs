//! Breadth-first search (Section 5 of the paper).
//!
//! BFS is the workhorse of every algorithm in this reproduction: shortest-path trees are BFS
//! trees, the brute-force ground truth reruns BFS with an edge removed, and the preprocessing
//! phase runs BFS from every landmark and every center.
//!
//! The entry points here traverse the adjacency-list [`Graph`] directly and are kept as the
//! seed representation (and as the baseline the `graph_csr` bench compares against). Hot
//! paths should freeze the graph once ([`Graph::freeze`]) and run
//! [`bfs_csr`](crate::bfs_csr) / [`BfsScratch`](crate::BfsScratch) over the CSR view, which
//! produces bit-for-bit identical results on a flat, cache-friendly layout.

use std::collections::VecDeque;

use crate::distance::{Distance, INFINITE_DISTANCE};
use crate::edge::Edge;
use crate::graph::{Graph, Vertex};

/// The result of a breadth-first search from a single source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// The source vertex the search started from.
    pub source: Vertex,
    /// `dist[v]` is the hop distance from the source to `v` (`INFINITE_DISTANCE` if unreachable).
    pub dist: Vec<Distance>,
    /// `parent[v]` is the BFS-tree parent of `v` (`None` for the source and unreachable vertices).
    pub parent: Vec<Option<Vertex>>,
    /// Vertices in the order they were dequeued (reachable vertices only, source first).
    pub order: Vec<Vertex>,
}

impl BfsResult {
    /// Returns `true` when `v` was reached by the search.
    pub fn is_reachable(&self, v: Vertex) -> bool {
        self.dist[v] != INFINITE_DISTANCE
    }

    /// Number of vertices reached (including the source).
    pub fn reachable_count(&self) -> usize {
        self.order.len()
    }
}

/// Runs BFS from `source`, visiting neighbours in sorted order (deterministic trees).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs(g: &Graph, source: Vertex) -> BfsResult {
    bfs_impl(g, source, None)
}

/// Runs BFS from `source` in `G \ {avoid}` without materializing the modified graph.
///
/// This is the inner loop of the brute-force replacement-path baseline.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_avoiding_edge(g: &Graph, source: Vertex, avoid: Edge) -> BfsResult {
    bfs_impl(g, source, Some(avoid))
}

/// Convenience wrapper returning only the distance vector.
pub fn bfs_distances(g: &Graph, source: Vertex) -> Vec<Distance> {
    bfs(g, source).dist
}

fn bfs_impl(g: &Graph, source: Vertex, avoid: Option<Edge>) -> BfsResult {
    let n = g.vertex_count();
    assert!(source < n, "BFS source {source} out of range (n = {n})");
    let mut dist = vec![INFINITE_DISTANCE; n];
    let mut parent = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::with_capacity(n);

    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let dv = dist[v];
        for &w in g.neighbors(v) {
            if let Some(e) = avoid {
                if (v == e.lo() && w == e.hi()) || (v == e.hi() && w == e.lo()) {
                    continue;
                }
            }
            if dist[w] == INFINITE_DISTANCE {
                dist[w] = dv + 1;
                parent[w] = Some(v);
                queue.push_back(w);
            }
        }
    }
    BfsResult { source, dist, parent, order }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn distances_on_a_cycle() {
        let g = cycle(6);
        let r = bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(r.reachable_count(), 6);
        assert!(r.is_reachable(3));
    }

    #[test]
    fn parents_form_a_tree_rooted_at_the_source() {
        let g = cycle(7);
        let r = bfs(&g, 2);
        assert_eq!(r.parent[2], None);
        for v in 0..7 {
            if v == 2 {
                continue;
            }
            let p = r.parent[v].expect("connected graph");
            assert_eq!(r.dist[v], r.dist[p] + 1);
            assert!(g.has_edge(v, p));
        }
    }

    #[test]
    fn unreachable_vertices_report_infinity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let r = bfs(&g, 0);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[2], INFINITE_DISTANCE);
        assert!(!r.is_reachable(3));
        assert_eq!(r.parent[2], None);
        assert_eq!(r.reachable_count(), 2);
    }

    #[test]
    fn avoiding_an_edge_changes_distances() {
        let g = cycle(6);
        let r = bfs_avoiding_edge(&g, 0, Edge::new(0, 1));
        // Without (0,1), vertex 1 must be reached the long way round.
        assert_eq!(r.dist[1], 5);
        assert_eq!(r.dist[5], 1);
    }

    #[test]
    fn avoiding_a_bridge_disconnects() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = bfs_avoiding_edge(&g, 0, Edge::new(1, 2));
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[2], INFINITE_DISTANCE);
        assert_eq!(r.dist[3], INFINITE_DISTANCE);
    }

    #[test]
    fn order_is_source_first_and_monotone_in_distance() {
        let g = cycle(9);
        let r = bfs(&g, 4);
        assert_eq!(r.order[0], 4);
        for w in r.order.windows(2) {
            assert!(r.dist[w[0]] <= r.dist[w[1]]);
        }
    }

    #[test]
    fn bfs_distances_wrapper_matches_full_bfs() {
        let g = cycle(5);
        assert_eq!(bfs_distances(&g, 3), bfs(&g, 3).dist);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = Graph::new(2);
        let _ = bfs(&g, 5);
    }

    #[test]
    fn deterministic_tree_with_sorted_adjacency() {
        // Vertex 3 is reachable at distance 2 via both 1 and 2; the parent must be the smaller.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let r = bfs(&g, 0);
        assert_eq!(r.parent[3], Some(1));
    }
}
