//! Dijkstra's algorithm on directed weighted graphs.
//!
//! The MSRP algorithm never runs Dijkstra on the input graph (it is unweighted), but Sections
//! 7.1, 8.1, 8.2 and 8.3 of the paper all build *auxiliary* weighted digraphs whose shortest
//! paths encode replacement distances; this module provides the digraph builder and the
//! search those sections run.
//!
//! The builder ([`WeightedDigraph`]) is a flat edge list — appending a node or an edge never
//! allocates per node — and [`WeightedDigraph::freeze`] packs it into the same
//! compressed-sparse-row layout the unweighted [`CsrGraph`](crate::CsrGraph) uses
//! ([`WeightedCsr`]), which is what Dijkstra actually traverses. The freeze is a stable
//! counting sort by source node, so each node's out-edges keep their insertion order and the
//! relaxation order (and therefore every predecessor tree) is identical to the historical
//! per-node `Vec<Vec<(usize, Weight)>>` representation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Weight/distance type for auxiliary graphs.
pub type Weight = u64;

/// Distance reported for unreachable auxiliary nodes.
///
/// The sentinel doubles as the *saturation point* of distance arithmetic: any path whose
/// length would reach `Weight::MAX` is treated as unreachable. Dijkstra never records the
/// sentinel as a finite distance — a saturated sum equals the sentinel and can never win
/// the strict `<` relaxation, so a vertex only reachable through such a path stays
/// unreached (`dist == INFINITE_WEIGHT`, no predecessor, no settle). The mapping is
/// pinned in `huge_weights_do_not_overflow`.
pub const INFINITE_WEIGHT: Weight = Weight::MAX;

/// A directed graph with non-negative integer edge weights, stored as a growable edge list.
///
/// ```
/// use msrp_graph::WeightedDigraph;
///
/// let mut g = WeightedDigraph::new(4);
/// g.add_edge(0, 1, 2);
/// g.add_edge(1, 2, 2);
/// g.add_edge(0, 2, 10);
/// g.add_edge(2, 3, 1);
/// let d = g.dijkstra(0);
/// assert_eq!(d.dist[2], 4);
/// assert_eq!(d.dist[3], 5);
/// assert_eq!(d.path_to(3), Some(vec![0, 1, 2, 3]));
/// ```
#[derive(Clone, Debug, Default)]
pub struct WeightedDigraph {
    nodes: usize,
    /// `(source, target, weight)` triples in insertion order.
    edges: Vec<(u32, u32, Weight)>,
}

/// A frozen CSR view of a [`WeightedDigraph`]: one flat target array and one flat weight
/// array, delimited per node by `offsets`. This is the representation Dijkstra traverses.
#[derive(Clone, Debug)]
pub struct WeightedCsr {
    /// `offsets[u]..offsets[u + 1]` delimits the out-edges of `u`; length `node_count + 1`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<Weight>,
}

impl Default for WeightedCsr {
    /// The empty digraph (`offsets` keeps its length-`n + 1` invariant).
    fn default() -> Self {
        WeightedCsr { offsets: vec![0], targets: Vec::new(), weights: Vec::new() }
    }
}

/// The output of a Dijkstra run: distances and a shortest-path tree (predecessors).
#[derive(Clone, Debug)]
pub struct DijkstraResult {
    /// Distance from the source to each node (`INFINITE_WEIGHT` when unreachable).
    pub dist: Vec<Weight>,
    /// Predecessor of each node on a shortest path from the source.
    pub pred: Vec<Option<usize>>,
    /// The source node.
    pub source: usize,
}

impl WeightedDigraph {
    /// Creates a digraph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "node ids are u32");
        WeightedDigraph { nodes: n, edges: Vec::new() }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Appends a new isolated node and returns its index.
    pub fn add_node(&mut self) -> usize {
        assert!(self.nodes < u32::MAX as usize - 1, "node ids are u32");
        self.nodes += 1;
        self.nodes - 1
    }

    /// Adds a directed edge `u -> v` with weight `w`.
    ///
    /// Parallel edges are allowed (Dijkstra simply keeps the better one).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, w: Weight) {
        assert!(u < self.nodes && v < self.nodes, "edge endpoint out of range");
        self.edges.push((u as u32, v as u32, w));
    }

    /// Packs the edge list into the CSR layout Dijkstra traverses.
    ///
    /// The counting sort by source node is stable, so each node's out-edges keep their
    /// insertion order and relaxation order is deterministic.
    pub fn freeze(&self) -> WeightedCsr {
        let n = self.nodes;
        assert!(self.edges.len() <= u32::MAX as usize, "CSR offsets are u32");
        let mut offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; self.edges.len()];
        let mut weights = vec![0 as Weight; self.edges.len()];
        for &(u, v, w) in &self.edges {
            let slot = cursor[u as usize] as usize;
            cursor[u as usize] += 1;
            targets[slot] = v;
            weights[slot] = w;
        }
        WeightedCsr { offsets, targets, weights }
    }

    /// Runs Dijkstra from `source` (freezes into [`WeightedCsr`] and searches that).
    ///
    /// Auxiliary graphs are built once and searched once, so the `O(n + m)` freeze is
    /// amortized into the search; callers that search the same digraph repeatedly should
    /// [`freeze`](Self::freeze) once and call [`WeightedCsr::dijkstra`] themselves.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn dijkstra(&self, source: usize) -> DijkstraResult {
        self.freeze().dijkstra(source)
    }
}

impl WeightedCsr {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `u` with weights, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, Weight)> + '_ {
        let range = self.offsets[u] as usize..self.offsets[u + 1] as usize;
        self.targets[range.clone()].iter().zip(&self.weights[range]).map(|(&v, &w)| (v as usize, w))
    }

    /// Runs Dijkstra from `source` over the CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn dijkstra(&self, source: usize) -> DijkstraResult {
        let n = self.node_count();
        assert!(source < n, "Dijkstra source out of range");
        let mut dist = vec![INFINITE_WEIGHT; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(Weight, usize)>> = BinaryHeap::new();
        dist[source] = 0;
        heap.push(Reverse((0, source)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
            for (&w, &wt) in self.targets[range.clone()].iter().zip(&self.weights[range]) {
                let w = w as usize;
                // Saturated sums equal INFINITE_WEIGHT and can never pass the strict `<`
                // (dist[w] <= INFINITE_WEIGHT always), so the sentinel is never stored as
                // a finite distance: saturation *is* the documented mapping to
                // "unreachable" (`dist == INFINITE_WEIGHT ⇔ no usable path`).
                let nd = d.saturating_add(wt);
                if nd < dist[w] {
                    dist[w] = nd;
                    pred[w] = Some(v);
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        DijkstraResult { dist, pred, source }
    }
}

impl DijkstraResult {
    /// Returns `true` when `v` was reached.
    pub fn is_reachable(&self, v: usize) -> bool {
        self.dist[v] != INFINITE_WEIGHT
    }

    /// Reconstructs the node sequence of a shortest path from the source to `v`.
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.pred[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        if path[0] == self.source {
            Some(path)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_paths_on_a_small_dag() {
        let mut g = WeightedDigraph::new(5);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 4);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 1);
        g.add_edge(1, 3, 10);
        let r = g.dijkstra(0);
        assert_eq!(r.dist, vec![0, 1, 3, 4, INFINITE_WEIGHT]);
        assert_eq!(r.path_to(3), Some(vec![0, 1, 2, 3]));
        assert_eq!(r.path_to(4), None);
        assert!(!r.is_reachable(4));
    }

    #[test]
    fn directionality_is_respected() {
        let mut g = WeightedDigraph::new(2);
        g.add_edge(0, 1, 3);
        let r = g.dijkstra(1);
        assert_eq!(r.dist[0], INFINITE_WEIGHT);
        assert_eq!(r.dist[1], 0);
    }

    #[test]
    fn parallel_edges_keep_the_cheapest() {
        let mut g = WeightedDigraph::new(2);
        g.add_edge(0, 1, 9);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 1, 5);
        let r = g.dijkstra(0);
        assert_eq!(r.dist[1], 2);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let mut g = WeightedDigraph::new(3);
        g.add_edge(0, 1, 0);
        g.add_edge(1, 2, 0);
        let r = g.dijkstra(0);
        assert_eq!(r.dist, vec![0, 0, 0]);
    }

    #[test]
    fn add_node_grows_the_graph() {
        let mut g = WeightedDigraph::new(1);
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!((a, b), (1, 2));
        assert_eq!(g.node_count(), 3);
        g.add_edge(0, b, 7);
        let csr = g.freeze();
        assert_eq!(csr.neighbors(0).collect::<Vec<_>>(), vec![(2, 7)]);
        assert_eq!(csr.neighbors(1).count(), 0);
    }

    #[test]
    fn freeze_preserves_per_node_insertion_order() {
        let mut g = WeightedDigraph::new(3);
        g.add_edge(2, 0, 5);
        g.add_edge(0, 2, 1);
        g.add_edge(2, 1, 3);
        g.add_edge(0, 1, 4);
        let csr = g.freeze();
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.neighbors(0).collect::<Vec<_>>(), vec![(2, 1), (1, 4)]);
        assert_eq!(csr.neighbors(2).collect::<Vec<_>>(), vec![(0, 5), (1, 3)]);
    }

    #[test]
    fn default_csr_is_the_empty_digraph() {
        let csr = WeightedCsr::default();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(WeightedDigraph::default().freeze().node_count(), 0);
    }

    #[test]
    fn frozen_csr_can_be_searched_repeatedly() {
        let mut g = WeightedDigraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(3, 0, 1);
        let csr = g.freeze();
        for s in 0..4 {
            let r = csr.dijkstra(s);
            assert_eq!(r.dist[(s + 3) % 4], 3, "source {s}");
            assert_eq!(r.source, s);
        }
    }

    #[test]
    fn huge_weights_do_not_overflow() {
        let mut g = WeightedDigraph::new(3);
        g.add_edge(0, 1, Weight::MAX - 1);
        g.add_edge(1, 2, Weight::MAX - 1);
        let r = g.dijkstra(0);
        // The pinned saturation contract: a path whose length reaches the sentinel is
        // *unreachable*, not "reachable at distance MAX" — no wrap-around, no predecessor,
        // no path, and the huge-but-finite first hop is still reported exactly.
        assert_eq!(r.dist[1], Weight::MAX - 1);
        assert_eq!(r.dist[2], INFINITE_WEIGHT);
        assert!(!r.is_reachable(2));
        assert_eq!(r.pred[2], None);
        assert_eq!(r.path_to(2), None);
    }

    #[test]
    fn saturating_paths_do_not_mask_finite_alternatives() {
        // 0 -> 1 -> 3 saturates; the longer-hop 0 -> 2 -> 3 route is finite and must win
        // even though the saturating relaxation is attempted first.
        let mut g = WeightedDigraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 3, Weight::MAX - 1);
        g.add_edge(0, 2, 10);
        g.add_edge(2, 3, 10);
        let r = g.dijkstra(0);
        assert_eq!(r.dist[3], 20);
        assert_eq!(r.path_to(3), Some(vec![0, 2, 3]));
    }

    #[test]
    fn matches_bfs_on_unit_weights() {
        // A 4x4 grid digraph with unit weights in both directions behaves like BFS.
        let idx = |r: usize, c: usize| r * 4 + c;
        let mut g = WeightedDigraph::new(16);
        for r in 0..4 {
            for c in 0..4 {
                if c + 1 < 4 {
                    g.add_edge(idx(r, c), idx(r, c + 1), 1);
                    g.add_edge(idx(r, c + 1), idx(r, c), 1);
                }
                if r + 1 < 4 {
                    g.add_edge(idx(r, c), idx(r + 1, c), 1);
                    g.add_edge(idx(r + 1, c), idx(r, c), 1);
                }
            }
        }
        let r = g.dijkstra(0);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(r.dist[idx(row, col)], (row + col) as Weight);
            }
        }
    }
}
