//! Dijkstra's algorithm on directed weighted graphs.
//!
//! The MSRP algorithm never runs Dijkstra on the input graph (it is unweighted), but Sections
//! 7.1, 8.1, 8.2 and 8.3 of the paper all build *auxiliary* weighted digraphs whose shortest
//! paths encode replacement distances; this module provides the digraph container and the
//! search those sections run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Weight/distance type for auxiliary graphs.
pub type Weight = u64;

/// Distance reported for unreachable auxiliary nodes.
pub const INFINITE_WEIGHT: Weight = Weight::MAX;

/// A directed graph with non-negative integer edge weights.
///
/// ```
/// use msrp_graph::WeightedDigraph;
///
/// let mut g = WeightedDigraph::new(4);
/// g.add_edge(0, 1, 2);
/// g.add_edge(1, 2, 2);
/// g.add_edge(0, 2, 10);
/// g.add_edge(2, 3, 1);
/// let d = g.dijkstra(0);
/// assert_eq!(d.dist[2], 4);
/// assert_eq!(d.dist[3], 5);
/// assert_eq!(d.path_to(3), Some(vec![0, 1, 2, 3]));
/// ```
#[derive(Clone, Debug, Default)]
pub struct WeightedDigraph {
    adj: Vec<Vec<(usize, Weight)>>,
    edge_count: usize,
}

/// The output of a Dijkstra run: distances and a shortest-path tree (predecessors).
#[derive(Clone, Debug)]
pub struct DijkstraResult {
    /// Distance from the source to each node (`INFINITE_WEIGHT` when unreachable).
    pub dist: Vec<Weight>,
    /// Predecessor of each node on a shortest path from the source.
    pub pred: Vec<Option<usize>>,
    /// The source node.
    pub source: usize,
}

impl WeightedDigraph {
    /// Creates a digraph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        WeightedDigraph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new isolated node and returns its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `u -> v` with weight `w`.
    ///
    /// Parallel edges are allowed (Dijkstra simply keeps the better one).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, w: Weight) {
        assert!(u < self.adj.len() && v < self.adj.len(), "edge endpoint out of range");
        self.adj[u].push((v, w));
        self.edge_count += 1;
    }

    /// Out-neighbours of `u` with weights.
    pub fn neighbors(&self, u: usize) -> &[(usize, Weight)] {
        &self.adj[u]
    }

    /// Runs Dijkstra from `source` over the whole digraph.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn dijkstra(&self, source: usize) -> DijkstraResult {
        let n = self.adj.len();
        assert!(source < n, "Dijkstra source out of range");
        let mut dist = vec![INFINITE_WEIGHT; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(Weight, usize)>> = BinaryHeap::new();
        dist[source] = 0;
        heap.push(Reverse((0, source)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            for &(w, wt) in &self.adj[v] {
                let nd = d.saturating_add(wt);
                if nd < dist[w] {
                    dist[w] = nd;
                    pred[w] = Some(v);
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        DijkstraResult { dist, pred, source }
    }
}

impl DijkstraResult {
    /// Returns `true` when `v` was reached.
    pub fn is_reachable(&self, v: usize) -> bool {
        self.dist[v] != INFINITE_WEIGHT
    }

    /// Reconstructs the node sequence of a shortest path from the source to `v`.
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.pred[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        if path[0] == self.source {
            Some(path)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_paths_on_a_small_dag() {
        let mut g = WeightedDigraph::new(5);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 4);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 1);
        g.add_edge(1, 3, 10);
        let r = g.dijkstra(0);
        assert_eq!(r.dist, vec![0, 1, 3, 4, INFINITE_WEIGHT]);
        assert_eq!(r.path_to(3), Some(vec![0, 1, 2, 3]));
        assert_eq!(r.path_to(4), None);
        assert!(!r.is_reachable(4));
    }

    #[test]
    fn directionality_is_respected() {
        let mut g = WeightedDigraph::new(2);
        g.add_edge(0, 1, 3);
        let r = g.dijkstra(1);
        assert_eq!(r.dist[0], INFINITE_WEIGHT);
        assert_eq!(r.dist[1], 0);
    }

    #[test]
    fn parallel_edges_keep_the_cheapest() {
        let mut g = WeightedDigraph::new(2);
        g.add_edge(0, 1, 9);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 1, 5);
        let r = g.dijkstra(0);
        assert_eq!(r.dist[1], 2);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let mut g = WeightedDigraph::new(3);
        g.add_edge(0, 1, 0);
        g.add_edge(1, 2, 0);
        let r = g.dijkstra(0);
        assert_eq!(r.dist, vec![0, 0, 0]);
    }

    #[test]
    fn add_node_grows_the_graph() {
        let mut g = WeightedDigraph::new(1);
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!((a, b), (1, 2));
        assert_eq!(g.node_count(), 3);
        g.add_edge(0, b, 7);
        assert_eq!(g.neighbors(0), &[(2, 7)]);
    }

    #[test]
    fn huge_weights_do_not_overflow() {
        let mut g = WeightedDigraph::new(3);
        g.add_edge(0, 1, Weight::MAX - 1);
        g.add_edge(1, 2, Weight::MAX - 1);
        let r = g.dijkstra(0);
        // Saturating addition keeps the value at the sentinel rather than wrapping.
        assert_eq!(r.dist[2], INFINITE_WEIGHT);
    }

    #[test]
    fn matches_bfs_on_unit_weights() {
        // A 4x4 grid digraph with unit weights in both directions behaves like BFS.
        let idx = |r: usize, c: usize| r * 4 + c;
        let mut g = WeightedDigraph::new(16);
        for r in 0..4 {
            for c in 0..4 {
                if c + 1 < 4 {
                    g.add_edge(idx(r, c), idx(r, c + 1), 1);
                    g.add_edge(idx(r, c + 1), idx(r, c), 1);
                }
                if r + 1 < 4 {
                    g.add_edge(idx(r, c), idx(r + 1, c), 1);
                    g.add_edge(idx(r + 1, c), idx(r, c), 1);
                }
            }
        }
        let r = g.dijkstra(0);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(r.dist[idx(row, col)], (row + col) as Weight);
            }
        }
    }
}
