//! The frozen compressed-sparse-row (CSR) traversal core.
//!
//! Every algorithm in this reproduction is BFS-dominated: shortest-path trees are BFS trees,
//! the solver's preprocessing runs one BFS per landmark and per center, and the brute-force
//! comparator runs one BFS per tree edge per source. [`Graph`] stores one heap-allocated
//! `Vec` per vertex, which is convenient for the mutating generators but pointer-chasing for
//! traversal. [`CsrGraph`] is the same graph *frozen* into two flat arrays:
//!
//! * `offsets[v]..offsets[v + 1]` delimits the neighbour row of `v` inside `targets`;
//! * `targets` concatenates all adjacency rows, each row in ascending vertex order.
//!
//! Freezing preserves the sorted-neighbour order of [`Graph`], so every BFS tree, every
//! canonical path, and every seeded experiment computed over the CSR view is bit-for-bit
//! identical to the seed representation — only the memory layout (and therefore the cache
//! behaviour) changes. [`CsrGraph::thaw`] converts back for the mutating generators.

use crate::distance::INFINITE_DISTANCE;
use crate::edge::Edge;
use crate::error::GraphError;
use crate::graph::{Graph, Vertex};

/// Sentinel entry of the flat parent arrays ([`BfsScratch::parent_raw`] and the sibling
/// kernels): the vertex has no BFS-tree parent, either because it is the source or because
/// it is unreachable. Chosen as `u32::MAX` so it can never collide with a vertex id (the
/// CSR substrate caps ids strictly below `u32::MAX`).
pub const NO_PARENT: u32 = u32::MAX;

/// Widens a flat sentinel-encoded parent array into the `Option<Vertex>` form the owned
/// [`BfsResult`](crate::BfsResult) and [`ShortestPathTree`](crate::ShortestPathTree) store.
pub(crate) fn decode_parents(raw: &[u32]) -> Vec<Option<Vertex>> {
    raw.iter().map(|&p| if p == NO_PARENT { None } else { Some(p as Vertex) }).collect()
}

/// An immutable, cache-friendly CSR snapshot of a [`Graph`].
///
/// ```
/// use msrp_graph::{bfs, bfs_csr, Graph};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// let csr = g.freeze();
/// assert_eq!(csr.vertex_count(), 4);
/// assert_eq!(csr.degree(1), 2);
/// assert!(csr.has_edge(3, 0));
/// // Traversals agree bit-for-bit with the adjacency-list representation.
/// assert_eq!(bfs_csr(&csr, 0), bfs(&g, 0));
/// // And thawing round-trips exactly.
/// assert_eq!(csr.thaw(), g);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` is the row of `v` in `targets`; length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated neighbour rows (length `2m`), each row sorted ascending.
    targets: Vec<u32>,
    /// Number of undirected edges (`targets.len() / 2`, cached).
    edge_count: usize,
    /// Largest row length, cached at freeze time (the direction-optimizing kernel's flip
    /// pre-filter bounds a frontier's total degree by `|frontier| · max_degree`).
    max_degree: u32,
}

impl Default for CsrGraph {
    fn default() -> Self {
        CsrGraph { offsets: vec![0], targets: Vec::new(), edge_count: 0, max_degree: 0 }
    }
}

impl CsrGraph {
    /// Builds the CSR arrays from sorted adjacency rows (the freeze half of the round trip).
    pub(crate) fn from_sorted_adj(adj: &[Vec<Vertex>], edge_count: usize) -> Self {
        let n = adj.len();
        assert!(n < u32::MAX as usize, "CSR vertex ids are u32");
        let total: usize = adj.iter().map(Vec::len).sum();
        assert!(total <= u32::MAX as usize, "CSR offsets are u32");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(total);
        offsets.push(0u32);
        for row in adj {
            targets.extend(row.iter().map(|&w| w as u32));
            offsets.push(targets.len() as u32);
        }
        let max_degree = adj.iter().map(Vec::len).max().unwrap_or(0) as u32;
        CsrGraph { offsets, targets, edge_count, max_degree }
    }

    /// Rebuilds a frozen graph from raw CSR arrays, validating every structural invariant
    /// the freeze path guarantees: `offsets` starts at 0, is monotone, and ends at
    /// `targets.len()`; every target id is in range; each neighbour row is strictly
    /// ascending (sorted, no duplicates, no self-loops); and each undirected edge appears
    /// as exactly two arcs. `edge_count` and `max_degree` are recomputed, so a graph built
    /// here is indistinguishable from one built by [`Graph::freeze`] — this is the
    /// trust boundary the snapshot loader (`msrp-snap`) adopts decoded buffers through.
    pub fn from_raw_parts(offsets: Vec<u32>, targets: Vec<u32>) -> Result<Self, GraphError> {
        let malformed = |reason: String| GraphError::MalformedCsr { reason };
        if offsets.is_empty() {
            return Err(malformed("offsets array is empty (need at least [0])".into()));
        }
        let n = offsets.len() - 1;
        if n >= u32::MAX as usize {
            return Err(malformed(format!("{n} vertices overflow u32 vertex ids")));
        }
        if offsets[0] != 0 {
            return Err(malformed(format!("offsets[0] is {}, not 0", offsets[0])));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(malformed("offsets are not monotone non-decreasing".into()));
        }
        if offsets[n] as usize != targets.len() {
            return Err(malformed(format!(
                "offsets end at {} but there are {} arcs",
                offsets[n],
                targets.len()
            )));
        }
        if !targets.len().is_multiple_of(2) {
            return Err(malformed(format!(
                "odd arc count {} cannot pair into undirected edges",
                targets.len()
            )));
        }
        let mut max_degree = 0u32;
        for v in 0..n {
            let row = &targets[offsets[v] as usize..offsets[v + 1] as usize];
            max_degree = max_degree.max(row.len() as u32);
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(malformed(format!("row of vertex {v} is not strictly ascending")));
            }
            if row.iter().any(|&t| t as usize >= n || t as usize == v) {
                return Err(malformed(format!("row of vertex {v} has an invalid target id")));
            }
        }
        let edge_count = targets.len() / 2;
        let graph = CsrGraph { offsets, targets, edge_count, max_degree };
        // Arc symmetry: every arc u→v must have its reverse v→u. Rows are sorted, so each
        // check is one binary search; O(m log d) total, paid once at adoption time.
        for u in 0..n {
            for &v in &graph.targets[graph.offsets[u] as usize..graph.offsets[u + 1] as usize] {
                let vr = graph.neighbor_row(v as usize);
                if vr.binary_search(&(u as u32)).is_err() {
                    return Err(malformed(format!("arc {u}->{v} has no reverse arc")));
                }
            }
        }
        Ok(graph)
    }

    /// Decomposes into the raw `(offsets, targets)` arrays (crate-internal: the weighted
    /// validator reuses the unweighted one without copying the arrays back out).
    pub(crate) fn into_raw_parts(self) -> (Vec<u32>, Vec<u32>) {
        (self.offsets, self.targets)
    }

    /// The raw offsets array (`n + 1` words; row `v` is `offsets[v]..offsets[v + 1]`).
    ///
    /// Exposed (read-only) so serializers can persist the frozen layout verbatim; the
    /// inverse is [`from_raw_parts`](Self::from_raw_parts).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw concatenated neighbour rows (length `2m`, each row sorted ascending).
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The largest degree of any vertex (0 for an empty graph), cached at freeze time.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Returns an iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.vertex_count()
    }

    /// The raw CSR row of `v`: its neighbours as `u32`, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_row(&self, v: Vertex) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The neighbours of `v` in ascending order (same order as [`Graph::neighbors`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.neighbor_row(v).iter().map(|&w| w as Vertex)
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Returns `true` when the edge `{u, v}` is present (binary search of the smaller row).
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let n = self.vertex_count();
        if u >= n || v >= n {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbor_row(a).binary_search(&(b as u32)).is_ok()
    }

    /// Iterates over all edges, each reported once in normalized order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbor_row(u)
                .iter()
                .filter(move |&&v| u < v as usize)
                .map(move |&v| Edge::new(u, v as usize))
        })
    }

    /// Collects all edges into a vector (normalized, sorted order).
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Returns `true` when every vertex is reachable from vertex 0 (vacuously true when empty).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for w in self.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Average degree `2m / n` (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.vertex_count() as f64
        }
    }

    /// Converts back to the mutable adjacency-list representation (the thaw half of the
    /// round trip). `g.freeze().thaw() == g` exactly, because both representations keep
    /// neighbour rows sorted.
    pub fn thaw(&self) -> Graph {
        let adj: Vec<Vec<Vertex>> = self.vertices().map(|v| self.neighbors(v).collect()).collect();
        Graph::from_sorted_adj_parts(adj, self.edge_count)
    }
}

/// Reusable BFS buffers: distances, parents and the queue/visit order, reset in `O(visited)`
/// between runs instead of reallocated.
///
/// The `build_exact` edge-removal loop and the `msrp-rpath` brute force run one BFS per tree
/// edge; with a scratch they stop paying three `Vec` allocations (and an `O(n)` fill) per BFS.
/// The queue itself doubles as the visit order, so resetting only touches the entries the
/// previous run actually wrote.
///
/// ```
/// use msrp_graph::{bfs, BfsScratch, Graph};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
/// let csr = g.freeze();
/// let mut scratch = BfsScratch::new();
/// for s in 0..5 {
///     scratch.run(&csr, s);
///     assert_eq!(scratch.to_result(), bfs(&g, s));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    dist: Vec<crate::distance::Distance>,
    /// Flat sentinel-encoded parents (`NO_PARENT` = none): 4 bytes per entry instead of the
    /// 16 bytes of `Option<Vertex>`, and the hot loop writes a plain `u32` store.
    parent: Vec<u32>,
    /// The BFS queue; after a run it holds the reachable vertices in dequeue order.
    order: Vec<Vertex>,
    source: Vertex,
}

impl BfsScratch {
    /// Creates an empty scratch; buffers are sized lazily on the first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the buffers for a graph with `n` vertices in `O(visited)` (full `O(n)` init only
    /// when the vertex count changes).
    fn reset(&mut self, n: usize) {
        if self.dist.len() != n {
            self.dist.clear();
            self.dist.resize(n, INFINITE_DISTANCE);
            self.parent.clear();
            self.parent.resize(n, NO_PARENT);
            self.order.clear();
            self.order.reserve(n);
        } else {
            for &v in &self.order {
                self.dist[v] = INFINITE_DISTANCE;
                self.parent[v] = NO_PARENT;
            }
            self.order.clear();
        }
    }

    /// Runs BFS from `source` over the CSR graph, visiting neighbours in ascending order
    /// (bit-for-bit the same trees as [`bfs`](crate::bfs())).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn run(&mut self, g: &CsrGraph, source: Vertex) {
        self.run_impl(g, source, None);
    }

    /// Runs BFS from `source` in `G \ {avoid}` without materializing the modified graph.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn run_avoiding(&mut self, g: &CsrGraph, source: Vertex, avoid: Edge) {
        self.run_impl(g, source, Some(avoid));
    }

    fn run_impl(&mut self, g: &CsrGraph, source: Vertex, avoid: Option<Edge>) {
        let n = g.vertex_count();
        assert!(source < n, "BFS source {source} out of range (n = {n})");
        self.reset(n);
        self.source = source;
        // Disjoint borrows of the three buffers, so the hot loop's loads and stores carry
        // noalias information (matching what the local-variable seed kernel gets for free).
        let dist = &mut self.dist[..];
        let parent = &mut self.parent[..];
        let order = &mut self.order;
        dist[source] = 0;
        order.push(source);
        let mut head = 0;
        // The avoided-edge test is hoisted out of the hot loop: the plain kernel pays no
        // per-neighbour branch, and the avoiding kernel tests the single forbidden pair.
        match avoid {
            None => {
                while head < order.len() {
                    let v = order[head];
                    head += 1;
                    let dv = dist[v];
                    for &w in g.neighbor_row(v) {
                        let w = w as usize;
                        if dist[w] == INFINITE_DISTANCE {
                            dist[w] = dv + 1;
                            parent[w] = v as u32;
                            order.push(w);
                        }
                    }
                }
            }
            Some(e) => {
                let (lo, hi) = e.endpoints();
                while head < order.len() {
                    let v = order[head];
                    head += 1;
                    let dv = dist[v];
                    for &w in g.neighbor_row(v) {
                        let w = w as usize;
                        if (v == lo && w == hi) || (v == hi && w == lo) {
                            continue;
                        }
                        if dist[w] == INFINITE_DISTANCE {
                            dist[w] = dv + 1;
                            parent[w] = v as u32;
                            order.push(w);
                        }
                    }
                }
            }
        }
    }

    /// The source of the last run.
    #[inline]
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Distances of the last run (`INFINITE_DISTANCE` for unreachable vertices).
    #[inline]
    pub fn dist(&self) -> &[crate::distance::Distance] {
        &self.dist
    }

    /// The flat sentinel-encoded parent array of the last run: `parent_raw()[v]` is the
    /// BFS-tree parent of `v` as a `u32`, or [`NO_PARENT`] for the source and unreachable
    /// vertices. This is the kernel's native representation; consumers that loop over many
    /// entries (oracle row construction) avoid the `Option` branch per read.
    #[inline]
    pub fn parent_raw(&self) -> &[u32] {
        &self.parent
    }

    /// BFS-tree parent of `v` (`None` for the source and unreachable vertices) — the
    /// `Option` view of one [`parent_raw`](Self::parent_raw) entry.
    #[inline]
    pub fn parent_of(&self, v: Vertex) -> Option<Vertex> {
        let p = self.parent[v];
        if p == NO_PARENT {
            None
        } else {
            Some(p as Vertex)
        }
    }

    /// Reachable vertices of the last run in dequeue order (source first).
    #[inline]
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }

    /// Clones the buffers of the last run into an owned [`BfsResult`](crate::BfsResult)
    /// (widening the sentinel-encoded parents back to `Option<Vertex>`).
    pub fn to_result(&self) -> crate::BfsResult {
        crate::BfsResult {
            source: self.source,
            dist: self.dist.clone(),
            parent: decode_parents(&self.parent),
            order: self.order.clone(),
        }
    }

    /// Moves the buffers of the last run into an owned [`BfsResult`](crate::BfsResult)
    /// (for one-shot searches that do not reuse the scratch; the parent array is widened,
    /// the other buffers move without copying).
    pub fn into_result(self) -> crate::BfsResult {
        crate::BfsResult {
            source: self.source,
            parent: decode_parents(&self.parent),
            dist: self.dist,
            order: self.order,
        }
    }
}

/// Runs BFS from `source` over the CSR graph (one-shot; allocates fresh buffers).
///
/// For repeated searches prefer a shared [`BfsScratch`].
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_csr(g: &CsrGraph, source: Vertex) -> crate::BfsResult {
    let mut scratch = BfsScratch::new();
    scratch.run(g, source);
    scratch.into_result()
}

/// Runs BFS from `source` in `G \ {avoid}` over the CSR graph (one-shot).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_csr_avoiding_edge(g: &CsrGraph, source: Vertex, avoid: Edge) -> crate::BfsResult {
    let mut scratch = BfsScratch::new();
    scratch.run_avoiding(g, source, avoid);
    scratch.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{bfs, bfs_avoiding_edge};

    fn sample() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (2, 5)]).unwrap()
    }

    #[test]
    fn freeze_preserves_counts_rows_and_queries() {
        let g = sample();
        let csr = g.freeze();
        assert_eq!(csr.vertex_count(), g.vertex_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.average_degree(), g.average_degree());
        assert_eq!(csr.is_connected(), g.is_connected());
        assert_eq!(csr.edge_vec(), g.edge_vec());
        for v in g.vertices() {
            assert_eq!(csr.degree(v), g.degree(v));
            assert_eq!(csr.neighbors(v).collect::<Vec<_>>(), g.neighbors(v));
        }
        for u in 0..7 {
            for v in 0..7 {
                if u != v {
                    assert_eq!(csr.has_edge(u, v), g.has_edge(u, v), "({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn thaw_round_trips_exactly() {
        let g = sample();
        assert_eq!(g.freeze().thaw(), g);
        let empty = Graph::new(0);
        assert_eq!(empty.freeze().thaw(), empty);
        let isolated = Graph::new(3);
        assert_eq!(isolated.freeze().thaw(), isolated);
    }

    #[test]
    fn default_is_the_empty_graph() {
        let csr = CsrGraph::default();
        assert_eq!(csr.vertex_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert!(csr.is_connected());
        assert_eq!(csr.average_degree(), 0.0);
        assert_eq!(csr, Graph::new(0).freeze());
    }

    #[test]
    fn csr_bfs_matches_seed_bfs_bit_for_bit() {
        let g = sample();
        let csr = g.freeze();
        for s in g.vertices() {
            assert_eq!(bfs_csr(&csr, s), bfs(&g, s), "source {s}");
        }
        for e in g.edges() {
            assert_eq!(bfs_csr_avoiding_edge(&csr, 0, e), bfs_avoiding_edge(&g, 0, e), "{e}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let g = sample();
        let csr = g.freeze();
        let mut scratch = BfsScratch::new();
        for s in g.vertices() {
            scratch.run(&csr, s);
            let fresh = bfs(&g, s);
            assert_eq!(scratch.source(), s);
            assert_eq!(scratch.dist(), &fresh.dist[..]);
            assert_eq!(decode_parents(scratch.parent_raw()), fresh.parent);
            assert_eq!(scratch.order(), &fresh.order[..]);
            assert_eq!(scratch.to_result(), fresh);
        }
        // Reuse across graphs of different sizes forces a full re-init.
        let small = Graph::from_edges(2, &[(0, 1)]).unwrap().freeze();
        scratch.run(&small, 1);
        assert_eq!(scratch.dist(), &[1, 0]);
        scratch.run(&csr, 0);
        assert_eq!(scratch.to_result(), bfs(&g, 0));
    }

    #[test]
    fn scratch_resets_stale_entries_after_avoiding_runs() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let csr = g.freeze();
        let mut scratch = BfsScratch::new();
        scratch.run_avoiding(&csr, 0, Edge::new(1, 2));
        assert_eq!(scratch.dist()[3], INFINITE_DISTANCE);
        scratch.run(&csr, 0);
        assert_eq!(scratch.dist(), &[0, 1, 2, 3]);
        assert_eq!(scratch.parent_of(3), Some(2));
        assert_eq!(scratch.parent_raw()[3], 2);
    }

    #[test]
    fn raw_parents_convert_exactly_to_the_option_view() {
        // The sentinel-encoded flat array, the per-vertex Option view and the owned
        // BfsResult parents are three encodings of the same function.
        let g = sample();
        let csr = g.freeze();
        let mut scratch = BfsScratch::new();
        for s in g.vertices() {
            scratch.run(&csr, s);
            let result = scratch.to_result();
            assert_eq!(scratch.parent_raw().len(), g.vertex_count());
            for v in g.vertices() {
                assert_eq!(scratch.parent_of(v), result.parent[v], "s={s} v={v}");
                match result.parent[v] {
                    None => assert_eq!(scratch.parent_raw()[v], NO_PARENT),
                    Some(p) => assert_eq!(scratch.parent_raw()[v] as usize, p),
                }
            }
            assert_eq!(scratch.parent_of(s), None, "the source has no parent");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let csr = Graph::new(2).freeze();
        let mut scratch = BfsScratch::new();
        scratch.run(&csr, 5);
    }
}
