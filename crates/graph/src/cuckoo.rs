//! Cuckoo hashing (Lemma 5 of the paper; Pagh and Rodler, J. Algorithms 2004).
//!
//! The paper stores replacement distances `d(s, r, e)` in "a randomized hash-table with constant
//! look-up time in the worst case and constant insertion time in expectation", i.e. a cuckoo
//! hash table. This module implements a straightforward two-table cuckoo map: every key lives
//! in one of two candidate buckets, lookups probe at most two locations, and insertions evict
//! along a bounded path, rehashing (with fresh hash functions and/or more capacity) when a cycle
//! is detected.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

const MAX_EVICTIONS: usize = 64;
const INITIAL_CAPACITY: usize = 8;

/// A cuckoo hash map with worst-case constant-time lookups.
///
/// ```
/// use msrp_graph::CuckooHashMap;
///
/// let mut m = CuckooHashMap::new();
/// m.insert((1u32, 2u32), 7u64);
/// m.insert((3, 4), 9);
/// assert_eq!(m.get(&(1, 2)), Some(&7));
/// assert_eq!(m.get(&(9, 9)), None);
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct CuckooHashMap<K, V> {
    /// Two tables of buckets. `None` marks an empty slot.
    tables: [Vec<Option<(K, V)>>; 2],
    seeds: [u64; 2],
    len: usize,
    /// Counts how many full rehashes happened (exposed for the test-suite / experiments).
    rehash_count: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Default for CuckooHashMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> CuckooHashMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty map with room for roughly `capacity` entries before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let per_table = (capacity.max(INITIAL_CAPACITY)).next_power_of_two();
        CuckooHashMap {
            tables: [vec![None; per_table], vec![None; per_table]],
            seeds: [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F],
            len: 0,
            rehash_count: 0,
        }
    }

    /// Number of stored key/value pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rehash cycles performed so far.
    pub fn rehash_count(&self) -> usize {
        self.rehash_count
    }

    /// Current total number of slots (both tables).
    pub fn capacity(&self) -> usize {
        self.tables[0].len() + self.tables[1].len()
    }

    /// Looks up `key`, probing at most two buckets.
    pub fn get(&self, key: &K) -> Option<&V> {
        for side in 0..2 {
            let idx = self.bucket(side, key);
            if let Some((k, v)) = &self.tables[side][idx] {
                if k == key {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Returns `true` when the map contains `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key -> value`, returning the previous value if the key was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        // Update in place if present.
        for side in 0..2 {
            let idx = self.bucket(side, &key);
            if let Some((k, v)) = &mut self.tables[side][idx] {
                if *k == key {
                    return Some(std::mem::replace(v, value));
                }
            }
        }
        if self.len + 1 > self.capacity() / 2 {
            self.rebuild(self.tables[0].len() * 2, Vec::new());
        }
        match self.place((key, value)) {
            Ok(()) => {}
            Err(bounced) => {
                // A cycle was detected: rebuild with fresh hash functions (same size first;
                // `rebuild` escalates the size automatically if placement keeps failing).
                self.rebuild(self.tables[0].len(), vec![bounced]);
            }
        }
        self.len += 1;
        None
    }

    /// Inserts only if the key is absent or the new value is smaller; used for the
    /// "relax a candidate replacement distance" pattern in the oracle crate.
    pub fn insert_min(&mut self, key: K, value: V) -> bool
    where
        V: PartialOrd,
    {
        match self.get(&key) {
            Some(existing) if *existing <= value => false,
            _ => {
                self.insert(key, value);
                true
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        for side in 0..2 {
            let idx = self.bucket(side, key);
            if let Some((k, _)) = &self.tables[side][idx] {
                if k == key {
                    let (_, v) = self.tables[side][idx].take().expect("checked above");
                    self.len -= 1;
                    return Some(v);
                }
            }
        }
        None
    }

    /// Iterates over all key/value pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.tables
            .iter()
            .flat_map(|t| t.iter())
            .filter_map(|slot| slot.as_ref().map(|(k, v)| (k, v)))
    }

    fn bucket(&self, side: usize, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        self.seeds[side].hash(&mut hasher);
        key.hash(&mut hasher);
        (hasher.finish() as usize) & (self.tables[side].len() - 1)
    }

    /// Attempts to place an entry using cuckoo evictions; on failure returns the entry that
    /// could not be placed so the caller can rehash and retry.
    fn place(&mut self, mut entry: (K, V)) -> Result<(), (K, V)> {
        let mut side = 0;
        for _ in 0..MAX_EVICTIONS {
            let idx = self.bucket(side, &entry.0);
            match self.tables[side][idx].take() {
                None => {
                    self.tables[side][idx] = Some(entry);
                    return Ok(());
                }
                Some(evicted) => {
                    self.tables[side][idx] = Some(entry);
                    entry = evicted;
                    side = 1 - side;
                }
            }
        }
        Err(entry)
    }

    /// Rebuilds the tables with fresh hash functions, inserting all existing entries plus
    /// `extra`. If any placement still fails (unlucky hash functions or not enough room), the
    /// capacity is doubled and the rebuild restarts; termination is guaranteed because the load
    /// factor eventually drops below any constant.
    fn rebuild(&mut self, per_table: usize, extra: Vec<(K, V)>) {
        let mut entries: Vec<(K, V)> = self
            .tables
            .iter_mut()
            .flat_map(|t| t.iter_mut().filter_map(|slot| slot.take()))
            .collect();
        entries.extend(extra);
        let mut size = per_table.max(INITIAL_CAPACITY).next_power_of_two();
        'attempt: loop {
            self.rehash_count += 1;
            let bump = self.rehash_count as u64;
            self.seeds = [
                self.seeds[0].wrapping_mul(0x0100_0000_01B3).wrapping_add(bump),
                self.seeds[1].rotate_left(17).wrapping_add(0x9E37_79B9 ^ bump),
            ];
            self.tables = [vec![None; size], vec![None; size]];
            for entry in entries.iter().cloned() {
                if self.place(entry).is_err() {
                    size *= 2;
                    continue 'attempt;
                }
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = CuckooHashMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("b", 2), None);
        assert_eq!(m.insert("a", 3), Some(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&"a"), Some(&3));
        assert_eq!(m.remove(&"a"), Some(3));
        assert_eq!(m.remove(&"a"), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&"b"));
        assert!(!m.contains_key(&"a"));
    }

    #[test]
    fn many_insertions_match_std_hashmap() {
        let mut cuckoo = CuckooHashMap::new();
        let mut reference = HashMap::new();
        // A deterministic pseudo-random workload with duplicate keys and overwrites.
        let mut x: u64 = 12345;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = x % 4096;
            cuckoo.insert(key, i);
            reference.insert(key, i);
        }
        assert_eq!(cuckoo.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(cuckoo.get(k), Some(v));
        }
        for k in 4096..4200u64 {
            assert_eq!(cuckoo.get(&k), None);
        }
    }

    #[test]
    fn iteration_visits_every_entry_once() {
        let mut m = CuckooHashMap::new();
        for i in 0..500u32 {
            m.insert(i, i * 2);
        }
        let mut seen: Vec<u32> = m.iter().map(|(k, _)| *k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
        for (k, v) in m.iter() {
            assert_eq!(*v, *k * 2);
        }
    }

    #[test]
    fn insert_min_keeps_smallest() {
        let mut m: CuckooHashMap<u32, u32> = CuckooHashMap::new();
        assert!(m.insert_min(7, 10));
        assert!(!m.insert_min(7, 12));
        assert!(m.insert_min(7, 3));
        assert_eq!(m.get(&7), Some(&3));
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut m = CuckooHashMap::with_capacity(4);
        for i in 0..10_000u32 {
            m.insert(i, i);
        }
        assert_eq!(m.len(), 10_000);
        assert!(m.capacity() >= 10_000);
        for i in (0..10_000u32).step_by(97) {
            assert_eq!(m.get(&i), Some(&i));
        }
    }

    #[test]
    fn tuple_keys_like_the_oracle_uses() {
        let mut m: CuckooHashMap<(u32, u32, u64), u32> = CuckooHashMap::new();
        for s in 0..10u32 {
            for t in 0..10u32 {
                m.insert((s, t, (s * t) as u64), s + t);
            }
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(3, 4, 12)), Some(&7));
        assert_eq!(m.get(&(3, 4, 11)), None);
    }

    #[test]
    fn default_constructs_empty() {
        let m: CuckooHashMap<u8, u8> = CuckooHashMap::default();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), 2 * INITIAL_CAPACITY);
    }
}
