//! Graph substrate for the Multiple Source Replacement Path (MSRP) reproduction.
//!
//! The paper (Gupta, Jain, Modi, *Multiple Source Replacement Path Problem*, 2020) works with
//! undirected, unweighted graphs and relies on a small number of classical building blocks:
//!
//! * breadth-first search and shortest-path trees (Section 5),
//! * least-common-ancestor queries on those trees (Lemma 6, Bender–Farach-Colton),
//! * a hash table with worst-case constant lookups (Lemma 5, Pagh–Rodler cuckoo hashing),
//! * Dijkstra's algorithm on the weighted *auxiliary* graphs built in Sections 7 and 8.
//!
//! This crate provides all of those substrates plus deterministic, seedable graph generators
//! used by the test-suite and the benchmark harness.
//!
//! # Quick example
//!
//! ```
//! use msrp_graph::{Graph, ShortestPathTree};
//!
//! # fn main() -> Result<(), msrp_graph::GraphError> {
//! // A 5-cycle: 0-1-2-3-4-0.
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
//! let tree = ShortestPathTree::build(&g, 0);
//! assert_eq!(tree.distance(2), Some(2));
//! assert_eq!(tree.path_from_source(3), Some(vec![0, 4, 3]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs;
mod connectivity;
mod csr;
mod cuckoo;
mod dijkstra;
mod dir_opt;
mod distance;
mod edge;
mod error;
mod graph;
mod lca;
mod metrics;
mod multi_bfs;
mod path_cover;
mod tree;
mod weighted;

pub mod generators;

pub use bfs::{bfs, bfs_avoiding_edge, bfs_distances, BfsResult};
pub use connectivity::{analyze_connectivity, analyze_connectivity_csr, ConnectivityReport};
pub use csr::{bfs_csr, bfs_csr_avoiding_edge, BfsScratch, CsrGraph, NO_PARENT};
pub use cuckoo::CuckooHashMap;
pub use dijkstra::{DijkstraResult, Weight, WeightedCsr, WeightedDigraph, INFINITE_WEIGHT};
pub use dir_opt::{DirOptScratch, DIR_OPT_ALPHA, DIR_OPT_BETA};
pub use distance::{dist_add, dist_add3, dist_min, is_finite, Distance, INFINITE_DISTANCE};
pub use edge::Edge;
pub use error::GraphError;
pub use graph::{Graph, Vertex};
pub use lca::LcaIndex;
pub use metrics::{diameter_lower_bound, graph_metrics, GraphMetrics};
pub use multi_bfs::{bfs_trees_wave, MultiBfsScratch, WAVE_LANES};
pub use path_cover::TreePathCover;
pub use tree::ShortestPathTree;
pub use weighted::{DijkstraScratch, WeightedCsrGraph, WeightedGraph, WeightedTree};
