//! The undirected, unweighted, simple graph used by every algorithm in the workspace.

use crate::csr::CsrGraph;
use crate::edge::Edge;
use crate::error::GraphError;

/// Vertices are dense indices in `0..n`.
pub type Vertex = usize;

/// An undirected, unweighted, simple graph with adjacency lists kept in sorted order.
///
/// Sorted adjacency lists make every traversal (and therefore every BFS tree, every canonical
/// shortest path, and every experiment) deterministic for a given input, which the paper's
/// per-edge bookkeeping relies on and which keeps the test-suite reproducible.
///
/// ```
/// use msrp_graph::Graph;
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1)?;
/// g.add_edge(1, 2)?;
/// g.add_edge(2, 3)?;
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.has_edge(2, 1));
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<Vertex>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Creates a graph with `n` vertices and the given edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range, any edge is a self loop, or the edge
    /// list contains duplicates.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns an iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.vertex_count()
    }

    /// Adds an undirected edge between `u` and `v`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range, if `u == v`, or if the edge already
    /// exists.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let pos_u = self.adj[u].binary_search(&v).unwrap_err();
        self.adj[u].insert(pos_u, v);
        let pos_v = self.adj[v].binary_search(&u).unwrap_err();
        self.adj[v].insert(pos_v, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Adds the edge if it is not already present; returns whether a new edge was inserted.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range endpoints or self loops.
    pub fn add_edge_if_absent(&mut self, u: Vertex, v: Vertex) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Removes the edge between `u` and `v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingEdge`] if the edge is not present.
    pub fn remove_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos_u = self.adj[u].binary_search(&v).map_err(|_| GraphError::MissingEdge { u, v })?;
        let pos_v = self.adj[v].binary_search(&u).map_err(|_| GraphError::MissingEdge { u, v })?;
        self.adj[u].remove(pos_u);
        self.adj[v].remove(pos_v);
        self.edge_count -= 1;
        Ok(())
    }

    /// Returns `true` when the edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        if u >= self.vertex_count() || v >= self.vertex_count() {
            return false;
        }
        // Probe the smaller adjacency list.
        let (a, b) = if self.adj[u].len() <= self.adj[v].len() { (u, v) } else { (v, u) };
        self.adj[a].binary_search(&b).is_ok()
    }

    /// The sorted adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.adj[v]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v].len()
    }

    /// Iterates over all edges, each reported once in normalized order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter().filter(move |&&v| u < v).map(move |&v| Edge::new(u, v))
        })
    }

    /// Collects all edges into a vector (normalized, sorted order).
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Returns `true` when every vertex is reachable from vertex 0 (vacuously true when empty).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Freezes the graph into its immutable [`CsrGraph`] form — the representation every
    /// traversal-heavy phase (BFS trees, the brute-force comparator, the solver's
    /// preprocessing) runs on.
    ///
    /// Freezing preserves the sorted adjacency order, so all traversals over the CSR view are
    /// bit-for-bit identical to traversals over this representation; see
    /// [`CsrGraph::thaw`] for the inverse.
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_sorted_adj(&self.adj, self.edge_count)
    }

    /// Rebuilds a graph from already-sorted adjacency rows (the thaw half of the CSR round
    /// trip; callers guarantee the rows are sorted, symmetric and simple).
    pub(crate) fn from_sorted_adj_parts(adj: Vec<Vec<Vertex>>, edge_count: usize) -> Self {
        debug_assert!(adj.iter().all(|row| row.windows(2).all(|w| w[0] < w[1])));
        Graph { adj, edge_count }
    }

    /// Average degree `2m / n` (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.vertex_count() as f64
        }
    }

    fn check_vertex(&self, v: Vertex) -> Result<(), GraphError> {
        if v < self.vertex_count() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange { vertex: v, vertex_count: self.vertex_count() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn empty_graph_properties() {
        let g = Graph::new(0);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(5);
        g.add_edge(0, 4).unwrap();
        g.add_edge(4, 1).unwrap();
        assert!(g.has_edge(4, 0));
        assert!(g.has_edge(1, 4));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.degree(4), 2);
        assert_eq!(g.neighbors(4), &[0, 1]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = Graph::new(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.add_edge(1, 0), Err(GraphError::DuplicateEdge { u: 1, v: 0 }));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        let mut g = Graph::new(3);
        assert!(matches!(g.add_edge(0, 3), Err(GraphError::VertexOutOfRange { .. })));
        assert!(matches!(g.add_edge(9, 0), Err(GraphError::VertexOutOfRange { .. })));
    }

    #[test]
    fn add_edge_if_absent_reports_insertion() {
        let mut g = Graph::new(3);
        assert!(g.add_edge_if_absent(0, 1).unwrap());
        assert!(!g.add_edge_if_absent(1, 0).unwrap());
        assert!(matches!(g.add_edge_if_absent(0, 0), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = path_graph(4);
        assert_eq!(g.edge_count(), 3);
        g.remove_edge(1, 2).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.remove_edge(1, 2), Err(GraphError::MissingEdge { u: 1, v: 2 }));
        g.add_edge(1, 2).unwrap();
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&Edge::new(0, 2)));
        // Normalized and unique.
        let mut dedup = edges.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), edges.len());
    }

    #[test]
    fn connectivity_detection() {
        let mut g = path_graph(6);
        assert!(g.is_connected());
        g.remove_edge(2, 3).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn from_edges_matches_incremental_construction() {
        let edges = [(0, 1), (1, 2), (0, 2), (2, 3)];
        let g1 = Graph::from_edges(4, &edges).unwrap();
        let mut g2 = Graph::new(4);
        for &(u, v) in edges.iter().rev() {
            g2.add_edge(u, v).unwrap();
        }
        assert_eq!(g1, g2);
    }

    #[test]
    fn average_degree_matches_handshake_lemma() {
        let g = path_graph(5);
        assert!((g.average_degree() - 2.0 * 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_lists_stay_sorted() {
        let mut g = Graph::new(6);
        for &v in &[5, 2, 4, 1, 3] {
            g.add_edge(0, v).unwrap();
        }
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }
}
