//! Bit-parallel multi-source BFS: up to 64 searches per machine word.
//!
//! Every oracle construction in this workspace runs *batches* of BFS over the same frozen
//! [`CsrGraph`]: one per source for the shortest-path trees, one per tree edge for the
//! brute-force comparator. Those searches are independent, so [`MultiBfsScratch`] packs up
//! to [`WAVE_LANES`] of them into the bit lanes of a `u64` and advances them together:
//!
//! * three *bit planes* (`frontier`, `next`, `visited`), one word per vertex, lane `k` of
//!   word `v` meaning "search `k` has reached `v`";
//! * expansion ORs each active vertex's frontier word into the `next` word of every
//!   neighbour — one row scan serves all 64 lanes, which is where the win comes from: the
//!   lanes share every cache miss on the row and on the plane;
//! * a settle pass masks out already-visited bits, records distances for the freshly set
//!   ones, and builds the next active list, so work stays proportional to the touched
//!   vertices instead of `O(n)` per level.
//!
//! The kernel produces *distances only*. BFS distances are unique, so each lane's distance
//! plane is trivially bit-identical to a [`BfsScratch`](crate::BfsScratch) run — but the
//! canonical tree's `parent`/`order` are not derivable from distances for free (the parent
//! rule minimizes the frontier *position*, see [`dir_opt`](crate::DirOptScratch)). When
//! trees are needed, [`bfs_trees_wave`] reruns a cheap *guided* pass per lane over the
//! finished distance plane: `w` is adopted by the first in-order vertex `v` with
//! `dist[w] == dist[v] + 1`, which reproduces the top-down parent/order exactly (first in
//! order ⇔ minimum frontier position).
//!
//! The avoiding variant [`MultiBfsScratch::run_avoiding_wave`] runs 64 *single-source*
//! searches that share one source but each exclude a different edge — exactly the shape of
//! the brute-force replacement-path loop (one BFS per tree edge), which consumes only the
//! distances and therefore inherits bit-identity outright.

use crate::bfs::BfsResult;
use crate::csr::{decode_parents, CsrGraph, NO_PARENT};
use crate::distance::{Distance, INFINITE_DISTANCE};
use crate::edge::Edge;
use crate::graph::Vertex;
use crate::tree::ShortestPathTree;

/// Number of parallel searches per wave: the bit width of the plane words.
pub const WAVE_LANES: usize = 64;

/// Reusable buffers for bit-parallel multi-source BFS (see the module docs for the plane
/// layout). One scratch serves any number of waves over graphs of any size.
///
/// ```
/// use msrp_graph::{bfs_csr, generators::grid_graph, MultiBfsScratch};
///
/// let csr = grid_graph(5, 5).freeze();
/// let sources = [0usize, 7, 12, 24];
/// let mut wave = MultiBfsScratch::new();
/// wave.run_wave(&csr, &sources);
/// for (lane, &s) in sources.iter().enumerate() {
///     // Each lane's distances equal a sequential BFS from that lane's source.
///     assert_eq!(wave.lane_dist_vec(lane), bfs_csr(&csr, s).dist);
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct MultiBfsScratch {
    /// Current-level plane: bit `k` of word `v` ⇔ search `k`'s frontier holds `v`.
    frontier: Vec<u64>,
    /// Next-level accumulator plane (scattered into during expansion, drained by settle).
    next: Vec<u64>,
    /// Visited plane: bit `k` of word `v` ⇔ search `k` has discovered `v`.
    visited: Vec<u64>,
    /// Vertices with a nonzero frontier word (the level's work list).
    active: Vec<u32>,
    /// Vertices whose `next` word the expansion touched (settle candidates).
    touched: Vec<u32>,
    /// Distances, vertex-major: `dist[v * lanes + k]` is lane `k`'s distance to `v` (the
    /// settle pass then writes all lanes of a vertex into one or two cache lines).
    dist: Vec<Distance>,
    /// `(v, w, lane bits)` triples of the avoided edges, both orientations.
    avoid_pairs: Vec<(u32, u32, u64)>,
    /// Per-vertex "is an avoided-edge endpoint" flag, so the expansion's hot loop pays the
    /// mask lookup only on the handful of flagged rows.
    avoid_flag: Vec<bool>,
    /// The vertices currently flagged (the reset list for `avoid_flag`).
    avoid_flagged: Vec<u32>,
    lanes: usize,
    n: usize,
}

impl MultiBfsScratch {
    /// Creates an empty scratch; planes are sized on the first wave.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lanes of the last wave (the length of `sources`/`avoided` it ran with).
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Number of vertices of the graph the last wave ran over.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Distance of lane `lane` to vertex `v` (`INFINITE_DISTANCE` when unreached).
    #[inline]
    pub fn lane_dist(&self, lane: usize, v: Vertex) -> Distance {
        debug_assert!(lane < self.lanes);
        self.dist[v * self.lanes + lane]
    }

    /// The full distance vector of lane `lane`, in vertex order — directly comparable to
    /// [`BfsScratch::dist`](crate::BfsScratch::dist) of the corresponding sequential run.
    pub fn lane_dist_vec(&self, lane: usize) -> Vec<Distance> {
        assert!(lane < self.lanes, "lane {lane} out of range ({} lanes)", self.lanes);
        (0..self.n).map(|v| self.dist[v * self.lanes + lane]).collect()
    }

    fn reset(&mut self, n: usize, lanes: usize) {
        self.n = n;
        self.lanes = lanes;
        self.frontier.clear();
        self.frontier.resize(n, 0);
        self.next.clear();
        self.next.resize(n, 0);
        self.visited.clear();
        self.visited.resize(n, 0);
        self.active.clear();
        self.touched.clear();
        self.dist.clear();
        self.dist.resize(n * lanes, INFINITE_DISTANCE);
        for &v in &self.avoid_flagged {
            self.avoid_flag[v as usize] = false;
        }
        self.avoid_flagged.clear();
        self.avoid_pairs.clear();
    }

    /// Runs one wave of up to [`WAVE_LANES`] independent BFS searches, lane `k` rooted at
    /// `sources[k]` (duplicates allowed). Lane `k`'s distances afterwards equal a
    /// sequential BFS from `sources[k]`, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty, longer than [`WAVE_LANES`], or contains an
    /// out-of-range vertex.
    pub fn run_wave(&mut self, g: &CsrGraph, sources: &[Vertex]) {
        let n = g.vertex_count();
        assert!(
            !sources.is_empty() && sources.len() <= WAVE_LANES,
            "a wave takes 1..={WAVE_LANES} sources, got {}",
            sources.len()
        );
        self.reset(n, sources.len());
        for (k, &s) in sources.iter().enumerate() {
            assert!(s < n, "BFS source {s} out of range (n = {n})");
            let bit = 1u64 << k;
            self.dist[s * self.lanes + k] = 0;
            if self.frontier[s] == 0 {
                self.active.push(s as u32);
            }
            self.frontier[s] |= bit;
            self.visited[s] |= bit;
        }
        self.propagate::<false>(g);
    }

    /// Runs one wave of up to [`WAVE_LANES`] searches sharing the source `source`, lane `k`
    /// avoiding the edge `avoided[k]` — the batched form of
    /// [`BfsScratch::run_avoiding`](crate::BfsScratch::run_avoiding), one lane per avoided
    /// edge. Edges that are absent from the graph (including edges with out-of-range
    /// endpoints) simply never mask anything, matching the sequential kernel's semantics.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `avoided` is empty or longer than
    /// [`WAVE_LANES`].
    pub fn run_avoiding_wave(&mut self, g: &CsrGraph, source: Vertex, avoided: &[Edge]) {
        let n = g.vertex_count();
        assert!(source < n, "BFS source {source} out of range (n = {n})");
        assert!(
            !avoided.is_empty() && avoided.len() <= WAVE_LANES,
            "a wave takes 1..={WAVE_LANES} avoided edges, got {}",
            avoided.len()
        );
        self.reset(n, avoided.len());
        if self.avoid_flag.len() != n {
            self.avoid_flag.clear();
            self.avoid_flag.resize(n, false);
        }
        for (k, &e) in avoided.iter().enumerate() {
            let (lo, hi) = e.endpoints();
            // Endpoints are normalized (lo < hi), so `hi < n` means both are real vertices;
            // anything else can never match a CSR row entry and needs no mask.
            if hi < n {
                let bit = 1u64 << k;
                self.avoid_pairs.push((lo as u32, hi as u32, bit));
                self.avoid_pairs.push((hi as u32, lo as u32, bit));
                for v in [lo, hi] {
                    if !self.avoid_flag[v] {
                        self.avoid_flag[v] = true;
                        self.avoid_flagged.push(v as u32);
                    }
                }
            }
        }
        let all = if self.lanes == WAVE_LANES { u64::MAX } else { (1u64 << self.lanes) - 1 };
        for k in 0..self.lanes {
            self.dist[source * self.lanes + k] = 0;
        }
        self.frontier[source] = all;
        self.visited[source] = all;
        self.active.push(source as u32);
        self.propagate::<true>(g);
    }

    fn propagate<const AVOID: bool>(&mut self, g: &CsrGraph) {
        let lanes = self.lanes;
        let mut level: Distance = 0;
        while !self.active.is_empty() {
            level += 1;
            let MultiBfsScratch {
                frontier,
                next,
                visited,
                active,
                touched,
                dist,
                avoid_pairs,
                avoid_flag,
                ..
            } = self;
            touched.clear();
            for &v in active.iter() {
                let vu = v as usize;
                let f = frontier[vu];
                if AVOID && avoid_flag[vu] {
                    // Slow path, taken only for the ≤ 2·lanes flagged endpoints: mask the
                    // lanes whose avoided edge is exactly (v, w).
                    for &w in g.neighbor_row(vu) {
                        let wu = w as usize;
                        let mut mask = 0u64;
                        for &(a, b, m) in avoid_pairs.iter() {
                            if a == v && b == w {
                                mask |= m;
                            }
                        }
                        let bits = f & !mask;
                        if bits != 0 {
                            if next[wu] == 0 {
                                touched.push(w);
                            }
                            next[wu] |= bits;
                        }
                    }
                } else {
                    for &w in g.neighbor_row(vu) {
                        let wu = w as usize;
                        if next[wu] == 0 {
                            touched.push(w);
                        }
                        next[wu] |= f;
                    }
                }
            }
            for &v in active.iter() {
                frontier[v as usize] = 0;
            }
            active.clear();
            // Settle: keep the first-discovery bits, record their distances, and promote
            // the touched vertices that actually advanced into the new frontier.
            for &w in touched.iter() {
                let wu = w as usize;
                let fresh = next[wu] & !visited[wu];
                next[wu] = 0;
                if fresh != 0 {
                    visited[wu] |= fresh;
                    frontier[wu] = fresh;
                    active.push(w);
                    let row = &mut dist[wu * lanes..(wu + 1) * lanes];
                    let mut bits = fresh;
                    while bits != 0 {
                        let k = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        row[k] = level;
                    }
                }
            }
        }
    }
}

/// Builds the shortest-path trees of `sources` in 64-source waves: one
/// [`MultiBfsScratch::run_wave`] per chunk for the distance planes, then one guided
/// reconstruction pass per lane for the canonical `parent`/`order` (see the module docs for
/// why the pass reproduces the top-down rule exactly). The trees are bit-identical to
/// [`ShortestPathTree::build_with_scratch`] per source — the oracle differential suites pin
/// this through every construction route.
///
/// # Panics
///
/// Panics if a source is out of range.
pub fn bfs_trees_wave(
    g: &CsrGraph,
    sources: &[Vertex],
    wave: &mut MultiBfsScratch,
) -> Vec<ShortestPathTree> {
    let mut trees = Vec::with_capacity(sources.len());
    for chunk in sources.chunks(WAVE_LANES) {
        wave.run_wave(g, chunk);
        for (lane, &s) in chunk.iter().enumerate() {
            trees.push(tree_from_lane(g, s, wave, lane));
        }
    }
    trees
}

/// The guided pass: reconstructs the canonical BFS tree of lane `lane` from its finished
/// distance plane. Processing vertices in discovery order and adopting each `w` with
/// `dist[w] == dist[v] + 1` on first touch makes `parent(w)` the minimum-position frontier
/// neighbour and the append order per-parent grouped, ascending id within a group — the two
/// invariants of the top-down kernel.
fn tree_from_lane(
    g: &CsrGraph,
    source: Vertex,
    wave: &MultiBfsScratch,
    lane: usize,
) -> ShortestPathTree {
    let n = g.vertex_count();
    let dist = wave.lane_dist_vec(lane);
    let mut parent: Vec<u32> = vec![NO_PARENT; n];
    let mut order: Vec<Vertex> = Vec::with_capacity(n);
    order.push(source);
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        let next_level = dist[v] + 1;
        for &w in g.neighbor_row(v) {
            let wu = w as usize;
            if dist[wu] == next_level && parent[wu] == NO_PARENT {
                parent[wu] = v as u32;
                order.push(wu);
            }
        }
    }
    ShortestPathTree::from_bfs(BfsResult { source, dist, parent: decode_parents(&parent), order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::BfsScratch;
    use crate::generators::{cycle_graph, grid_graph, star_graph};
    use crate::graph::Graph;

    #[test]
    fn wave_distances_match_sequential_runs_per_lane() {
        let g = grid_graph(6, 7);
        let csr = g.freeze();
        let sources: Vec<Vertex> = (0..csr.vertex_count()).step_by(3).collect();
        let mut wave = MultiBfsScratch::new();
        let mut seq = BfsScratch::new();
        for chunk in sources.chunks(WAVE_LANES) {
            wave.run_wave(&csr, chunk);
            assert_eq!(wave.lane_count(), chunk.len());
            for (lane, &s) in chunk.iter().enumerate() {
                seq.run(&csr, s);
                assert_eq!(wave.lane_dist_vec(lane), seq.dist(), "lane {lane} source {s}");
            }
        }
    }

    #[test]
    fn avoiding_wave_matches_sequential_avoiding_runs() {
        let g = cycle_graph(17);
        let csr = g.freeze();
        let edges = csr.edge_vec();
        let mut wave = MultiBfsScratch::new();
        let mut seq = BfsScratch::new();
        for source in [0usize, 5, 16] {
            for chunk in edges.chunks(WAVE_LANES) {
                wave.run_avoiding_wave(&csr, source, chunk);
                for (lane, &e) in chunk.iter().enumerate() {
                    seq.run_avoiding(&csr, source, e);
                    assert_eq!(wave.lane_dist_vec(lane), seq.dist(), "s={source} e={e}");
                }
            }
        }
    }

    #[test]
    fn duplicate_sources_and_duplicate_avoided_edges_are_allowed() {
        let csr = star_graph(9).freeze();
        let mut wave = MultiBfsScratch::new();
        wave.run_wave(&csr, &[4, 4, 0]);
        assert_eq!(wave.lane_dist_vec(0), wave.lane_dist_vec(1));
        let e = Edge::new(0, 4);
        wave.run_avoiding_wave(&csr, 4, &[e, e]);
        assert_eq!(wave.lane_dist_vec(0), wave.lane_dist_vec(1));
        assert_eq!(wave.lane_dist(0, 0), INFINITE_DISTANCE, "the pendant edge is a bridge");
    }

    #[test]
    fn trees_from_waves_equal_per_source_scratch_trees() {
        let g = Graph::from_edges(
            10,
            &[(0, 1), (0, 2), (1, 4), (2, 3), (4, 5), (3, 5), (5, 6), (8, 9)],
        )
        .unwrap();
        let csr = g.freeze();
        let sources: Vec<Vertex> = (0..10).collect();
        let mut wave = MultiBfsScratch::new();
        let mut seq = BfsScratch::new();
        let trees = bfs_trees_wave(&csr, &sources, &mut wave);
        assert_eq!(trees.len(), sources.len());
        for (tree, &s) in trees.iter().zip(&sources) {
            let reference = ShortestPathTree::build_with_scratch(&csr, s, &mut seq);
            assert_eq!(tree.source(), reference.source());
            assert_eq!(tree.distances(), reference.distances(), "dist s={s}");
            assert_eq!(tree.bfs_order(), reference.bfs_order(), "order s={s}");
            for v in 0..10 {
                assert_eq!(tree.parent(v), reference.parent(v), "parent s={s} v={v}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_graph_sizes_and_variants_is_clean() {
        let big = grid_graph(5, 5).freeze();
        let small = cycle_graph(4).freeze();
        let mut wave = MultiBfsScratch::new();
        let mut seq = BfsScratch::new();
        wave.run_wave(&big, &[0, 24]);
        wave.run_avoiding_wave(&small, 0, &[Edge::new(0, 1)]);
        seq.run_avoiding(&small, 0, Edge::new(0, 1));
        assert_eq!(wave.lane_dist_vec(0), seq.dist());
        // A plain wave right after an avoiding one must not inherit stale masks.
        wave.run_wave(&small, &[0]);
        seq.run(&small, 0);
        assert_eq!(wave.lane_dist_vec(0), seq.dist());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_wave_source_panics() {
        let csr = Graph::new(3).freeze();
        MultiBfsScratch::new().run_wave(&csr, &[0, 7]);
    }

    #[test]
    #[should_panic(expected = "1..=64 sources")]
    fn empty_wave_panics() {
        let csr = Graph::new(3).freeze();
        MultiBfsScratch::new().run_wave(&csr, &[]);
    }
}
